//! The regression corpus: explorer-found schedules, committed as JSON.
//!
//! A corpus entry is a self-contained record of one bad schedule — the
//! full [`Scenario`], the [`Fitness`] that earned it a place, the
//! [`PinnedOutcome`] a replay must reproduce bit-for-bit (trace hash
//! included), and the provenance of the find (explorer seed, generation,
//! slot) so `ofa explore --seed <s>` rediscovers it from scratch.
//! Entries live in `tests/regressions/` and a harness replays each on
//! every engine; a pin that stops matching is a behavior change that
//! must be explained, not silently absorbed.

use crate::Fitness;
use ofa_core::Bit;
use ofa_scenario::{Outcome, Scenario};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Where in the search an entry was found. Together with the base
/// scenario and the explorer's deterministic candidate derivation, this
/// is enough to regenerate the entry from nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// The explorer seed of the search that found it.
    pub explorer_seed: u64,
    /// The generation it was evaluated in.
    pub generation: u64,
    /// The population slot it occupied.
    pub slot: u64,
}

/// The replay-relevant projection of an [`Outcome`], pinned at find
/// time. Engines are bit-for-bit equivalent, so one pin covers all of
/// them; any drift (a different trace hash, round count, decider set
/// size…) fails the regression harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinnedOutcome {
    /// Whether agreement held (a `false` here is a preserved bug).
    pub agreement_holds: bool,
    /// The first decided value, if anyone decided.
    pub decided_value: Option<Bit>,
    /// How many processes decided.
    pub deciders: u64,
    /// How many processes ended crashed (incl. churn leaves).
    pub crashed: u64,
    /// The maximum decision round.
    pub max_decision_round: u64,
    /// Virtual time of the last decision, in ticks.
    pub latest_decision_ticks: u64,
    /// Largest virtual timestamp seen, in ticks.
    pub end_time_ticks: u64,
    /// Scheduler events processed.
    pub events_processed: u64,
    /// Replay hash of the full event stream.
    pub trace_hash: Option<u64>,
}

impl PinnedOutcome {
    /// Projects `outcome` onto the pinned fields.
    pub fn of(outcome: &Outcome) -> PinnedOutcome {
        PinnedOutcome {
            agreement_holds: outcome.agreement_holds(),
            decided_value: outcome.decided_value,
            deciders: outcome.deciders() as u64,
            crashed: outcome.crashed.len() as u64,
            max_decision_round: outcome.max_decision_round,
            latest_decision_ticks: outcome.latest_decision_time.ticks(),
            end_time_ticks: outcome.end_time.ticks(),
            events_processed: outcome.events_processed,
            trace_hash: outcome.trace_hash,
        }
    }
}

/// One committed regression: a schedule plus the outcome it must keep
/// producing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Stable name, also the file stem: `explore-s<seed>-g<gen>-p<slot>`.
    pub name: String,
    /// The full schedule — replayable on any engine as-is.
    pub scenario: Scenario,
    /// The badness that earned the entry its place.
    pub fitness: Fitness,
    /// The outcome every replay must reproduce.
    pub pinned: PinnedOutcome,
    /// Where the explorer found it.
    pub found: Provenance,
}

impl CorpusEntry {
    /// The file this entry is stored as inside a corpus directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.name)
    }
}

fn invalid(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// Writes each entry to `dir` as `<name>.json` (creating `dir` as
/// needed) and returns how many files were written. Existing files with
/// the same names are overwritten — names embed seed/generation/slot,
/// so a rerun of the same search rewrites identical bytes.
pub fn write_corpus(dir: &Path, entries: &[CorpusEntry]) -> io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    for entry in entries {
        let path = dir.join(entry.file_name());
        let json = serde_json::to_string(entry).map_err(|e| invalid(&path, e))?;
        std::fs::write(&path, json + "\n")?;
    }
    Ok(entries.len())
}

/// Loads every `*.json` entry in `dir`, sorted by file name so the
/// result is independent of directory iteration order. A missing
/// directory is an empty corpus, not an error; an unparsable file is.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        res => res?
            .map(|entry| entry.map(|e| e.path()))
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)?;
            serde_json::from_str(&text).map_err(|e| invalid(&path, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_scenario::{Backend, CrashPlan, Scenario};
    use ofa_sim::Sim;
    use ofa_topology::{Partition, ProcessId};

    fn sample_entry() -> CorpusEntry {
        let scenario = Scenario::new(Partition::even(8, 2), Algorithm::CommonCoin)
            .proposals_split(3)
            .seed(11)
            .crashes(CrashPlan::new().crash_at_step(ProcessId(2), 4));
        let outcome = Sim.run(&scenario);
        CorpusEntry {
            name: "explore-s1-g2-p3".to_string(),
            fitness: Fitness::of(8, &outcome),
            pinned: PinnedOutcome::of(&outcome),
            scenario,
            found: Provenance {
                explorer_seed: 1,
                generation: 2,
                slot: 3,
            },
        }
    }

    #[test]
    fn pinned_outcome_is_stable_under_replay() {
        let entry = sample_entry();
        let replay = Sim.run(&entry.scenario);
        assert_eq!(PinnedOutcome::of(&replay), entry.pinned);
        assert!(
            entry.pinned.trace_hash.is_some(),
            "sim runs carry a trace hash"
        );
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("ofa-corpus-{}", std::process::id()));
        let entry = sample_entry();
        write_corpus(&dir, std::slice::from_ref(&entry)).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            serde_json::to_string(&loaded[0]).unwrap(),
            serde_json::to_string(&entry).unwrap()
        );
        assert_eq!(loaded[0].file_name(), "explore-s1-g2-p3.json");
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("ofa-corpus-definitely-missing");
        assert!(load_corpus(&dir).unwrap().is_empty());
    }
}
