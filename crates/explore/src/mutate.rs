//! Schedule mutation operators: one small, validity-preserving step in
//! the space `CrashPlan × ChurnPlan × delay seed × loss/dup ppm ×
//! CoinSpec`.
//!
//! Every operator draws all its randomness from the caller's RNG and
//! touches nothing else, so a mutated candidate is a pure function of
//! `(parent, rng state)` — the property the explorer's replay contract
//! rests on. Plans are iterated in process-index order (never raw
//! `HashMap` order) for the same reason.

use ofa_core::Bit;
use ofa_scenario::{CoinSpec, CrashTrigger, PoissonChurn, Scenario, VirtualTime};
use ofa_topology::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Bounds on how far mutation may push a schedule. The defaults keep
/// candidates in the regime the paper's claims cover (minority crash
/// faults, sub-saturation loss) so the search hunts *interesting*
/// pathology, not trivially-dead universes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Most processes a candidate may crash.
    pub max_crashes: usize,
    /// Most processes a candidate may churn (explicit events).
    pub max_churn: usize,
    /// Cap on mutated message-loss rates, in parts per million.
    pub max_loss_ppm: u32,
    /// Cap on mutated duplication rates, in parts per million.
    pub max_dup_ppm: u32,
    /// Cap on mutated Poisson churn arrival rates, in ppm per process;
    /// `0` disables the Poisson-rate operator.
    pub max_poisson_ppm: u32,
    /// Virtual-time window for mutated crash/churn times.
    pub horizon_ticks: u64,
    /// Whether the coin-override operator is enabled.
    pub allow_coin: bool,
}

impl Limits {
    /// Default bounds for a universe of `n` processes: up to a minority
    /// of crashes plus a handful of churn events, loss up to 5%,
    /// duplication up to 1%, and times within a 100k-tick window.
    pub fn for_n(n: usize) -> Limits {
        Limits {
            max_crashes: (n.saturating_sub(1)) / 2,
            max_churn: (n / 10).clamp(1, 64),
            max_loss_ppm: 50_000,
            max_dup_ppm: 10_000,
            max_poisson_ppm: 2_000,
            horizon_ticks: 100_000,
            allow_coin: true,
        }
    }
}

/// Applies one randomly chosen operator to a copy of `parent` and
/// returns the mutated candidate. Operators that do not apply (nothing
/// to remove, plan already at its cap) are redrawn a few times; if
/// nothing applies the delay-seed perturbation — always applicable —
/// is used, so the function is total.
pub fn mutate(parent: &Scenario, rng: &mut StdRng, limits: &Limits) -> Scenario {
    let mut sc = parent.clone();
    sc.observer = None;
    for _ in 0..8 {
        let op = rng.gen_range(0u64..10);
        if apply(&mut sc, op, rng, limits) {
            return sc;
        }
    }
    sc.seed = rng.next_u64();
    sc
}

/// Picks a process free of both failure plans, or `None` after a
/// bounded number of draws (a crowded universe).
fn free_process(sc: &Scenario, rng: &mut StdRng) -> Option<ProcessId> {
    let n = sc.partition.n();
    for _ in 0..16 {
        let p = ProcessId(rng.gen_range(0..n));
        if sc.crashes.trigger(p).is_none() && sc.churn.event(p).is_none() {
            return Some(p);
        }
    }
    None
}

/// The processes of a plan in index order — deterministic selection
/// regardless of `HashMap` iteration order.
fn sorted_crashed(sc: &Scenario) -> Vec<ProcessId> {
    let mut v: Vec<ProcessId> = sc.crashes.iter().map(|(p, _)| p).collect();
    v.sort();
    v
}

fn sorted_churned(sc: &Scenario) -> Vec<ProcessId> {
    let mut v: Vec<ProcessId> = sc.churn.iter().map(|(p, _)| p).collect();
    v.sort();
    v
}

fn random_trigger(rng: &mut StdRng, limits: &Limits) -> CrashTrigger {
    match rng.gen_range(0u64..3) {
        0 => CrashTrigger::AtTime(VirtualTime::from_ticks(
            rng.gen_range(0..limits.horizon_ticks.max(1)),
        )),
        1 => CrashTrigger::AtStep(rng.gen_range(0..64)),
        _ => CrashTrigger::AtRound(rng.gen_range(1..=8)),
    }
}

/// One churn event within the horizon; three in four get a rejoin.
fn random_churn(rng: &mut StdRng, limits: &Limits) -> (VirtualTime, Option<VirtualTime>) {
    let horizon = limits.horizon_ticks.max(2);
    let leave = rng.gen_range(0..horizon);
    let rejoin = (rng.gen_range(0u64..4) > 0)
        .then(|| VirtualTime::from_ticks(leave + 1 + rng.gen_range(0..horizon / 2)));
    (VirtualTime::from_ticks(leave), rejoin)
}

/// Applies operator `op`; `false` means it did not apply and the caller
/// should redraw.
fn apply(sc: &mut Scenario, op: u64, rng: &mut StdRng, limits: &Limits) -> bool {
    match op {
        // Add a crash.
        0 => {
            if sc.crashes.len() >= limits.max_crashes {
                return false;
            }
            let Some(p) = free_process(sc, rng) else {
                return false;
            };
            sc.crashes.insert(p, random_trigger(rng, limits));
            true
        }
        // Remove a crash.
        1 => {
            let crashed = sorted_crashed(sc);
            if crashed.is_empty() {
                return false;
            }
            let p = crashed[rng.gen_range(0..crashed.len())];
            sc.crashes.remove(p);
            true
        }
        // Move a crash: same process, rerolled trigger.
        2 => {
            let crashed = sorted_crashed(sc);
            if crashed.is_empty() {
                return false;
            }
            let p = crashed[rng.gen_range(0..crashed.len())];
            sc.crashes.insert(p, random_trigger(rng, limits));
            true
        }
        // Add a churn event.
        3 => {
            if sc.churn.len() >= limits.max_churn {
                return false;
            }
            let Some(p) = free_process(sc, rng) else {
                return false;
            };
            let (leave, rejoin) = random_churn(rng, limits);
            sc.churn
                .insert(p, ofa_scenario::ChurnEvent { leave, rejoin });
            true
        }
        // Shift a churn event: same process, rerolled times.
        4 => {
            let churned = sorted_churned(sc);
            if churned.is_empty() {
                return false;
            }
            let p = churned[rng.gen_range(0..churned.len())];
            let (leave, rejoin) = random_churn(rng, limits);
            sc.churn
                .insert(p, ofa_scenario::ChurnEvent { leave, rejoin });
            true
        }
        // Remove a churn event.
        5 => {
            let churned = sorted_churned(sc);
            if churned.is_empty() {
                return false;
            }
            let p = churned[rng.gen_range(0..churned.len())];
            sc.churn.remove(p);
            true
        }
        // Set the Poisson churn arrival rate.
        6 => {
            if limits.max_poisson_ppm == 0 {
                return false;
            }
            let rate_ppm = rng.gen_range(0..=limits.max_poisson_ppm as u64) as u32;
            sc.churn = sc.churn.clone().poisson_spec(PoissonChurn {
                rate_ppm,
                mean_down_ticks: 1 + rng.gen_range(0..limits.horizon_ticks.max(2) / 4),
                horizon_ticks: limits.horizon_ticks.max(1),
            });
            true
        }
        // Perturb the master seed (delay/fate/coin streams).
        7 => {
            sc.seed = rng.next_u64();
            true
        }
        // Step the loss (or duplication) rate.
        8 => {
            let (cap, dup) = if rng.gen_range(0u64..4) == 0 {
                (limits.max_dup_ppm, true)
            } else {
                (limits.max_loss_ppm, false)
            };
            if cap == 0 {
                return false;
            }
            let current = if dup {
                sc.network.dup_ppm
            } else {
                sc.network.loss_ppm
            };
            let delta = rng.gen_range(1..=10_000u64) as u32;
            let next = if rng.gen_range(0u64..2) == 0 {
                current.saturating_add(delta).min(cap)
            } else {
                current.saturating_sub(delta)
            };
            if next == current {
                return false;
            }
            if dup {
                sc.network.dup_ppm = next;
            } else {
                sc.network.loss_ppm = next;
            }
            true
        }
        // Flip the coin override.
        _ => {
            if !limits.allow_coin {
                return false;
            }
            let next = match rng.gen_range(0u64..5) {
                0 => CoinSpec::Seeded,
                1 => CoinSpec::Constant(Bit::Zero),
                2 => CoinSpec::Constant(Bit::One),
                3 => CoinSpec::Alternating,
                _ => CoinSpec::Scripted((0..8).map(|_| rng.gen_range(0u64..2) == 1).collect()),
            };
            if next == sc.coin {
                return false;
            }
            sc.coin = next;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_topology::Partition;
    use rand::SeedableRng;

    fn base() -> Scenario {
        Scenario::new(Partition::even(12, 4), Algorithm::CommonCoin).proposals_split(5)
    }

    #[test]
    fn mutation_is_deterministic_and_always_valid() {
        let limits = Limits::for_n(12);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut sc_a = base();
        let mut sc_b = base();
        for step in 0..500 {
            sc_a = mutate(&sc_a, &mut a, &limits);
            sc_b = mutate(&sc_b, &mut b, &limits);
            sc_a.assert_valid();
            assert_eq!(
                serde_json::to_string(&sc_a).unwrap(),
                serde_json::to_string(&sc_b).unwrap(),
                "step {step}: same RNG stream, same candidate"
            );
        }
    }

    #[test]
    fn mutation_respects_limits() {
        let limits = Limits {
            max_crashes: 2,
            max_churn: 1,
            max_loss_ppm: 5_000,
            max_dup_ppm: 0,
            max_poisson_ppm: 0,
            horizon_ticks: 10_000,
            allow_coin: false,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut sc = base();
        for _ in 0..500 {
            sc = mutate(&sc, &mut rng, &limits);
        }
        assert!(sc.crashes.len() <= 2);
        assert!(sc.churn.len() <= 1);
        assert!(sc.network.loss_ppm <= 5_000);
        assert_eq!(sc.network.dup_ppm, 0);
        assert!(sc.churn.poisson_arrivals().is_none());
        assert_eq!(sc.coin, CoinSpec::Seeded);
    }

    #[test]
    fn every_operator_eventually_fires() {
        // Over many draws from permissive limits, the plans and knobs
        // all move away from their defaults at least once.
        let limits = Limits::for_n(12);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_crash = false;
        let mut saw_churn = false;
        let mut saw_loss = false;
        let mut saw_coin = false;
        let mut saw_seed = false;
        let mut sc = base();
        for _ in 0..300 {
            sc = mutate(&sc, &mut rng, &limits);
            saw_crash |= !sc.crashes.is_empty();
            saw_churn |= !sc.churn.is_empty();
            saw_loss |= sc.network.loss_ppm > 0;
            saw_coin |= sc.coin != CoinSpec::Seeded;
            saw_seed |= sc.seed != 0;
        }
        assert!(saw_crash && saw_churn && saw_loss && saw_coin && saw_seed);
    }
}
