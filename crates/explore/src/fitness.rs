//! Fitness: how *bad* an executed schedule turned out to be.

use ofa_scenario::Outcome;
use serde::{Deserialize, Serialize};

/// The badness of one executed schedule, ordered lexicographically —
/// the explorer maximizes it. Field order is the severity order:
///
/// 1. [`Fitness::violation`] — agreement broke. Any violating schedule
///    outranks every non-violating one; this is a found bug, full stop.
/// 2. [`Fitness::undecided`] — processes that stayed correct (never
///    crashed or left) yet failed to decide within the round/event
///    budget: a liveness miss, the paper's probabilistic-termination
///    claim failing empirically.
/// 3. [`Fitness::max_round`] — the latest deciding round: rounds-to-
///    decide, the paper's headline expected-constant metric.
/// 4. [`Fitness::stretch`] — the latest decision's virtual time, which
///    separates schedules that tie on rounds but differ in wall-clock
///    stretch (delay/loss-induced retransmission chains).
///
/// Two schedules compare exactly like their `Fitness` values compare,
/// so selection is a pure function of the evaluated outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fitness {
    /// `true` iff two processes decided different values.
    pub violation: bool,
    /// Correct-but-stuck processes: neither decided nor crashed/left.
    pub undecided: u64,
    /// The maximum decision round among deciders.
    pub max_round: u64,
    /// The latest decision's virtual time, in ticks.
    pub stretch: u64,
}

impl Fitness {
    /// Scores `outcome` for a universe of `n` processes.
    pub fn of(n: usize, outcome: &Outcome) -> Fitness {
        Fitness {
            violation: !outcome.agreement_holds(),
            undecided: (n as u64)
                .saturating_sub(outcome.deciders() as u64)
                .saturating_sub(outcome.crashed.len() as u64),
            max_round: outcome.max_decision_round,
            stretch: outcome.latest_decision_time.ticks(),
        }
    }
}

/// Which schedules are worth committing to the regression corpus.
///
/// A violating schedule always qualifies (that is a found bug); a
/// non-violating one qualifies if it clears *any* enabled threshold.
/// With no thresholds set, only violations are recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusFilter {
    /// Record schedules whose `max_round` reaches this.
    pub min_rounds: Option<u64>,
    /// Record schedules with at least this many correct-but-stuck
    /// processes.
    pub min_undecided: Option<u64>,
}

impl CorpusFilter {
    /// `true` iff `f` is corpus-worthy under this filter.
    pub fn admits(&self, f: &Fitness) -> bool {
        if f.violation {
            return true;
        }
        let rounds_hit = self.min_rounds.is_some_and(|r| f.max_round >= r);
        let stuck_hit = self.min_undecided.is_some_and(|u| f.undecided >= u);
        rounds_hit || stuck_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_ranks_violations_above_everything() {
        let violating = Fitness {
            violation: true,
            ..Fitness::default()
        };
        let slow = Fitness {
            violation: false,
            undecided: 10,
            max_round: 500,
            stretch: u64::MAX,
        };
        assert!(violating > slow);
        // Liveness misses outrank slow-but-complete runs…
        let stuck = Fitness {
            undecided: 1,
            ..Fitness::default()
        };
        let rounds = Fitness {
            max_round: 100,
            ..Fitness::default()
        };
        assert!(stuck > rounds);
        // …and rounds break ties before stretch.
        let s1 = Fitness {
            max_round: 5,
            stretch: 1,
            ..Fitness::default()
        };
        let s2 = Fitness {
            max_round: 4,
            stretch: 1_000_000,
            ..Fitness::default()
        };
        assert!(s1 > s2);
    }

    #[test]
    fn filter_admits_violations_unconditionally() {
        let strict = CorpusFilter {
            min_rounds: Some(1_000),
            min_undecided: Some(1_000),
        };
        let violating = Fitness {
            violation: true,
            ..Fitness::default()
        };
        assert!(strict.admits(&violating));
        let tame = Fitness {
            max_round: 3,
            ..Fitness::default()
        };
        assert!(!strict.admits(&tame));
        // No thresholds: only violations pass.
        assert!(!CorpusFilter::default().admits(&tame));
        let loose = CorpusFilter {
            min_rounds: Some(3),
            min_undecided: None,
        };
        assert!(loose.admits(&tame));
    }
}
