//! Adversarial schedule explorer: guided fault-injection search over
//! crash/delay/coin schedules.
//!
//! The paper's claims are probabilistic — consensus terminates in an
//! expected-constant number of rounds *over the random choices*. The
//! test suite checks those claims on fixed and swept schedules; this
//! crate goes hunting for the schedules the sweeps miss. An
//! [`Explorer`] searches the space
//! `CrashPlan × ChurnPlan × delay seed × loss/dup ppm × CoinSpec`
//! for worst-case executions:
//!
//! * **Mutation** ([`mutate`], bounded by [`Limits`]) takes one small
//!   validity-preserving step: add/move/remove a crash, add/shift a
//!   churn event, perturb the Poisson churn rate or the delay seed,
//!   step the loss/duplication rate, or flip the common-coin override.
//! * **Fitness** ([`Fitness`]) ranks outcomes lexicographically:
//!   agreement violations (found bugs) above liveness misses
//!   (correct-but-stuck processes) above rounds-to-decide above
//!   virtual-time stretch.
//! * **Search** ([`Explorer`]) runs generations mixing hill-climbing
//!   (one step off the best) with random walks (stacked steps off the
//!   base), evaluated over a thread pool, selected by strict argmax.
//! * **Corpus** ([`CorpusEntry`], admitted by [`CorpusFilter`]) records
//!   the worst finds as self-contained JSON — schedule plus
//!   [`PinnedOutcome`] — for the committed regression suite in
//!   `tests/regressions/`.
//!
//! The entire trajectory is a pure function of the explorer seed and
//! config: candidate derivation is a PRF of `(seed, generation, slot)`,
//! evaluation results are index-addressed, and the budget is counted in
//! simulated events, so two machines stop at the same generation. `ofa
//! explore` is the CLI front end.

mod corpus;
mod fitness;
mod mutate;
mod search;

pub use corpus::{load_corpus, write_corpus, CorpusEntry, PinnedOutcome, Provenance};
pub use fitness::{CorpusFilter, Fitness};
pub use mutate::{mutate, Limits};
pub use search::{
    mix_explore, Best, ExploreConfig, Explorer, GenRecord, SearchState, CORPUS_CAP,
    DEFAULT_GENERATIONS, EVENTS_PER_SEC,
};
