//! The guided search loop: generations of mutated schedules, evaluated
//! in parallel, selected by [`Fitness`].
//!
//! # Determinism contract
//!
//! The whole trajectory — every candidate, every fitness, the best
//! schedule, the committed corpus, the per-generation log — is a pure
//! function of `(base scenario, explorer seed, population, limits,
//! filter, stop bounds)`:
//!
//! * Candidate `slot` of generation `g` derives its RNG from the PRF
//!   [`mix_explore`]`(seed, g, slot)` — never from a shared mutable
//!   stream, so candidates are independent of evaluation order.
//! * Evaluation fans out over a thread pool with index-addressed result
//!   slots (the same pattern as `Sweep::run`), so worker count and
//!   thread interleaving cannot reorder results.
//! * The stop condition is counted in *simulated events*, not wall
//!   clock: `--budget-secs B` buys `B ×` [`EVENTS_PER_SEC`] events.
//!   Two machines of different speeds stop at the same generation.
//!
//! Re-running with the same inputs therefore replays the search
//! bit-for-bit, which is what lets a corpus entry carry only its
//! `(seed, generation, slot)` provenance.

use crate::{mutate, CorpusEntry, CorpusFilter, Fitness, Limits, PinnedOutcome, Provenance};
use ofa_scenario::{default_workers, Backend, Outcome, Scenario};
use ofa_sim::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Simulated-events-per-second calibration behind `--budget-secs`: the
/// rough single-core throughput of the event-driven engine, fixed by
/// convention so the budget is a deterministic event count rather than
/// a machine-dependent wall clock.
pub const EVENTS_PER_SEC: u64 = 2_000_000;

/// Generations to run when neither a generation cap nor an event budget
/// is configured.
pub const DEFAULT_GENERATIONS: u64 = 32;

/// How many corpus entries a search keeps (the worst ones win).
pub const CORPUS_CAP: usize = 8;

/// Domain separator folded into the candidate-derivation PRF so the
/// explorer's randomness never collides with the delay, fate, churn, or
/// coin streams (same convention as the scenario-level separators).
const EXPLORE_DOMAIN_SEP: u64 = 0xE691_04E5_CAED_5EED;

/// SplitMix64-style mix of `(explorer seed, generation, slot)` into the
/// RNG seed that derives that candidate — the root of the explorer's
/// replay contract.
pub fn mix_explore(seed: u64, generation: u64, slot: u64) -> u64 {
    let mut z = seed ^ EXPLORE_DOMAIN_SEP;
    for w in [generation, slot] {
        z = z
            .wrapping_add(w)
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
    }
    z
}

/// Everything that parameterizes a search. Two configs that compare
/// equal field-by-field (ignoring `workers`, which only changes how
/// fast evaluation goes) produce bit-identical trajectories.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The explorer seed — the root of all search randomness.
    pub seed: u64,
    /// Candidates per generation.
    pub population: usize,
    /// Evaluation threads; `0` = one per available core.
    pub workers: usize,
    /// Hard cap on generations, if any.
    pub generations: Option<u64>,
    /// Stop once this many simulated events have been spent, if set
    /// (checked at generation boundaries).
    pub event_budget: Option<u64>,
    /// The unmutated starting schedule.
    pub base: Scenario,
    /// Bounds on mutation.
    pub limits: Limits,
    /// Which evaluated schedules join the corpus.
    pub filter: CorpusFilter,
}

impl ExploreConfig {
    /// A config with the conventional defaults: population 16, auto
    /// workers, limits sized to the base universe, violations-only
    /// corpus filter, and no stop bound (callers set one, or
    /// [`DEFAULT_GENERATIONS`] applies).
    pub fn new(base: Scenario) -> ExploreConfig {
        let limits = Limits::for_n(base.partition.n());
        ExploreConfig {
            seed: 0,
            population: 16,
            workers: 0,
            generations: None,
            event_budget: None,
            base,
            limits,
            filter: CorpusFilter::default(),
        }
    }
}

/// The current global best: the worst schedule found so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Best {
    /// The schedule itself.
    pub scenario: Scenario,
    /// Its fitness.
    pub fitness: Fitness,
    /// Where it was found.
    pub found: Provenance,
}

/// One line of the search log: what a generation evaluated and what it
/// changed. Serialized as JSONL by the CLI; byte-identical across
/// replays of the same search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenRecord {
    /// The generation index (0-based).
    pub generation: u64,
    /// Candidates evaluated this generation.
    pub evaluated: u64,
    /// The slot holding this generation's best candidate.
    pub gen_best_slot: u64,
    /// That candidate's fitness.
    pub gen_best: Fitness,
    /// Whether the global best improved this generation.
    pub improved: bool,
    /// The global best fitness after this generation.
    pub best: Fitness,
    /// Cumulative simulated events spent, across all generations.
    pub events_spent: u64,
    /// Corpus entries held after this generation.
    pub corpus_size: u64,
}

/// The resumable part of a search: everything [`Explorer::step`]
/// mutates, serializable so a time-budgeted CI gate can stop at a
/// generation boundary and pick up where it left off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchState {
    /// The seed this state belongs to (guards against resuming a state
    /// file with a mismatched config).
    pub explorer_seed: u64,
    /// The next generation to run.
    pub generation: u64,
    /// Cumulative simulated events spent.
    pub events_spent: u64,
    /// The unmutated base schedule's fitness (generation 0, slot 0).
    pub baseline: Option<Fitness>,
    /// The worst schedule found so far.
    pub best: Option<Best>,
    /// The current corpus, worst-first, deduplicated by trace hash.
    pub corpus: Vec<CorpusEntry>,
    /// One record per completed generation.
    pub history: Vec<GenRecord>,
}

impl SearchState {
    fn fresh(seed: u64) -> SearchState {
        SearchState {
            explorer_seed: seed,
            generation: 0,
            events_spent: 0,
            baseline: None,
            best: None,
            corpus: Vec::new(),
            history: Vec::new(),
        }
    }
}

/// The explorer: holds a config and a [`SearchState`], advances one
/// generation per [`Explorer::step`].
#[derive(Debug, Clone)]
pub struct Explorer {
    config: ExploreConfig,
    state: SearchState,
}

impl Explorer {
    /// Starts a fresh search.
    ///
    /// # Panics
    ///
    /// Panics if the base scenario is invalid, carries an observer or a
    /// non-serializable custom coin (the search must be able to commit
    /// any candidate as JSON), or the population is zero.
    pub fn new(config: ExploreConfig) -> Explorer {
        let state = SearchState::fresh(config.seed);
        Explorer::resume(config, state)
    }

    /// Resumes a search from a previously serialized state.
    ///
    /// # Panics
    ///
    /// Panics on the same config invalidity as [`Explorer::new`], or if
    /// the state was produced under a different explorer seed.
    pub fn resume(mut config: ExploreConfig, state: SearchState) -> Explorer {
        assert!(config.population >= 1, "population must be at least 1");
        config.base.observer = None;
        config.base.assert_valid();
        assert!(
            serde_json::to_string(&config.base)
                .is_ok_and(|json| serde_json::from_str::<Scenario>(&json).is_ok()),
            "explorer base scenario must round-trip as JSON (no custom coins)"
        );
        assert_eq!(
            state.explorer_seed, config.seed,
            "resume state belongs to a different explorer seed"
        );
        Explorer { config, state }
    }

    /// The config the search runs under.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// The current search state.
    pub fn state(&self) -> &SearchState {
        &self.state
    }

    /// The worst schedule found so far.
    pub fn best(&self) -> Option<&Best> {
        self.state.best.as_ref()
    }

    /// The current corpus, worst-first.
    pub fn corpus(&self) -> &[CorpusEntry] {
        &self.state.corpus
    }

    /// `true` once a stop bound is reached: the generation cap, the
    /// event budget, or — with neither configured —
    /// [`DEFAULT_GENERATIONS`].
    pub fn finished(&self) -> bool {
        if let Some(cap) = self.config.generations {
            if self.state.generation >= cap {
                return true;
            }
        }
        if let Some(budget) = self.config.event_budget {
            if self.state.events_spent >= budget {
                return true;
            }
        }
        if self.config.generations.is_none() && self.config.event_budget.is_none() {
            return self.state.generation >= DEFAULT_GENERATIONS;
        }
        false
    }

    /// Derives the candidate for `(generation, slot)` — a pure function
    /// of the config plus the current best (which is itself determined
    /// by the preceding generations).
    fn candidate(&self, generation: u64, slot: usize) -> Scenario {
        if generation == 0 && slot == 0 {
            // The unmutated base: its fitness is the baseline every
            // improvement is measured against.
            let mut base = self.config.base.clone();
            base.observer = None;
            return base;
        }
        let mut rng = StdRng::seed_from_u64(mix_explore(self.config.seed, generation, slot as u64));
        let hill_climb = slot < self.config.population / 2;
        if hill_climb {
            if let Some(best) = &self.state.best {
                // Exploit: one step off the worst schedule known.
                return mutate(&best.scenario, &mut rng, &self.config.limits);
            }
        }
        // Explore: a short random walk (1–3 stacked steps) off the base.
        let steps = 1 + (slot % 3);
        let mut sc = self.config.base.clone();
        for _ in 0..steps {
            sc = mutate(&sc, &mut rng, &self.config.limits);
        }
        sc
    }

    /// Evaluates `candidates` on the simulator, fanning over a thread
    /// pool with index-addressed slots so the result order is the slot
    /// order regardless of worker count.
    fn evaluate(&self, candidates: &[Scenario]) -> Vec<Outcome> {
        let workers = if self.config.workers == 0 {
            default_workers()
        } else {
            self.config.workers
        }
        .min(candidates.len());
        if workers <= 1 || candidates.len() <= 1 {
            return candidates.iter().map(|sc| Sim.run(sc)).collect();
        }
        let mut slots: Vec<Option<Outcome>> = Vec::new();
        slots.resize_with(candidates.len(), || None);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Outcome)>();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let next_ref = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(sc) = candidates.get(i) else {
                        break;
                    };
                    if tx.send((i, Sim.run(sc))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, outcome) in rx {
                slots[i] = Some(outcome);
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every candidate reports"))
            .collect()
    }

    /// Runs one generation: derive candidates, evaluate, select, admit
    /// corpus entries, log. Returns the generation's record (also
    /// appended to the state's history).
    pub fn step(&mut self) -> GenRecord {
        let generation = self.state.generation;
        let n = self.config.base.partition.n();
        let candidates: Vec<Scenario> = (0..self.config.population)
            .map(|slot| self.candidate(generation, slot))
            .collect();
        let outcomes = self.evaluate(&candidates);
        let scored: Vec<Fitness> = outcomes.iter().map(|o| Fitness::of(n, o)).collect();
        self.state.events_spent += outcomes.iter().map(|o| o.events_processed).sum::<u64>();
        if generation == 0 {
            self.state.baseline = Some(scored[0]);
        }

        // Selection: strict argmax, lowest slot on ties — deterministic.
        let (gen_best_slot, &gen_best) = scored
            .iter()
            .enumerate()
            .max_by(|(ia, fa), (ib, fb)| fa.cmp(fb).then(ib.cmp(ia)))
            .expect("population is nonempty");
        let improved = self
            .state
            .best
            .as_ref()
            .is_none_or(|b| gen_best > b.fitness);
        if improved {
            self.state.best = Some(Best {
                scenario: candidates[gen_best_slot].clone(),
                fitness: gen_best,
                found: Provenance {
                    explorer_seed: self.config.seed,
                    generation,
                    slot: gen_best_slot as u64,
                },
            });
        }

        // Corpus admission, in slot order; dedup by trace hash; keep the
        // worst CORPUS_CAP entries.
        for (slot, (fitness, outcome)) in scored.iter().zip(&outcomes).enumerate() {
            if !self.config.filter.admits(fitness) {
                continue;
            }
            let pinned = PinnedOutcome::of(outcome);
            if self
                .state
                .corpus
                .iter()
                .any(|e| e.pinned.trace_hash == pinned.trace_hash)
            {
                continue;
            }
            self.state.corpus.push(CorpusEntry {
                name: format!("explore-s{}-g{}-p{}", self.config.seed, generation, slot),
                scenario: candidates[slot].clone(),
                fitness: *fitness,
                pinned,
                found: Provenance {
                    explorer_seed: self.config.seed,
                    generation,
                    slot: slot as u64,
                },
            });
        }
        self.state
            .corpus
            .sort_by(|a, b| b.fitness.cmp(&a.fitness).then(a.name.cmp(&b.name)));
        self.state.corpus.truncate(CORPUS_CAP);

        let record = GenRecord {
            generation,
            evaluated: self.config.population as u64,
            gen_best_slot: gen_best_slot as u64,
            gen_best,
            improved,
            best: self.state.best.as_ref().expect("set above").fitness,
            events_spent: self.state.events_spent,
            corpus_size: self.state.corpus.len() as u64,
        };
        self.state.history.push(record);
        self.state.generation += 1;
        record
    }

    /// Runs to a stop bound and returns the final state.
    pub fn run(&mut self) -> &SearchState {
        while !self.finished() {
            self.step();
        }
        &self.state
    }

    /// Runs until a stop bound or until `deadline` passes (checked at
    /// generation boundaries, so the trajectory prefix stays exact).
    /// Returns `true` if the search finished, `false` if it paused on
    /// the deadline with resumable state.
    pub fn run_until(&mut self, deadline: std::time::Instant) -> bool {
        while !self.finished() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            self.step();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_topology::Partition;

    fn small_config(seed: u64) -> ExploreConfig {
        let base = Scenario::new(Partition::even(8, 2), Algorithm::CommonCoin)
            .proposals_split(3)
            .max_rounds(12);
        ExploreConfig {
            seed,
            population: 6,
            generations: Some(4),
            filter: CorpusFilter {
                min_rounds: Some(2),
                min_undecided: Some(1),
            },
            ..ExploreConfig::new(base)
        }
    }

    fn state_json(explorer: &Explorer) -> String {
        serde_json::to_string(explorer.state()).unwrap()
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let mut a = Explorer::new(small_config(42));
        let mut b = Explorer::new(small_config(42));
        a.run();
        b.run();
        assert_eq!(state_json(&a), state_json(&b));
        assert_eq!(a.state().history.len(), 4);
        assert!(a.state().baseline.is_some());
    }

    #[test]
    fn worker_count_does_not_change_the_trajectory() {
        let mut serial = Explorer::new(ExploreConfig {
            workers: 1,
            ..small_config(7)
        });
        let mut wide = Explorer::new(ExploreConfig {
            workers: 4,
            ..small_config(7)
        });
        serial.run();
        wide.run();
        assert_eq!(state_json(&serial), state_json(&wide));
    }

    #[test]
    fn different_seeds_search_differently() {
        let mut a = Explorer::new(small_config(1));
        let mut b = Explorer::new(small_config(2));
        a.run();
        b.run();
        assert_ne!(state_json(&a), state_json(&b));
    }

    #[test]
    fn event_budget_stops_at_a_generation_boundary() {
        let mut explorer = Explorer::new(ExploreConfig {
            generations: None,
            event_budget: Some(1), // exhausted by the first generation
            ..small_config(3)
        });
        explorer.run();
        assert_eq!(explorer.state().generation, 1);
        assert!(explorer.state().events_spent >= 1);
    }

    #[test]
    fn resume_continues_the_same_trajectory() {
        let mut whole = Explorer::new(small_config(9));
        whole.run();
        let mut first = Explorer::new(small_config(9));
        first.step();
        first.step();
        let parked: SearchState =
            serde_json::from_str(&serde_json::to_string(first.state()).unwrap()).unwrap();
        let mut resumed = Explorer::resume(small_config(9), parked);
        resumed.run();
        assert_eq!(state_json(&whole), state_json(&resumed));
    }

    #[test]
    fn search_finds_something_at_least_as_bad_as_the_baseline() {
        let mut explorer = Explorer::new(small_config(5));
        explorer.run();
        let best = explorer.best().expect("a best always exists");
        assert!(best.fitness >= explorer.state().baseline.unwrap());
        // The log is internally consistent: monotone best fitness.
        let mut prev = None;
        for rec in &explorer.state().history {
            if let Some(p) = prev {
                assert!(rec.best >= p);
            }
            prev = Some(rec.best);
        }
    }

    #[test]
    #[should_panic(expected = "different explorer seed")]
    fn mismatched_resume_seed_is_rejected() {
        let state = SearchState::fresh(1);
        Explorer::resume(small_config(2), state);
    }
}
