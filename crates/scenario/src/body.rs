//! What each process executes: a paper algorithm or a custom protocol.

use ofa_core::{Algorithm, Bit, Decision, Env, Halt, ProtocolConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A custom protocol body, run once per process in place of one of the
/// paper's algorithms (see [`crate::Scenario::custom_body`]).
///
/// Implementors receive the process's [`ofa_core::Env`] plus its binary
/// proposal and return a decision or halt like the built-in algorithms.
/// `ofa-mm` uses this to run the m&m comparator; `ofa-smr` uses it for
/// multivalued/replicated protocols. Any [`crate::Backend`] — the
/// deterministic simulator as well as the real-thread runtime — can
/// execute a custom body, since bodies only ever talk to the abstract
/// environment.
pub trait ProcessBody: Send + Sync {
    /// Executes the protocol on behalf of `env.me()`.
    ///
    /// # Errors
    ///
    /// Returns the [`ofa_core::Halt`] that interrupted the process.
    fn run(
        &self,
        env: &mut dyn Env,
        proposal: Bit,
        config: &ProtocolConfig,
    ) -> Result<Decision, Halt>;
}

/// What each process executes.
#[derive(Clone)]
pub enum Body {
    /// One of the paper's algorithms.
    Algo(Algorithm),
    /// A custom protocol (e.g. the m&m comparator or an SMR client).
    Custom(Arc<dyn ProcessBody>),
}

impl Body {
    /// Runs the body on `env`.
    ///
    /// # Errors
    ///
    /// Propagates the body's [`Halt`].
    pub fn run(
        &self,
        env: &mut dyn Env,
        proposal: Bit,
        config: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        match self {
            Body::Algo(a) => a.run(env, proposal, config),
            Body::Custom(b) => b.run(env, proposal, config),
        }
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Algo(a) => f.debug_tuple("Algo").field(a).finish(),
            Body::Custom(_) => f.debug_tuple("Custom").field(&"..").finish(),
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Body::Algo(a), Body::Algo(b)) => a == b,
            (Body::Custom(a), Body::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// [`Body::Algo`] serializes as the algorithm; [`Body::Custom`] — an
/// opaque function value — serializes as the marker string `"custom"`,
/// which deliberately fails to deserialize: only declarative scenarios
/// round-trip.
impl Serialize for Body {
    fn to_value(&self) -> serde::Value {
        match self {
            Body::Algo(a) => serde::Value::Map(vec![("Algo".to_string(), a.to_value())]),
            Body::Custom(_) => serde::Value::Str("custom".to_string()),
        }
    }
}

impl Deserialize for Body {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(a) = v.get("Algo") {
            return Deserialize::from_value(a).map(Body::Algo);
        }
        Err(serde::Error::msg(
            "only Body::Algo deserializes; custom bodies are code, not data",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_round_trips_custom_does_not() {
        let b = Body::Algo(Algorithm::CommonCoin);
        let v = b.to_value();
        assert_eq!(Body::from_value(&v).unwrap(), b);

        struct Nop;
        impl ProcessBody for Nop {
            fn run(
                &self,
                _env: &mut dyn Env,
                _proposal: Bit,
                _config: &ProtocolConfig,
            ) -> Result<Decision, Halt> {
                Err(Halt::Stopped)
            }
        }
        let c = Body::Custom(Arc::new(Nop));
        assert!(Body::from_value(&c.to_value()).is_err());
    }

    #[test]
    fn equality_semantics() {
        let a = Body::Algo(Algorithm::LocalCoin);
        assert_eq!(a.clone(), a);
        assert_ne!(a, Body::Algo(Algorithm::CommonCoin));
    }
}
