//! What each process executes: a paper algorithm, a multivalued/SMR
//! workload, or a custom protocol.

use ofa_core::{Algorithm, Bit, Decision, Env, Halt, Payload, ProtocolConfig, TrafficSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A custom protocol body, run once per process in place of one of the
/// built-in bodies (see [`crate::Scenario::custom_body`]).
///
/// Implementors receive the process's [`ofa_core::Env`] plus its binary
/// proposal and return a decision or halt like the built-in algorithms.
/// `ofa-mm` uses this for the m&m comparator. Any [`crate::Backend`] —
/// the deterministic simulator as well as the real-thread runtime — can
/// execute a custom body, since bodies only ever talk to the abstract
/// environment; virtual-time backends run custom bodies on the thread
/// conductor (they are blocking code, unlike the built-in bodies, which
/// also exist as resumable state machines).
pub trait ProcessBody: Send + Sync {
    /// Executes the protocol on behalf of `env.me()`.
    ///
    /// # Errors
    ///
    /// Returns the [`ofa_core::Halt`] that interrupted the process.
    fn run(
        &self,
        env: &mut dyn Env,
        proposal: Bit,
        config: &ProtocolConfig,
    ) -> Result<Decision, Halt>;
}

/// A serializable multivalued-consensus workload: one instance in which
/// process `i` proposes `proposals[i]` (an arbitrary payload), reduced to
/// the scenario's binary algorithm per [`ofa_core::multivalued_propose`].
///
/// The reported per-process [`Decision`] is
/// [`ofa_core::mv_body_decision`]: digest parity of the decided
/// `(proposer, payload)` pair as the value (agreement on payloads implies
/// agreement on the bit) and the stage count as the round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MvWorkload {
    /// The binary algorithm driving the reduction's stages.
    pub algorithm: Algorithm,
    /// One payload proposal per process.
    pub proposals: Vec<Payload>,
}

/// A serializable replicated-log (SMR) workload: `slots` multivalued
/// instances in order, process `i` proposing from `queues[i]` (cycled;
/// an empty queue proposes empty payloads), per
/// [`ofa_core::run_replicated_log`].
///
/// Committed slots surface as [`ofa_core::ObsEvent::MvDecided`]
/// observations — attach an observer (e.g. `ofa-smr`'s log collector) to
/// reconstruct the decided command sequence. The reported per-process
/// [`Decision`] is [`ofa_core::log_body_decision`]: parity of the
/// whole-log digest, round = slot count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrWorkload {
    /// The binary algorithm driving each slot's reduction.
    pub algorithm: Algorithm,
    /// Number of log slots to commit.
    pub slots: u64,
    /// One command queue (of payload-encoded commands) per process.
    pub queues: Vec<Vec<Payload>>,
    /// Optional client-traffic spec: when set, proposals come from a
    /// per-process [`ofa_core::TrafficState`] (arrival process + bounded
    /// proposer queue + batching) instead of the pre-seeded `queues`, and
    /// the run reports client-service statistics. `None` preserves the
    /// classic pre-seeded workload.
    pub traffic: Option<TrafficSpec>,
}

impl Serialize for SmrWorkload {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("slots".to_string(), self.slots.to_value()),
            ("queues".to_string(), self.queues.to_value()),
        ];
        if let Some(t) = &self.traffic {
            entries.push(("traffic".to_string(), t.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for SmrWorkload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        // `traffic` is optional in serialized form: workloads saved before
        // the traffic layer existed deserialize with `None`.
        let traffic = match v.get("traffic") {
            None | Some(serde::Value::Null) => None,
            Some(t) => Some(Deserialize::from_value(t)?),
        };
        Ok(SmrWorkload {
            algorithm: Deserialize::from_value(
                v.get("algorithm")
                    .ok_or_else(|| serde::Error::msg("SmrWorkload: missing `algorithm`"))?,
            )?,
            slots: Deserialize::from_value(
                v.get("slots")
                    .ok_or_else(|| serde::Error::msg("SmrWorkload: missing `slots`"))?,
            )?,
            queues: Deserialize::from_value(
                v.get("queues")
                    .ok_or_else(|| serde::Error::msg("SmrWorkload: missing `queues`"))?,
            )?,
            traffic,
        })
    }
}

/// What each process executes.
#[derive(Clone)]
pub enum Body {
    /// One of the paper's binary algorithms.
    Algo(Algorithm),
    /// One multivalued consensus instance (serializable workload).
    Multivalued(MvWorkload),
    /// A replicated log / SMR run (serializable workload).
    ReplicatedLog(SmrWorkload),
    /// A custom protocol (e.g. the m&m comparator).
    Custom(Arc<dyn ProcessBody>),
}

impl Body {
    /// Runs the body on `env` (the blocking reference path used by the
    /// thread conductor and the real-thread runtime; virtual-time
    /// event-driven engines run the equivalent `ofa_core::sm` machines).
    ///
    /// # Errors
    ///
    /// Propagates the body's [`Halt`].
    pub fn run(
        &self,
        env: &mut dyn Env,
        proposal: Bit,
        config: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        match self {
            Body::Algo(a) => a.run(env, proposal, config),
            Body::Multivalued(mv) => {
                let mine = mv.proposals[env.me().index()];
                ofa_core::run_multivalued_body(env, mine, mv.algorithm, config)
            }
            Body::ReplicatedLog(smr) => {
                static EMPTY: Vec<Payload> = Vec::new();
                let queue = smr.queues.get(env.me().index()).unwrap_or(&EMPTY);
                ofa_core::run_replicated_log(
                    env,
                    queue,
                    smr.slots,
                    smr.algorithm,
                    config,
                    smr.traffic.as_ref(),
                )
            }
            Body::Custom(b) => b.run(env, proposal, config),
        }
    }

    /// `true` for the declarative bodies that also exist as resumable
    /// state machines — everything except [`Body::Custom`], which is
    /// opaque blocking code.
    pub fn has_state_machine(&self) -> bool {
        !matches!(self, Body::Custom(_))
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Algo(a) => f.debug_tuple("Algo").field(a).finish(),
            Body::Multivalued(mv) => f
                .debug_struct("Multivalued")
                .field("algorithm", &mv.algorithm)
                .field("proposals", &mv.proposals.len())
                .finish(),
            Body::ReplicatedLog(smr) => f
                .debug_struct("ReplicatedLog")
                .field("algorithm", &smr.algorithm)
                .field("slots", &smr.slots)
                .field("queues", &smr.queues.len())
                .finish(),
            Body::Custom(_) => f.debug_tuple("Custom").field(&"..").finish(),
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Body::Algo(a), Body::Algo(b)) => a == b,
            (Body::Multivalued(a), Body::Multivalued(b)) => a == b,
            (Body::ReplicatedLog(a), Body::ReplicatedLog(b)) => a == b,
            (Body::Custom(a), Body::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// The declarative variants serialize as tagged maps; [`Body::Custom`] —
/// an opaque function value — serializes as the marker string `"custom"`,
/// which deliberately fails to deserialize: only declarative scenarios
/// round-trip.
impl Serialize for Body {
    fn to_value(&self) -> serde::Value {
        match self {
            Body::Algo(a) => serde::Value::Map(vec![("Algo".to_string(), a.to_value())]),
            Body::Multivalued(mv) => {
                serde::Value::Map(vec![("Multivalued".to_string(), mv.to_value())])
            }
            Body::ReplicatedLog(smr) => {
                serde::Value::Map(vec![("ReplicatedLog".to_string(), smr.to_value())])
            }
            Body::Custom(_) => serde::Value::Str("custom".to_string()),
        }
    }
}

impl Deserialize for Body {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(a) = v.get("Algo") {
            return Deserialize::from_value(a).map(Body::Algo);
        }
        if let Some(mv) = v.get("Multivalued") {
            return Deserialize::from_value(mv).map(Body::Multivalued);
        }
        if let Some(smr) = v.get("ReplicatedLog") {
            return Deserialize::from_value(smr).map(Body::ReplicatedLog);
        }
        Err(serde::Error::msg(
            "only declarative bodies (Algo | Multivalued | ReplicatedLog) deserialize; \
             custom bodies are code, not data",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Payload {
        Payload::from_bytes(s.as_bytes()).expect("fits")
    }

    #[test]
    fn algo_round_trips_custom_does_not() {
        let b = Body::Algo(Algorithm::CommonCoin);
        let v = b.to_value();
        assert_eq!(Body::from_value(&v).unwrap(), b);

        struct Nop;
        impl ProcessBody for Nop {
            fn run(
                &self,
                _env: &mut dyn Env,
                _proposal: Bit,
                _config: &ProtocolConfig,
            ) -> Result<Decision, Halt> {
                Err(Halt::Stopped)
            }
        }
        let c = Body::Custom(Arc::new(Nop));
        assert!(Body::from_value(&c.to_value()).is_err());
    }

    #[test]
    fn workload_bodies_round_trip() {
        let mv = Body::Multivalued(MvWorkload {
            algorithm: Algorithm::LocalCoin,
            proposals: vec![payload("a"), payload("b")],
        });
        assert_eq!(Body::from_value(&mv.to_value()).unwrap(), mv);

        let smr = Body::ReplicatedLog(SmrWorkload {
            algorithm: Algorithm::CommonCoin,
            slots: 3,
            queues: vec![vec![payload("x")], vec![]],
            traffic: None,
        });
        assert_eq!(Body::from_value(&smr.to_value()).unwrap(), smr);

        // pre-traffic serialized form (no `traffic` entry) still loads
        let Body::ReplicatedLog(inner) = &smr else {
            unreachable!()
        };
        let mut v = inner.to_value();
        if let serde::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "traffic");
        }
        assert_eq!(SmrWorkload::from_value(&v).unwrap(), *inner);

        let traffic = Body::ReplicatedLog(SmrWorkload {
            algorithm: Algorithm::CommonCoin,
            slots: 2,
            queues: vec![],
            traffic: Some(TrafficSpec {
                arrival: ofa_core::ArrivalProcess::Periodic {
                    period: 10,
                    phase: 0,
                },
                clients: 4,
                queue_cap: 8,
                batch_max: 4,
                batch_min: 0,
            }),
        });
        assert_eq!(Body::from_value(&traffic.to_value()).unwrap(), traffic);
    }

    #[test]
    fn equality_semantics() {
        let a = Body::Algo(Algorithm::LocalCoin);
        assert_eq!(a.clone(), a);
        assert_ne!(a, Body::Algo(Algorithm::CommonCoin));
        assert!(a.has_state_machine());
    }
}
