//! Message-delay and operation-cost models.
//!
//! The paper's premise (§I): intra-cluster shared memory is *efficient*
//! but does not scale; message passing *scales* but is slow due to
//! asynchrony. The simulator makes that premise a tunable: every
//! shared-memory consensus invocation costs [`CostModel::sm_op_cost`]
//! ticks while every message takes a [`DelayModel`]-sampled transit time —
//! experiment E7 sweeps their ratio.

use ofa_topology::ProcessId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-operation virtual-time costs charged to the invoking process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of handing one message to the network (per destination).
    pub send_cost: u64,
    /// Cost of consuming one delivered message.
    pub recv_cost: u64,
    /// Cost of one intra-cluster consensus-object invocation
    /// (`CONS_x[r, ph].propose`). The paper's "efficient" dimension.
    pub sm_op_cost: u64,
    /// Cost of drawing a coin.
    pub coin_cost: u64,
}

impl CostModel {
    /// Default calibration: shared-memory ops are ~100× cheaper than the
    /// default constant network delay of [`DelayModel::default`].
    pub fn new() -> Self {
        CostModel {
            send_cost: 1,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        }
    }

    /// Sets the shared-memory operation cost (returns a modified copy).
    pub fn with_sm_op_cost(mut self, ticks: u64) -> Self {
        self.sm_op_cost = ticks;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// How long a message takes from send to delivery.
///
/// All variants model the paper's *reliable asynchronous* channels: every
/// sampled delay is finite, no message is lost or reordered within the
/// model's own guarantees (delivery order is delay order, so reordering
/// happens naturally under non-constant delays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly random in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Base model, but messages **from or to** the listed processes are
    /// multiplied by `factor` — an adversarial laggard set (e.g. make an
    /// entire cluster slow).
    Laggard {
        /// The slow processes.
        slow: Vec<ProcessId>,
        /// Multiplier applied to the base delay.
        factor: u64,
        /// The underlying model.
        base: Box<DelayModel>,
    },
}

impl DelayModel {
    /// Samples the transit time of a message `from → to`.
    pub fn sample(&self, rng: &mut StdRng, from: ProcessId, to: ProcessId) -> u64 {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform delay bounds inverted");
                rng.gen_range(*lo..=*hi)
            }
            DelayModel::Laggard { slow, factor, base } => {
                let d = base.sample(rng, from, to);
                if slow.contains(&from) || slow.contains(&to) {
                    d.saturating_mul(*factor)
                } else {
                    d
                }
            }
        }
    }

    /// Default network: uniform in `[500, 1500]` ticks (mean 1000, i.e.
    /// 100× the default `sm_op_cost`).
    pub fn default_network() -> Self {
        DelayModel::Uniform { lo: 500, hi: 1500 }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::default_network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayModel::Constant(7);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(1)), 7);
        }
    }

    #[test]
    fn uniform_within_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DelayModel::Uniform { lo: 10, hi: 20 };
        let samples: Vec<u64> = (0..200)
            .map(|_| d.sample(&mut rng, ProcessId(0), ProcessId(1)))
            .collect();
        assert!(samples.iter().all(|&s| (10..=20).contains(&s)));
        assert!(samples.iter().any(|&s| s != samples[0]), "should vary");
    }

    #[test]
    fn laggard_multiplies_only_slow_links() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DelayModel::Laggard {
            slow: vec![ProcessId(2)],
            factor: 10,
            base: Box::new(DelayModel::Constant(5)),
        };
        assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(1)), 5);
        assert_eq!(d.sample(&mut rng, ProcessId(2), ProcessId(1)), 50);
        assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(2)), 50);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DelayModel::default_network();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(
                d.sample(&mut a, ProcessId(0), ProcessId(1)),
                d.sample(&mut b, ProcessId(0), ProcessId(1))
            );
        }
    }

    #[test]
    fn cost_model_builder() {
        let c = CostModel::new().with_sm_op_cost(42);
        assert_eq!(c.sm_op_cost, 42);
        assert_eq!(CostModel::default(), CostModel::new());
    }
}
