//! Message-delay and operation-cost models.
//!
//! The paper's premise (§I): intra-cluster shared memory is *efficient*
//! but does not scale; message passing *scales* but is slow due to
//! asynchrony. The simulator makes that premise a tunable: every
//! shared-memory consensus invocation costs [`CostModel::sm_op_cost`]
//! ticks while every message takes a [`DelayModel`]-sampled transit time —
//! experiment E7 sweeps their ratio.

use ofa_topology::ProcessId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-operation virtual-time costs charged to the invoking process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of handing one message to the network (per destination).
    pub send_cost: u64,
    /// Cost of consuming one delivered message.
    pub recv_cost: u64,
    /// Cost of one intra-cluster consensus-object invocation
    /// (`CONS_x[r, ph].propose`). The paper's "efficient" dimension.
    pub sm_op_cost: u64,
    /// Cost of drawing a coin.
    pub coin_cost: u64,
}

impl CostModel {
    /// Default calibration: shared-memory ops are ~100× cheaper than the
    /// default constant network delay of [`DelayModel::default`].
    pub fn new() -> Self {
        CostModel {
            send_cost: 1,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        }
    }

    /// Sets the shared-memory operation cost (returns a modified copy).
    pub fn with_sm_op_cost(mut self, ticks: u64) -> Self {
        self.sm_op_cost = ticks;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// How long a message takes from send to delivery.
///
/// All variants model the paper's *reliable asynchronous* channels: every
/// sampled delay is finite, no message is lost or reordered within the
/// model's own guarantees (delivery order is delay order, so reordering
/// happens naturally under non-constant delays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly random in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Base model, but messages **from or to** the listed processes are
    /// multiplied by `factor` — an adversarial laggard set (e.g. make an
    /// entire cluster slow).
    Laggard {
        /// The slow processes.
        slow: Vec<ProcessId>,
        /// Multiplier applied to the base delay.
        factor: u64,
        /// The underlying model.
        base: Box<DelayModel>,
    },
}

/// Domain separator folded into the per-message delay PRF so delay
/// randomness never collides with coin or local-coin streams derived
/// from the same master seed.
const DELAY_DOMAIN_SEP: u64 = 0x5DEE_CE66_D1CE_5EED;

/// SplitMix64-style mix of the delay PRF inputs into one RNG seed. Also
/// the mixer behind the network model's loss/duplication fate PRF, which
/// feeds it domain-separated master seeds.
pub(crate) fn mix_delay_seed(seed: u64, from: ProcessId, to: ProcessId, k: u64) -> u64 {
    let mut z = seed ^ DELAY_DOMAIN_SEP;
    for w in [from.index() as u64, to.index() as u64, k] {
        z = z
            .wrapping_add(w)
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
    }
    z
}

impl DelayModel {
    /// Samples the transit time of a message `from → to`.
    pub fn sample(&self, rng: &mut StdRng, from: ProcessId, to: ProcessId) -> u64 {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform delay bounds inverted");
                rng.gen_range(*lo..=*hi)
            }
            DelayModel::Laggard { slow, factor, base } => {
                let d = base.sample(rng, from, to);
                if slow.contains(&from) || slow.contains(&to) {
                    d.saturating_mul(*factor)
                } else {
                    d
                }
            }
        }
    }

    /// The transit time of the sender's `k`-th network handoff (counted
    /// per sending process across the whole run) to `to`.
    ///
    /// Unlike [`DelayModel::sample`] over a shared sequential RNG stream,
    /// this is a *pure function* of `(seed, from, to, k)`: the delay does
    /// not depend on the order in which messages are registered with a
    /// scheduler. That is what lets the sharded parallel engine assign
    /// delays shard-locally and still agree bit-for-bit with the
    /// single-threaded engines — every engine uses this derivation.
    pub fn delay_of(&self, seed: u64, from: ProcessId, to: ProcessId, k: u64) -> u64 {
        match self {
            // The scale fast path: no RNG construction per message.
            DelayModel::Constant(d) => *d,
            _ => {
                use rand::SeedableRng;
                let mut rng = StdRng::seed_from_u64(mix_delay_seed(seed, from, to, k));
                self.sample(&mut rng, from, to)
            }
        }
    }

    /// A lower bound on every delay this model can produce — the
    /// conservative lookahead of the parallel engine: events scheduled
    /// within one `min_delay` window cannot causally affect each other
    /// across shards. A zero bound disables parallel execution.
    pub fn min_delay(&self) -> u64 {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, .. } => *lo,
            DelayModel::Laggard { slow, factor, base } => {
                let b = base.min_delay();
                if slow.is_empty() {
                    b
                } else {
                    b.min(b.saturating_mul(*factor))
                }
            }
        }
    }

    /// Default network: uniform in `[500, 1500]` ticks (mean 1000, i.e.
    /// 100× the default `sm_op_cost`).
    pub fn default_network() -> Self {
        DelayModel::Uniform { lo: 500, hi: 1500 }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::default_network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayModel::Constant(7);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(1)), 7);
        }
    }

    #[test]
    fn uniform_within_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DelayModel::Uniform { lo: 10, hi: 20 };
        let samples: Vec<u64> = (0..200)
            .map(|_| d.sample(&mut rng, ProcessId(0), ProcessId(1)))
            .collect();
        assert!(samples.iter().all(|&s| (10..=20).contains(&s)));
        assert!(samples.iter().any(|&s| s != samples[0]), "should vary");
    }

    #[test]
    fn laggard_multiplies_only_slow_links() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DelayModel::Laggard {
            slow: vec![ProcessId(2)],
            factor: 10,
            base: Box::new(DelayModel::Constant(5)),
        };
        assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(1)), 5);
        assert_eq!(d.sample(&mut rng, ProcessId(2), ProcessId(1)), 50);
        assert_eq!(d.sample(&mut rng, ProcessId(0), ProcessId(2)), 50);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DelayModel::default_network();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(
                d.sample(&mut a, ProcessId(0), ProcessId(1)),
                d.sample(&mut b, ProcessId(0), ProcessId(1))
            );
        }
    }

    #[test]
    fn keyed_delay_is_a_pure_function_and_respects_bounds() {
        let d = DelayModel::Uniform { lo: 10, hi: 20 };
        let (p, q) = (ProcessId(3), ProcessId(7));
        // Pure: same inputs, same delay, in any evaluation order.
        let first = d.delay_of(9, p, q, 0);
        let later = d.delay_of(9, p, q, 5);
        assert_eq!(d.delay_of(9, p, q, 5), later);
        assert_eq!(d.delay_of(9, p, q, 0), first);
        assert!((10..=20).contains(&first));
        // Distinct keys vary (statistically: over 64 keys at least one
        // differs from the first for an 11-value range).
        assert!((0..64).any(|k| d.delay_of(9, p, q, k) != first));
        // Distinct seeds decorrelate the whole stream.
        assert!((0..64).any(|k| d.delay_of(10, p, q, k) != d.delay_of(9, p, q, k)));
    }

    #[test]
    fn min_delay_bounds_every_sample() {
        assert_eq!(DelayModel::Constant(7).min_delay(), 7);
        assert_eq!(DelayModel::Uniform { lo: 200, hi: 900 }.min_delay(), 200);
        let lag = DelayModel::Laggard {
            slow: vec![ProcessId(0)],
            factor: 7,
            base: Box::new(DelayModel::Uniform { lo: 300, hi: 800 }),
        };
        assert_eq!(lag.min_delay(), 300);
        // A zero factor can *shrink* delays on slow links.
        let shrink = DelayModel::Laggard {
            slow: vec![ProcessId(1)],
            factor: 0,
            base: Box::new(DelayModel::Constant(50)),
        };
        assert_eq!(shrink.min_delay(), 0);
        // No slow processes: the factor never applies.
        let noop = DelayModel::Laggard {
            slow: vec![],
            factor: 0,
            base: Box::new(DelayModel::Constant(50)),
        };
        assert_eq!(noop.min_delay(), 50);
    }

    #[test]
    fn cost_model_builder() {
        let c = CostModel::new().with_sm_op_cost(42);
        assert_eq!(c.sm_op_cost, 42);
        assert_eq!(CostModel::default(), CostModel::new());
    }
}
