//! The unified result of running a [`crate::Scenario`] on any backend.

use crate::{Engine, TimedEvent, VirtualTime};
use ofa_core::{Bit, Decision, Halt};
use ofa_metrics::{CounterSnapshot, ServiceStats};
use ofa_topology::{ProcessId, ProcessSet};
use serde::Serialize;
use std::time::Duration;

/// Which execution substrate produced an [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// The deterministic discrete-event simulator (`ofa-sim`).
    Sim,
    /// The real-thread runtime (`ofa-runtime`).
    Threads,
}

/// Summary of one execution, identical in shape across all backends.
///
/// The safety predicates ([`Outcome::agreement_holds`],
/// [`Outcome::deciders`], [`Outcome::decided`]) are defined here — once —
/// for every substrate.
///
/// Timing is reported in both notions where available: virtual-time fields
/// ([`Outcome::latest_decision_time`], [`Outcome::end_time`],
/// [`Outcome::events_processed`], [`Outcome::trace_hash`]) are meaningful
/// only for virtual-time backends and are zero/`None` elsewhere;
/// [`Outcome::elapsed`] is measured wall-clock for every backend, and
/// [`Outcome::latest_decision`] only where decisions have wall-clock
/// timestamps (real-time backends).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which backend produced this outcome.
    pub backend: BackendKind,
    /// Which execution engine actually ran the processes, for backends
    /// with an engine choice (`None` elsewhere). This is how the
    /// otherwise-silent custom-body fallback from
    /// [`Engine::EventDriven`] to [`Engine::Threads`] becomes observable
    /// — assert on it instead of guessing.
    pub engine_used: Option<Engine>,
    /// Per-process decision (`None` for crashed/stopped processes).
    pub decisions: Vec<Option<Decision>>,
    /// Per-process halt reason (`None` for deciders).
    pub halts: Vec<Option<Halt>>,
    /// Processes that ended crashed.
    pub crashed: ProcessSet,
    /// The first decided value observed, if any.
    pub decided_value: Option<Bit>,
    /// `true` iff every non-crashed process decided (termination).
    pub all_correct_decided: bool,
    /// Mean deciding round over deciders (0 if nobody decided).
    pub mean_decision_round: f64,
    /// Max deciding round over deciders.
    pub max_decision_round: u64,
    /// Merged counters over all processes.
    pub counters: CounterSnapshot,
    /// Per-process counters.
    pub per_process: Vec<CounterSnapshot>,
    /// Consensus objects materialized across all cluster memories.
    pub sm_objects: usize,
    /// Total propose invocations across all cluster memories.
    pub sm_proposes: u64,
    /// Client-service statistics merged over all processes — all-zero
    /// (see [`ServiceStats::is_empty`]) unless the scenario drove a
    /// traffic-fed replicated log
    /// ([`crate::Scenario::replicated_log_traffic`]).
    pub service: ServiceStats,
    /// Virtual clock of the last process to decide (virtual-time backends).
    pub latest_decision_time: VirtualTime,
    /// Largest virtual timestamp seen (virtual-time backends).
    pub end_time: VirtualTime,
    /// Number of scheduler events processed (virtual-time backends).
    pub events_processed: u64,
    /// Replay hash of the full event stream (virtual-time backends).
    pub trace_hash: Option<u64>,
    /// Full trace (only with [`crate::Scenario::keep_trace`], on backends
    /// that record one).
    pub events: Option<Vec<TimedEvent>>,
    /// Total wall-clock duration of the run (all backends).
    pub elapsed: Duration,
    /// Wall-clock time of the last decision (real-time backends).
    pub latest_decision: Option<Duration>,
}

impl Outcome {
    /// Builds an outcome from per-process protocol results, computing
    /// every derived field (decisions/halts split, crash set, termination,
    /// round statistics, merged counters). Timing fields start zeroed /
    /// `None`; the backend fills in the notions it has.
    pub fn assemble(
        backend: BackendKind,
        results: Vec<Result<Decision, Halt>>,
        per_process: Vec<CounterSnapshot>,
        sm_objects: usize,
        sm_proposes: u64,
    ) -> Outcome {
        let n = results.len();
        let mut decisions: Vec<Option<Decision>> = Vec::with_capacity(n);
        let mut halts: Vec<Option<Halt>> = Vec::with_capacity(n);
        let mut crashed = ProcessSet::empty(n);
        for (i, res) in results.into_iter().enumerate() {
            match res {
                Ok(d) => {
                    decisions.push(Some(d));
                    halts.push(None);
                }
                Err(h) => {
                    decisions.push(None);
                    halts.push(Some(h));
                    if h == Halt::Crashed {
                        crashed.insert(ProcessId(i));
                    }
                }
            }
        }
        let decided_value = decisions.iter().flatten().map(|d| d.value).next();
        let all_correct_decided = decisions
            .iter()
            .zip(halts.iter())
            .all(|(d, h)| d.is_some() || *h == Some(Halt::Crashed));
        let rounds: Vec<u64> = decisions.iter().flatten().map(|d| d.round).collect();
        let mean_decision_round = if rounds.is_empty() {
            0.0
        } else {
            rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
        };
        let max_decision_round = rounds.iter().copied().max().unwrap_or(0);
        Outcome {
            backend,
            engine_used: None,
            decisions,
            halts,
            crashed,
            decided_value,
            all_correct_decided,
            mean_decision_round,
            max_decision_round,
            counters: CounterSnapshot::merge_all(per_process.iter().copied()),
            per_process,
            sm_objects,
            sm_proposes,
            service: ServiceStats::new(),
            latest_decision_time: VirtualTime::ZERO,
            end_time: VirtualTime::ZERO,
            events_processed: 0,
            trace_hash: None,
            events: None,
            elapsed: Duration::ZERO,
            latest_decision: None,
        }
    }

    /// `true` iff no two processes decided different values — the
    /// agreement property, checked identically on every backend.
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<Bit> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(d.value),
                Some(v) if v != d.value => return false,
                _ => {}
            }
        }
        true
    }

    /// Number of processes that decided.
    pub fn deciders(&self) -> usize {
        self.decisions.iter().flatten().count()
    }

    /// `true` iff `v` was decided by someone and it equals every decision.
    pub fn decided(&self, v: Bit) -> bool {
        self.decided_value == Some(v) && self.agreement_holds()
    }
}

/// Serializes every field; durations appear as `elapsed_us` /
/// `latest_decision_us` (microseconds) and retained trace events as their
/// human-readable display strings.
impl Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("backend".to_string(), self.backend.to_value()),
            ("engine_used".to_string(), self.engine_used.to_value()),
            ("decisions".to_string(), self.decisions.to_value()),
            ("halts".to_string(), self.halts.to_value()),
            ("crashed".to_string(), self.crashed.to_value()),
            ("decided_value".to_string(), self.decided_value.to_value()),
            (
                "all_correct_decided".to_string(),
                serde::Value::Bool(self.all_correct_decided),
            ),
            (
                "agreement_holds".to_string(),
                serde::Value::Bool(self.agreement_holds()),
            ),
            (
                "deciders".to_string(),
                serde::Value::U64(self.deciders() as u64),
            ),
            (
                "mean_decision_round".to_string(),
                serde::Value::F64(self.mean_decision_round),
            ),
            (
                "max_decision_round".to_string(),
                serde::Value::U64(self.max_decision_round),
            ),
            ("counters".to_string(), self.counters.to_value()),
            ("per_process".to_string(), self.per_process.to_value()),
            (
                "sm_objects".to_string(),
                serde::Value::U64(self.sm_objects as u64),
            ),
            (
                "sm_proposes".to_string(),
                serde::Value::U64(self.sm_proposes),
            ),
            (
                "service".to_string(),
                if self.service.is_empty() {
                    serde::Value::Null
                } else {
                    // The raw stats plus report-time derivations: fixed
                    // percentiles from the deterministic histogram and
                    // throughput over the run's virtual-time span.
                    let serde::Value::Map(mut entries) = self.service.to_value() else {
                        unreachable!("ServiceStats serializes as a map");
                    };
                    for p in [50u32, 90, 99] {
                        entries.push((
                            format!("latency_p{p}"),
                            serde::Value::U64(self.service.latency.percentile(p)),
                        ));
                    }
                    entries.push((
                        "throughput_per_kilotick".to_string(),
                        serde::Value::F64(
                            self.service.throughput_per_kilotick(self.end_time.ticks()),
                        ),
                    ));
                    serde::Value::Map(entries)
                },
            ),
            (
                "latest_decision_time".to_string(),
                self.latest_decision_time.to_value(),
            ),
            ("end_time".to_string(), self.end_time.to_value()),
            (
                "events_processed".to_string(),
                serde::Value::U64(self.events_processed),
            ),
            ("trace_hash".to_string(), self.trace_hash.to_value()),
            (
                "events".to_string(),
                match &self.events {
                    None => serde::Value::Null,
                    Some(events) => serde::Value::Seq(
                        events
                            .iter()
                            .map(|e| serde::Value::Str(e.to_string()))
                            .collect(),
                    ),
                },
            ),
            (
                "elapsed_us".to_string(),
                serde::Value::U64(self.elapsed.as_micros() as u64),
            ),
            (
                "latest_decision_us".to_string(),
                self.latest_decision
                    .map(|d| d.as_micros() as u64)
                    .to_value(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(value: Bit, round: u64) -> Result<Decision, Halt> {
        Ok(Decision {
            value,
            round,
            relayed: false,
        })
    }

    #[test]
    fn assemble_derives_everything_once() {
        let out = Outcome::assemble(
            BackendKind::Sim,
            vec![
                decision(Bit::One, 1),
                Err(Halt::Crashed),
                decision(Bit::One, 3),
            ],
            vec![CounterSnapshot::default(); 3],
            2,
            6,
        );
        assert!(out.all_correct_decided);
        assert!(out.agreement_holds());
        assert_eq!(out.deciders(), 2);
        assert!(out.decided(Bit::One));
        assert!(!out.decided(Bit::Zero));
        assert_eq!(out.max_decision_round, 3);
        assert_eq!(out.mean_decision_round, 2.0);
        assert_eq!(out.crashed.len(), 1);
        assert!(out.crashed.contains(ProcessId(1)));
    }

    #[test]
    fn disagreement_is_detected() {
        let out = Outcome::assemble(
            BackendKind::Threads,
            vec![decision(Bit::One, 1), decision(Bit::Zero, 1)],
            vec![CounterSnapshot::default(); 2],
            0,
            0,
        );
        assert!(!out.agreement_holds());
        assert!(!out.decided(Bit::One));
    }

    #[test]
    fn stopped_process_blocks_termination() {
        let out = Outcome::assemble(
            BackendKind::Sim,
            vec![decision(Bit::Zero, 2), Err(Halt::Stopped)],
            vec![CounterSnapshot::default(); 2],
            0,
            0,
        );
        assert!(!out.all_correct_decided);
        assert!(out.agreement_holds());
        assert!(out.crashed.is_empty());
    }

    #[test]
    fn outcome_serializes_to_json() {
        let mut out = Outcome::assemble(
            BackendKind::Sim,
            vec![decision(Bit::One, 1)],
            vec![CounterSnapshot::default()],
            1,
            1,
        );
        out.trace_hash = Some(0xABCD);
        let json = serde_json::to_string(&out).unwrap();
        assert!(json.contains("\"backend\":\"Sim\""), "{json}");
        assert!(json.contains("\"agreement_holds\":true"), "{json}");
        assert!(json.contains("\"trace_hash\":43981"), "{json}");
    }
}
