//! The execution-substrate abstraction.

use crate::{Outcome, Scenario};

/// An execution substrate that can run any [`Scenario`] to completion.
///
/// This is the paper's "one protocol, any decomposition" claim as a trait:
/// `ofa-sim` implements it with a deterministic discrete-event conductor
/// (`Sim`), `ofa-runtime` with one OS thread per process (`Threads`), and
/// both return the same [`Outcome`] shape, so every test, experiment, and
/// tool is written once against this surface.
///
/// The trait is object-safe: heterogeneous backend lists
/// (`[&dyn Backend]`) let a single scenario value be executed on every
/// substrate in a loop.
pub trait Backend {
    /// A short human-readable backend name (e.g. `"sim"`, `"threads"`).
    fn name(&self) -> &'static str;

    /// Runs `scenario` to completion and summarizes it.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is internally inconsistent (e.g. proposal
    /// count ≠ `n`) or protocol code panics (a bug, not a modeled fault).
    fn run(&self, scenario: &Scenario) -> Outcome;
}
