//! The execution-substrate abstraction.

use crate::{Outcome, Scenario, Snapshot};

/// An execution substrate that can run any [`Scenario`] to completion.
///
/// This is the paper's "one protocol, any decomposition" claim as a trait:
/// `ofa-sim` implements it with a deterministic discrete-event conductor
/// (`Sim`), `ofa-runtime` with one OS thread per process (`Threads`), and
/// both return the same [`Outcome`] shape, so every test, experiment, and
/// tool is written once against this surface.
///
/// The trait is object-safe: heterogeneous backend lists
/// (`[&dyn Backend]`) let a single scenario value be executed on every
/// substrate in a loop.
pub trait Backend {
    /// A short human-readable backend name (e.g. `"sim"`, `"threads"`).
    fn name(&self) -> &'static str;

    /// Runs `scenario` to completion and summarizes it.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is internally inconsistent (e.g. proposal
    /// count ≠ `n`) or protocol code panics (a bug, not a modeled fault).
    fn run(&self, scenario: &Scenario) -> Outcome;

    /// Resumes a checkpointed execution to completion. The contract is
    /// bit-for-bit continuation: the resumed run's deterministic outcome
    /// fields (decisions, counters, `end_time`, trace hash) equal a
    /// straight-through run of the snapshot's scenario.
    ///
    /// Default: not supported. Checkpoint-capable backends (`ofa-sim`'s
    /// `Sim`) override this.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot resume snapshots, or the snapshot is
    /// malformed.
    fn run_from(&self, snapshot: &Snapshot) -> Outcome {
        let _ = snapshot;
        panic!("backend {:?} cannot resume snapshots", self.name());
    }
}
