//! The declarative description of one consensus execution.

use crate::{Body, ChurnPlan, CostModel, CrashPlan, DelayModel, NetworkModel, ProcessBody};
use ofa_coins::{
    AlternatingCoin, CommonCoin, ConstantCoin, ScriptedCoin, SeededCommonCoin, COIN_DOMAIN_SEP,
};
use ofa_core::{Algorithm, Bit, Observer, ProtocolConfig};
use ofa_topology::Partition;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Which common coin a scenario uses (paper §II-B).
///
/// All variants except [`CoinSpec::Custom`] are plain data and serialize
/// with the scenario; `Custom` wraps an arbitrary [`CommonCoin`] object
/// and serializes as the marker string `"custom"`, which deliberately
/// fails to deserialize.
#[derive(Clone)]
pub enum CoinSpec {
    /// The default: a fair seeded coin derived from the scenario seed via
    /// [`COIN_DOMAIN_SEP`] — identical across all backends.
    Seeded,
    /// An adversarial coin that always returns the same bit.
    Constant(Bit),
    /// A coin that alternates by round parity.
    Alternating,
    /// A coin replaying a fixed script (then repeating its last bit).
    Scripted(Vec<bool>),
    /// An arbitrary coin object (not serializable).
    Custom(Arc<dyn CommonCoin>),
}

impl CoinSpec {
    /// Materializes the coin for a run with the given master seed.
    pub fn build(&self, seed: u64) -> Arc<dyn CommonCoin> {
        match self {
            CoinSpec::Seeded => Arc::new(SeededCommonCoin::new(seed ^ COIN_DOMAIN_SEP)),
            CoinSpec::Constant(b) => Arc::new(ConstantCoin(b.as_bool())),
            CoinSpec::Alternating => Arc::new(AlternatingCoin::new()),
            CoinSpec::Scripted(script) => Arc::new(ScriptedCoin::new(script.clone())),
            CoinSpec::Custom(coin) => Arc::clone(coin),
        }
    }
}

impl fmt::Debug for CoinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoinSpec::Seeded => write!(f, "Seeded"),
            CoinSpec::Constant(b) => f.debug_tuple("Constant").field(b).finish(),
            CoinSpec::Alternating => write!(f, "Alternating"),
            CoinSpec::Scripted(s) => f.debug_tuple("Scripted").field(s).finish(),
            CoinSpec::Custom(_) => f.debug_tuple("Custom").field(&"..").finish(),
        }
    }
}

impl PartialEq for CoinSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CoinSpec::Seeded, CoinSpec::Seeded) => true,
            (CoinSpec::Constant(a), CoinSpec::Constant(b)) => a == b,
            (CoinSpec::Alternating, CoinSpec::Alternating) => true,
            (CoinSpec::Scripted(a), CoinSpec::Scripted(b)) => a == b,
            (CoinSpec::Custom(a), CoinSpec::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Serialize for CoinSpec {
    fn to_value(&self) -> serde::Value {
        match self {
            CoinSpec::Seeded => serde::Value::Str("Seeded".to_string()),
            CoinSpec::Constant(b) => {
                serde::Value::Map(vec![("Constant".to_string(), b.to_value())])
            }
            CoinSpec::Alternating => serde::Value::Str("Alternating".to_string()),
            CoinSpec::Scripted(s) => {
                serde::Value::Map(vec![("Scripted".to_string(), s.to_value())])
            }
            CoinSpec::Custom(_) => serde::Value::Str("custom".to_string()),
        }
    }
}

impl Deserialize for CoinSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s == "Seeded" => Ok(CoinSpec::Seeded),
            serde::Value::Str(s) if s == "Alternating" => Ok(CoinSpec::Alternating),
            _ => {
                if let Some(b) = v.get("Constant") {
                    return Deserialize::from_value(b).map(CoinSpec::Constant);
                }
                if let Some(s) = v.get("Scripted") {
                    return Deserialize::from_value(s).map(CoinSpec::Scripted);
                }
                Err(serde::Error::msg(
                    "CoinSpec: expected Seeded | Alternating | {Constant} | {Scripted} \
                     (custom coins are code, not data)",
                ))
            }
        }
    }
}

/// Which execution engine a virtual-time backend uses to drive the
/// processes of a scenario (real-time backends ignore the knob).
///
/// All engines consume the same scheduler event stream and produce
/// identical [`crate::Outcome`]s — decisions, agreement, decider sets,
/// even trace hashes — for any declarative scenario
/// (`tests/engine_equivalence.rs` asserts this on a seeded corpus
/// covering binary, multivalued, and replicated-log bodies). They differ
/// only in *how* a process is represented and scheduled:
///
/// * [`Engine::Threads`] — the reference engine: each process runs the
///   blocking `Env`-trait algorithm on its own OS thread, with a
///   conductor baton serializing execution. Faithful to the paper's
///   pseudocode, but two context switches per burst cap it at a few
///   thousand processes.
/// * [`Engine::EventDriven`] — the default: each process is a resumable
///   `ofa_core::sm` state machine ([`ofa_core::sm::ConsensusSm`],
///   [`ofa_core::sm::MultivaluedSm`], [`ofa_core::sm::LogSm`], matching
///   the body) stepped directly off the event heap on a single thread:
///   no spawned threads, no baton, no channels. Scales to tens of
///   thousands of processes (the `escale` / `smrscale` experiments).
///   Custom protocol bodies ([`crate::Body::Custom`]) are blocking code
///   and fall back to [`Engine::Threads`] —
///   [`crate::Outcome::engine_used`] records which engine actually ran.
/// * [`Engine::ParallelEvent`] — the event-driven engine sharded by
///   cluster across a worker pool: each shard owns its clusters'
///   machines, shared memories, and scheduler heap, and shards exchange
///   cross-shard deliveries at deterministic virtual-time epoch barriers
///   (conservative lookahead = [`crate::DelayModel::min_delay`]).
///   Bit-for-bit identical to [`Engine::EventDriven`] for any seed *and
///   any worker count* — the cluster partition is exactly the paper's
///   communication structure, so shards only interact through the
///   message schedule, which is a pure function of the scenario. Falls
///   back (observably, via [`crate::Outcome::engine_used`]) to
///   [`Engine::EventDriven`] when parallelism cannot help or cannot be
///   exact: fewer than two shards, a delay model whose
///   [`crate::DelayModel::min_delay`] is zero (no lookahead), or
///   [`crate::Scenario::keep_trace`] (event *order* is reconstructed
///   only by the sequential engines); and to [`Engine::Threads`] for
///   custom bodies. One caveat survives on purpose: an attached
///   [`crate::Scenario::observer`] is invoked from shard threads
///   concurrently, so while every *per-process* event subsequence (and
///   the whole [`crate::Outcome`]) is deterministic, the global
///   interleaving of callbacks across processes is not — per-process
///   collectors (e.g. `ofa-smr`'s `LogCollector`, which large SMR runs
///   rely on) are unaffected; use a sequential engine for
///   order-sensitive observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// One OS thread per process + conductor baton (the reference).
    Threads,
    /// Single-threaded resumable-state-machine engine (the default).
    EventDriven,
    /// Cluster-sharded event engine on a worker pool.
    ParallelEvent {
        /// Worker threads to use; `0` = auto (one per available core,
        /// capped by the number of clusters).
        workers: u64,
    },
}

impl Engine {
    /// Shorthand for [`Engine::ParallelEvent`] with auto-detected workers.
    pub fn parallel() -> Self {
        Engine::ParallelEvent { workers: 0 }
    }
}

impl Serialize for Engine {
    fn to_value(&self) -> serde::Value {
        match self {
            Engine::Threads => serde::Value::Str("Threads".to_string()),
            Engine::EventDriven => serde::Value::Str("EventDriven".to_string()),
            Engine::ParallelEvent { workers } => serde::Value::Map(vec![(
                "ParallelEvent".to_string(),
                serde::Value::Map(vec![("workers".to_string(), serde::Value::U64(*workers))]),
            )]),
        }
    }
}

impl Deserialize for Engine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s == "Threads" => Ok(Engine::Threads),
            serde::Value::Str(s) if s == "EventDriven" => Ok(Engine::EventDriven),
            // Bare string form: auto worker count.
            serde::Value::Str(s) if s == "ParallelEvent" => Ok(Engine::parallel()),
            _ => match v.get("ParallelEvent") {
                Some(inner) => {
                    let workers = match inner.get("workers") {
                        Some(w) => Deserialize::from_value(w)?,
                        None => 0,
                    };
                    Ok(Engine::ParallelEvent { workers })
                }
                None => Err(serde::Error::msg(
                    "Engine: expected Threads | EventDriven | {ParallelEvent: {workers}}",
                )),
            },
        }
    }
}

impl Default for Engine {
    /// The scalable engine: since the bit-for-bit equivalence corpus
    /// covers every declarative body, new scenarios default to it. Pin
    /// [`Engine::Threads`] (CLI: `--engine threads`) to run the
    /// conductor reference instead.
    fn default() -> Self {
        Engine::EventDriven
    }
}

/// A complete, backend-agnostic description of one consensus execution:
/// *what* to run (partition, body, configuration, proposals) and *under
/// which conditions* (seed, failure pattern, network/cost models, coin).
///
/// The same `Scenario` value executes on any [`crate::Backend`] — the
/// deterministic simulator, the real-thread runtime, or any future
/// substrate — which is the paper's central claim made into an API: the
/// protocol (and now its whole workload description) is independent of the
/// communication substrate underneath.
///
/// Fields that are plain data serialize via serde and round-trip
/// losslessly, so scenarios can be stored, shipped, and replayed
/// bit-for-bit on the simulator. The three hook fields that carry code
/// rather than data — a [`Body::Custom`] body, a [`CoinSpec::Custom`]
/// coin, and the [`Scenario::observer`] — do not survive serialization
/// (the observer is silently dropped; custom bodies/coins fail to
/// deserialize).
///
/// # Examples
///
/// ```
/// use ofa_core::Algorithm;
/// use ofa_scenario::Scenario;
/// use ofa_topology::Partition;
///
/// let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
///     .proposals_split(3)
///     .seed(42);
/// // The description is a value: serialize, ship, replay.
/// let json = serde_json::to_string(&scenario).unwrap();
/// let copy: Scenario = serde_json::from_str(&json).unwrap();
/// assert_eq!(copy.seed, 42);
/// assert_eq!(copy.partition, scenario.partition);
/// ```
#[derive(Clone)]
pub struct Scenario {
    /// The cluster decomposition.
    pub partition: Partition,
    /// What every process executes.
    pub body: Body,
    /// Protocol switches (pre-agreement, amplification, round budget).
    pub config: ProtocolConfig,
    /// One proposal per process.
    pub proposals: Vec<Bit>,
    /// Master seed for all randomness (delays, local coins, common coin).
    pub seed: u64,
    /// The network model: link-class latencies, jitter, loss,
    /// duplication (virtual-time backends only).
    pub network: NetworkModel,
    /// Per-operation cost model (virtual-time backends only).
    pub costs: CostModel,
    /// The failure pattern.
    pub crashes: CrashPlan,
    /// The churn pattern: scheduled leaves and rejoins.
    pub churn: ChurnPlan,
    /// The common-coin source.
    pub coin: CoinSpec,
    /// Retain the full event trace (backends that record one).
    pub keep_trace: bool,
    /// Cap on simulator events (safety net against non-termination).
    pub max_events: u64,
    /// Wall-clock budget in milliseconds (real-time backends only).
    pub timeout_ms: u64,
    /// Process-execution engine for virtual-time backends.
    pub engine: Engine,
    /// Observer hook (e.g. [`ofa_core::InvariantChecker`]); not serialized.
    pub observer: Option<Arc<dyn Observer>>,
}

impl Scenario {
    /// Starts a scenario for `partition` running `algorithm` with the
    /// paper's configuration, alternating proposals (`0, 1, 0, 1, …`),
    /// seed 0, default delays/costs, no crashes, the seeded fair coin, a
    /// round budget of 512, a 10-second wall-clock budget, and the
    /// default ([`Engine::EventDriven`]) execution engine.
    pub fn new(partition: Partition, algorithm: Algorithm) -> Self {
        let n = partition.n();
        Scenario {
            partition,
            body: Body::Algo(algorithm),
            config: ProtocolConfig::paper().with_max_rounds(512),
            proposals: (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
            seed: 0,
            network: NetworkModel::default(),
            costs: CostModel::default(),
            crashes: CrashPlan::new(),
            churn: ChurnPlan::new(),
            coin: CoinSpec::Seeded,
            keep_trace: false,
            max_events: 5_000_000,
            timeout_ms: 10_000,
            engine: Engine::default(),
            observer: None,
        }
    }

    /// Replaces the algorithm with a custom protocol body (e.g. the m&m
    /// comparator of `ofa-mm`). Custom bodies are blocking code: on
    /// virtual-time backends they always run on the thread conductor
    /// regardless of the [`Scenario::engine`] knob (see
    /// [`crate::Outcome::engine_used`]).
    pub fn custom_body(mut self, body: Arc<dyn ProcessBody>) -> Self {
        self.body = Body::Custom(body);
        self
    }

    /// Replaces the body with a serializable multivalued-consensus
    /// workload: process `i` proposes `proposals[i]`, reduced to this
    /// scenario's binary `algorithm`.
    pub fn multivalued(mut self, algorithm: Algorithm, proposals: Vec<ofa_core::Payload>) -> Self {
        self.body = Body::Multivalued(crate::MvWorkload {
            algorithm,
            proposals,
        });
        self
    }

    /// Replaces the body with a serializable replicated-log workload:
    /// `slots` multivalued instances, process `i` proposing from
    /// `queues[i]` (cycled).
    pub fn replicated_log(
        mut self,
        algorithm: Algorithm,
        slots: u64,
        queues: Vec<Vec<ofa_core::Payload>>,
    ) -> Self {
        self.body = Body::ReplicatedLog(crate::SmrWorkload {
            algorithm,
            slots,
            queues,
            traffic: None,
        });
        self
    }

    /// Replaces the body with a *traffic-driven* replicated-log workload:
    /// `slots` multivalued instances whose proposals come from simulated
    /// clients per `traffic` (arrival process, bounded proposer queues,
    /// batch-fill-or-go batching) instead of pre-seeded queues. The run
    /// reports client-service statistics ([`crate::Outcome::service`]).
    /// Virtual-time backends only — the real-thread runtime has no
    /// modeled clock and rejects traffic scenarios.
    ///
    /// Composes with a churn plan, but churn-planned replicas serve no
    /// clients (they propose empty filler slots in both incarnations —
    /// see [`ofa_core::Env::serves_traffic`] for why agreement demands
    /// it); their clients are counted as failed over, not shed.
    pub fn replicated_log_traffic(
        mut self,
        algorithm: Algorithm,
        slots: u64,
        traffic: ofa_core::TrafficSpec,
    ) -> Self {
        self.body = Body::ReplicatedLog(crate::SmrWorkload {
            algorithm,
            slots,
            queues: Vec::new(),
            traffic: Some(traffic),
        });
        self
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Bounds the number of protocol rounds per process.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config = self.config.with_max_rounds(rounds);
        self
    }

    /// Sets every process's proposal explicitly.
    ///
    /// Backends panic on `run` if the length differs from `n`.
    pub fn proposals(mut self, proposals: Vec<Bit>) -> Self {
        self.proposals = proposals;
        self
    }

    /// All processes propose the same value.
    pub fn proposals_all(mut self, v: Bit) -> Self {
        self.proposals = vec![v; self.partition.n()];
        self
    }

    /// The first `ones` processes propose 1, the rest 0 — a convenient
    /// mixed-input workload.
    pub fn proposals_split(mut self, ones: usize) -> Self {
        let n = self.partition.n();
        self.proposals = (0..n).map(|i| Bit::from(i < ones)).collect();
        self
    }

    /// Seeds all randomness (delays, local coins, common coin).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model — shorthand for a flat, lossless
    /// [`NetworkModel`] over `delay` (byte-compatible with the
    /// pre-network-model behavior).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.network = NetworkModel::flat(delay);
        self
    }

    /// Sets the full network model (link classes, jitter, loss,
    /// duplication).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the per-message loss rate in parts per million, keeping the
    /// current latency classes.
    pub fn loss_ppm(mut self, ppm: u32) -> Self {
        self.network.loss_ppm = ppm;
        self
    }

    /// Sets the per-message duplication rate in parts per million,
    /// keeping the current latency classes.
    pub fn dup_ppm(mut self, ppm: u32) -> Self {
        self.network.dup_ppm = ppm;
        self
    }

    /// Sets the churn pattern (scheduled leaves and rejoins).
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = plan;
        self
    }

    /// Sets the per-operation cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the failure pattern.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crashes = plan;
        self
    }

    /// Selects the common-coin source.
    pub fn coin(mut self, coin: CoinSpec) -> Self {
        self.coin = coin;
        self
    }

    /// Substitutes an arbitrary common-coin object (shorthand for
    /// [`CoinSpec::Custom`]).
    pub fn common_coin(mut self, coin: Arc<dyn CommonCoin>) -> Self {
        self.coin = CoinSpec::Custom(coin);
        self
    }

    /// Attaches an observer (e.g. [`ofa_core::InvariantChecker`]).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Retains the full event trace in the outcome (on backends that
    /// record one; the replay hash is always on).
    pub fn keep_trace(mut self) -> Self {
        self.keep_trace = true;
        self
    }

    /// Caps the number of simulator events.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Selects the process-execution engine for virtual-time backends.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Shorthand for selecting [`Engine::EventDriven`].
    pub fn event_driven(self) -> Self {
        self.engine(Engine::EventDriven)
    }

    /// Shorthand for selecting [`Engine::ParallelEvent`] with
    /// auto-detected workers (`workers` > 0 pins the pool size — useful
    /// for benchmarking and for the determinism-across-worker-counts
    /// tests).
    pub fn parallel(self, workers: u64) -> Self {
        self.engine(Engine::ParallelEvent { workers })
    }

    /// Sets the wall-clock budget for real-time backends, after which
    /// undecided processes are stopped (indulgence: they stop *without*
    /// deciding). Sub-millisecond durations round **up** to 1 ms so a
    /// positive budget never truncates to zero.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout_ms = timeout.as_micros().div_ceil(1_000) as u64;
        self
    }

    /// The wall-clock budget as a [`Duration`].
    pub fn timeout_duration(&self) -> Duration {
        Duration::from_millis(self.timeout_ms)
    }

    /// Materializes the common coin for this scenario's seed.
    pub fn build_coin(&self) -> Arc<dyn CommonCoin> {
        self.coin.build(self.seed)
    }

    /// Runs this scenario on `backend` (sugar for `backend.run(self)`).
    pub fn run_on<B: crate::Backend + ?Sized>(&self, backend: &B) -> crate::Outcome {
        backend.run(self)
    }

    /// Checks internal consistency (used by backends before running).
    ///
    /// # Panics
    ///
    /// Panics if the proposal vector length differs from `n`, or if the
    /// crash plan or delay model names a process index `>= n` — the
    /// latter matters for deserialized scenarios, where a silently
    /// ignored out-of-range trigger would report a fault-free run as if
    /// the failure pattern had been exercised.
    pub fn assert_valid(&self) {
        let n = self.partition.n();
        assert_eq!(
            self.proposals.len(),
            n,
            "need one proposal per process (got {} for n={n})",
            self.proposals.len()
        );
        match &self.body {
            Body::Multivalued(mv) => assert_eq!(
                mv.proposals.len(),
                n,
                "need one multivalued proposal per process (got {} for n={n})",
                mv.proposals.len()
            ),
            Body::ReplicatedLog(smr) => {
                if let Some(spec) = &smr.traffic {
                    spec.assert_valid();
                    // Traffic-driven workloads synthesize proposals from
                    // client arrivals; pre-seeded queues are either absent
                    // or full-length (ignored slots would silently change
                    // the workload's meaning otherwise).
                    assert!(
                        smr.queues.is_empty(),
                        "a traffic-driven replicated log must not also pre-seed \
                         command queues (got {} queues)",
                        smr.queues.len()
                    );
                } else {
                    assert_eq!(
                        smr.queues.len(),
                        n,
                        "need one command queue per process (got {} for n={n})",
                        smr.queues.len()
                    );
                }
            }
            Body::Algo(_) | Body::Custom(_) => {}
        }
        for (p, trigger) in self.crashes.iter() {
            assert!(
                p.index() < n,
                "crash trigger {trigger:?} names process index {} but n={n}",
                p.index()
            );
        }
        fn check_delay(model: &DelayModel, n: usize) {
            if let DelayModel::Laggard { slow, base, .. } = model {
                for p in slow {
                    assert!(
                        p.index() < n,
                        "laggard set names process index {} but n={n}",
                        p.index()
                    );
                }
                check_delay(base, n);
            }
        }
        if let crate::LinkClasses::Flat(delay) = &self.network.classes {
            check_delay(delay, n);
        }
        self.network.assert_valid(n);
        self.churn.assert_valid(n, &self.crashes);
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("partition", &self.partition)
            .field("body", &self.body)
            .field("seed", &self.seed)
            .field("crashes", &self.crashes.len())
            .field("coin", &self.coin)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("partition".to_string(), self.partition.to_value()),
            ("body".to_string(), self.body.to_value()),
            ("config".to_string(), self.config.to_value()),
            ("proposals".to_string(), self.proposals.to_value()),
            ("seed".to_string(), serde::Value::U64(self.seed)),
            ("network".to_string(), self.network.to_value()),
            ("costs".to_string(), self.costs.to_value()),
            ("crashes".to_string(), self.crashes.to_value()),
            ("churn".to_string(), self.churn.to_value()),
            ("coin".to_string(), self.coin.to_value()),
            (
                "keep_trace".to_string(),
                serde::Value::Bool(self.keep_trace),
            ),
            ("max_events".to_string(), serde::Value::U64(self.max_events)),
            ("timeout_ms".to_string(), serde::Value::U64(self.timeout_ms)),
            ("engine".to_string(), self.engine.to_value()),
        ])
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("Scenario: missing field {name:?}")))
        };
        Ok(Scenario {
            partition: Deserialize::from_value(field("partition")?)?,
            body: Deserialize::from_value(field("body")?)?,
            config: Deserialize::from_value(field("config")?)?,
            proposals: Deserialize::from_value(field("proposals")?)?,
            seed: Deserialize::from_value(field("seed")?)?,
            // Pre-network-model scenarios stored a bare DelayModel under
            // "delay"; NetworkModel::from_value lifts that shape to the
            // equivalent flat lossless network, so both keys replay
            // byte-for-byte.
            network: match v.get("network") {
                Some(net) => Deserialize::from_value(net)?,
                None => Deserialize::from_value(field("delay")?)?,
            },
            costs: Deserialize::from_value(field("costs")?)?,
            crashes: Deserialize::from_value(field("crashes")?)?,
            // Absent in scenarios stored before churn existed.
            churn: match v.get("churn") {
                Some(c) => Deserialize::from_value(c)?,
                None => ChurnPlan::new(),
            },
            coin: Deserialize::from_value(field("coin")?)?,
            keep_trace: Deserialize::from_value(field("keep_trace")?)?,
            max_events: Deserialize::from_value(field("max_events")?)?,
            timeout_ms: Deserialize::from_value(field("timeout_ms")?)?,
            // Absent in scenarios stored before the knob existed — those
            // corpora ran on the conductor, so replay them there (the
            // engines are equivalent, but fidelity-by-construction is
            // free here).
            engine: match v.get("engine") {
                Some(e) => Deserialize::from_value(e)?,
                None => Engine::Threads,
            },
            observer: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_topology::ProcessId;

    #[test]
    fn defaults_match_documented_contract() {
        let sc = Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin);
        assert_eq!(sc.proposals.len(), 7);
        assert_eq!(sc.config.max_rounds, Some(512));
        assert_eq!(sc.seed, 0);
        assert!(sc.crashes.is_empty());
        assert_eq!(sc.timeout_duration(), Duration::from_secs(10));
        assert_eq!(sc.engine, Engine::EventDriven, "scalable engine by default");
        sc.assert_valid();
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let sc = Scenario::new(
            Partition::from_sizes(&[2, 3]).unwrap(),
            Algorithm::CommonCoin,
        )
        .proposals_split(2)
        .seed(99)
        .delay(DelayModel::Uniform { lo: 10, hi: 40 })
        .crashes(CrashPlan::new().crash_at_step(ProcessId(1), 7))
        .coin(CoinSpec::Scripted(vec![true, false]))
        .max_rounds(16);
        let json = serde_json::to_string(&sc).unwrap();
        let copy: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&copy).unwrap(), json);
        assert_eq!(copy.partition, sc.partition);
        assert_eq!(copy.proposals, sc.proposals);
        assert_eq!(copy.crashes, sc.crashes);
        assert_eq!(copy.coin, sc.coin);
    }

    #[test]
    fn scenarios_stored_before_the_engine_knob_still_deserialize() {
        // Simulate a pre-knob corpus entry: serialize, strip the field.
        let sc = Scenario::new(Partition::single_cluster(2), Algorithm::LocalCoin)
            .engine(Engine::EventDriven);
        let json = serde_json::to_string(&sc).unwrap();
        assert!(json.contains("\"engine\":\"EventDriven\""), "{json}");
        let stripped = json.replace(",\"engine\":\"EventDriven\"", "");
        assert_ne!(stripped, json, "field must have been removed");
        let old: Scenario = serde_json::from_str(&stripped).unwrap();
        assert_eq!(
            old.engine,
            Engine::Threads,
            "absent knob = reference engine"
        );
    }

    #[test]
    fn parallel_engine_knob_round_trips_and_accepts_the_bare_string() {
        let sc = Scenario::new(Partition::even(6, 3), Algorithm::LocalCoin).parallel(4);
        assert_eq!(sc.engine, Engine::ParallelEvent { workers: 4 });
        let json = serde_json::to_string(&sc).unwrap();
        assert!(json.contains("\"ParallelEvent\":{\"workers\":4}"), "{json}");
        let copy: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(copy.engine, sc.engine);
        // The bare string form means auto workers.
        let bare = json.replace("{\"ParallelEvent\":{\"workers\":4}}", "\"ParallelEvent\"");
        assert_ne!(bare, json);
        let auto: Scenario = serde_json::from_str(&bare).unwrap();
        assert_eq!(auto.engine, Engine::parallel());
    }

    #[test]
    fn scenarios_stored_before_the_network_model_still_deserialize() {
        // A pre-network-model corpus entry stored a bare DelayModel
        // under the "delay" key and had no "churn" field.
        let sc = Scenario::new(Partition::single_cluster(2), Algorithm::LocalCoin)
            .delay(DelayModel::Uniform { lo: 10, hi: 40 });
        let json = serde_json::to_string(&sc).unwrap();
        let legacy = json
            .replace(
                "\"network\":{\"classes\":{\"Flat\":{\"Uniform\":{\"lo\":10,\"hi\":40}}},\"loss_ppm\":0,\"dup_ppm\":0}",
                "\"delay\":{\"Uniform\":{\"lo\":10,\"hi\":40}}",
            )
            .replace(",\"churn\":[]", "");
        assert_ne!(legacy, json, "both fields must have been rewritten");
        let old: Scenario = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.network, sc.network, "delay key lifts to a flat network");
        assert!(old.churn.is_empty(), "absent churn = none");
    }

    #[test]
    fn churn_and_network_knobs_round_trip() {
        let sc = Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin)
            .loss_ppm(1_000)
            .dup_ppm(50)
            .churn(ChurnPlan::new().leave_rejoin(
                ProcessId(1),
                crate::VirtualTime::from_ticks(500),
                crate::VirtualTime::from_ticks(900),
            ));
        sc.assert_valid();
        let json = serde_json::to_string(&sc).unwrap();
        let copy: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(copy.network, sc.network);
        assert_eq!(copy.churn, sc.churn);
    }

    #[test]
    #[should_panic(expected = "both the churn plan and the crash plan")]
    fn churn_crash_overlap_is_rejected() {
        Scenario::new(Partition::single_cluster(3), Algorithm::LocalCoin)
            .crashes(CrashPlan::new().crash_at_start(ProcessId(1)))
            .churn(ChurnPlan::new().leave(ProcessId(1), crate::VirtualTime::from_ticks(100)))
            .assert_valid();
    }

    #[test]
    fn traffic_workload_round_trips_and_validates() {
        let spec = ofa_core::TrafficSpec {
            arrival: ofa_core::ArrivalProcess::Poisson { mean_gap: 40 },
            clients: 16,
            queue_cap: 64,
            batch_max: 8,
            batch_min: 0,
        };
        let sc = Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin).replicated_log_traffic(
            Algorithm::LocalCoin,
            5,
            spec,
        );
        sc.assert_valid();
        let json = serde_json::to_string(&sc).unwrap();
        let copy: Scenario = serde_json::from_str(&json).unwrap();
        match &copy.body {
            Body::ReplicatedLog(smr) => assert_eq!(smr.traffic.as_ref(), Some(&spec)),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "must not also pre-seed")]
    fn traffic_plus_preseeded_queues_is_rejected() {
        let mut sc = Scenario::new(Partition::single_cluster(2), Algorithm::LocalCoin)
            .replicated_log_traffic(
                Algorithm::LocalCoin,
                2,
                ofa_core::TrafficSpec {
                    arrival: ofa_core::ArrivalProcess::Periodic {
                        period: 5,
                        phase: 0,
                    },
                    clients: 2,
                    queue_cap: 4,
                    batch_max: 2,
                    batch_min: 0,
                },
            );
        if let Body::ReplicatedLog(smr) = &mut sc.body {
            smr.queues = vec![vec![], vec![]];
        }
        sc.assert_valid();
    }

    #[test]
    fn seeded_coin_uses_domain_separator() {
        let sc = Scenario::new(Partition::single_cluster(2), Algorithm::CommonCoin).seed(5);
        let direct = SeededCommonCoin::new(5 ^ COIN_DOMAIN_SEP);
        let built = sc.build_coin();
        for r in 1..=32 {
            assert_eq!(built.bit(r), direct.bit(r));
        }
    }

    #[test]
    #[should_panic(expected = "one proposal per process")]
    fn wrong_proposal_count_is_rejected() {
        Scenario::new(Partition::single_cluster(3), Algorithm::LocalCoin)
            .proposals(vec![Bit::One])
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "names process index 7 but n=3")]
    fn out_of_range_crash_trigger_is_rejected() {
        // e.g. a hand-written JSON crash plan using 1-based ids.
        Scenario::new(Partition::single_cluster(3), Algorithm::LocalCoin)
            .crashes(CrashPlan::new().crash_at_start(ProcessId(7)))
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "laggard set names process index 9")]
    fn out_of_range_laggard_is_rejected() {
        Scenario::new(Partition::single_cluster(4), Algorithm::LocalCoin)
            .delay(DelayModel::Laggard {
                slow: vec![ProcessId(9)],
                factor: 3,
                base: Box::new(DelayModel::Constant(5)),
            })
            .assert_valid();
    }
}
