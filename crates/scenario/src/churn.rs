//! Churn: scheduled leaves and rejoins.
//!
//! A [`crate::CrashPlan`] models the paper's crash faults — premature,
//! permanent halts. Real deployments also *churn*: a process leaves
//! (indistinguishable from a crash to its peers) and later rejoins with
//! a fresh runtime state. [`ChurnPlan`] schedules both halves at virtual
//! times: at `leave` the process crashes exactly like a
//! [`crate::CrashTrigger::AtTime`] trigger; at `rejoin` (if any) it
//! restarts its protocol machine from its original proposal with a fresh
//! mailbox, a rejoin-domain local-coin stream, and its accumulated
//! metric counters, then re-enters dissemination.
//!
//! Each process has at most one leave and one optional rejoin, so a
//! rejoined process is always on its second incarnation — which is what
//! lets checkpoints re-seed churn events from the plan (like timed
//! crashes) instead of storing incarnation state.

use crate::VirtualTime;
use ofa_topology::{ProcessId, ProcessSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One process's scheduled departure, and optionally its return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the process leaves (crashes).
    pub leave: VirtualTime,
    /// When it rejoins, if ever. Must be strictly after `leave`.
    pub rejoin: Option<VirtualTime>,
}

/// The churn pattern of one run: which processes leave, and when (if
/// ever) they come back.
///
/// # Examples
///
/// ```
/// use ofa_scenario::{ChurnPlan, VirtualTime};
/// use ofa_topology::ProcessId;
///
/// let plan = ChurnPlan::new()
///     .leave(ProcessId(2), VirtualTime::from_ticks(3_000))
///     .leave_rejoin(
///         ProcessId(5),
///         VirtualTime::from_ticks(1_000),
///         VirtualTime::from_ticks(4_000),
///     );
/// assert_eq!(plan.len(), 2);
/// assert!(plan.event(ProcessId(5)).unwrap().rejoin.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    events: HashMap<ProcessId, ChurnEvent>,
}

impl ChurnPlan {
    /// No churn.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `p` to leave at `t` and never return — equivalent to a
    /// timed crash, but kept in the churn plan (the two plans must name
    /// disjoint processes).
    pub fn leave(mut self, p: ProcessId, t: VirtualTime) -> Self {
        self.events.insert(
            p,
            ChurnEvent {
                leave: t,
                rejoin: None,
            },
        );
        self
    }

    /// Schedules `p` to leave at `leave` and rejoin at `rejoin`.
    pub fn leave_rejoin(mut self, p: ProcessId, leave: VirtualTime, rejoin: VirtualTime) -> Self {
        self.events.insert(
            p,
            ChurnEvent {
                leave,
                rejoin: Some(rejoin),
            },
        );
        self
    }

    /// Inserts (or overwrites) the churn event for `p` in place.
    pub fn insert(&mut self, p: ProcessId, event: ChurnEvent) {
        self.events.insert(p, event);
    }

    /// The churn event for `p`, if any.
    pub fn event(&self, p: ProcessId) -> Option<ChurnEvent> {
        self.events.get(&p).copied()
    }

    /// Number of churning processes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no churn is planned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The churning processes, as a set over universe `n`.
    pub fn planned_set(&self, n: usize) -> ProcessSet {
        ProcessSet::from_indices(n, self.events.keys().map(|p| p.index()))
    }

    /// Iterates over `(process, event)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ChurnEvent)> + '_ {
        self.events.iter().map(|(p, e)| (*p, *e))
    }

    /// Checks internal consistency against a universe of `n` processes
    /// and a crash plan.
    ///
    /// # Panics
    ///
    /// Panics if an event names a process index `>= n`, a rejoin is not
    /// strictly after its leave, or a process appears in both the churn
    /// and the crash plan (their failure semantics would race).
    pub fn assert_valid(&self, n: usize, crashes: &crate::CrashPlan) {
        for (p, e) in self.iter() {
            assert!(
                p.index() < n,
                "churn event names process index {} but n={n}",
                p.index()
            );
            if let Some(r) = e.rejoin {
                assert!(
                    r > e.leave,
                    "process {} rejoins at {} but leaves at {} (rejoin must be later)",
                    p.index(),
                    r.ticks(),
                    e.leave.ticks()
                );
            }
            assert!(
                crashes.trigger(p).is_none(),
                "process {} appears in both the churn plan and the crash plan",
                p.index()
            );
        }
    }
}

/// Serialized as a process-index-sorted list of `[index, event]` pairs —
/// same canonical shape as [`crate::CrashPlan`].
impl Serialize for ChurnPlan {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(ProcessId, ChurnEvent)> = self.iter().collect();
        entries.sort_by_key(|(p, _)| *p);
        serde::Value::Seq(
            entries
                .into_iter()
                .map(|(p, e)| {
                    serde::Value::Seq(vec![serde::Value::U64(p.index() as u64), e.to_value()])
                })
                .collect(),
        )
    }
}

impl Deserialize for ChurnPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries: Vec<(usize, ChurnEvent)> = Deserialize::from_value(v)?;
        let mut plan = ChurnPlan::new();
        for (i, e) in entries {
            plan.events.insert(ProcessId(i), e);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashPlan;

    #[test]
    fn builders_accumulate_and_overwrite() {
        let plan = ChurnPlan::new()
            .leave(ProcessId(1), VirtualTime::from_ticks(500))
            .leave_rejoin(
                ProcessId(1),
                VirtualTime::from_ticks(700),
                VirtualTime::from_ticks(900),
            );
        assert_eq!(plan.len(), 1, "later entries overwrite");
        let e = plan.event(ProcessId(1)).unwrap();
        assert_eq!(e.leave.ticks(), 700);
        assert_eq!(e.rejoin.unwrap().ticks(), 900);
        assert!(plan.planned_set(3).contains(ProcessId(1)));
    }

    #[test]
    fn serde_is_canonical_and_round_trips() {
        let plan = ChurnPlan::new()
            .leave(ProcessId(3), VirtualTime::from_ticks(100))
            .leave_rejoin(
                ProcessId(0),
                VirtualTime::from_ticks(50),
                VirtualTime::from_ticks(120),
            );
        let json = serde_json::to_string(&plan).unwrap();
        // Sorted by process index regardless of insertion order.
        assert!(
            json.find("[0,").unwrap() < json.find("[3,").unwrap(),
            "{json}"
        );
        let copy: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(copy, plan);
    }

    #[test]
    #[should_panic(expected = "rejoin must be later")]
    fn rejoin_before_leave_is_rejected() {
        ChurnPlan::new()
            .leave_rejoin(
                ProcessId(0),
                VirtualTime::from_ticks(500),
                VirtualTime::from_ticks(500),
            )
            .assert_valid(2, &CrashPlan::new());
    }

    #[test]
    #[should_panic(expected = "both the churn plan and the crash plan")]
    fn overlap_with_crash_plan_is_rejected() {
        ChurnPlan::new()
            .leave(ProcessId(0), VirtualTime::from_ticks(500))
            .assert_valid(2, &CrashPlan::new().crash_at_start(ProcessId(0)));
    }
}
