//! Churn: scheduled leaves and rejoins.
//!
//! A [`crate::CrashPlan`] models the paper's crash faults — premature,
//! permanent halts. Real deployments also *churn*: a process leaves
//! (indistinguishable from a crash to its peers) and later rejoins with
//! a fresh runtime state. [`ChurnPlan`] schedules both halves at virtual
//! times: at `leave` the process crashes exactly like a
//! [`crate::CrashTrigger::AtTime`] trigger; at `rejoin` (if any) it
//! restarts its protocol machine from its original proposal with a fresh
//! mailbox, a rejoin-domain local-coin stream, and its accumulated
//! metric counters, then re-enters dissemination.
//!
//! Each process has at most one leave and one optional rejoin, so a
//! rejoined process is always on its second incarnation — which is what
//! lets checkpoints re-seed churn events from the plan (like timed
//! crashes) instead of storing incarnation state.
//!
//! Besides explicit per-process events, a plan can carry a
//! [`PoissonChurn`] *arrival process*: leaves arrive per process at a
//! `rate_ppm` per million ticks, with exponentially distributed
//! downtimes. The arrivals are a pure PRF of `(scenario seed, process)`
//! on a churn-separated domain — the same `(seed, p, k)` purity rule as
//! message delays — so a backend expands them into explicit events with
//! [`ChurnPlan::resolve`] before running, and every engine (and every
//! checkpoint resume) sees the identical expansion.

use crate::delay::mix_delay_seed;
use crate::VirtualTime;
use ofa_topology::{ProcessId, ProcessSet};
use rand::distributions::exponential_ticks;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Domain separator folded into the churn-arrival PRF so Poisson churn
/// never collides with the delay, fate, duplication, or coin streams
/// derived from the same master seed.
const CHURN_DOMAIN_SEP: u64 = 0x000C_4A2B_0A12_5EED;

/// A Poisson churn arrival process: each process (independently)
/// leaves after an exponentially distributed wait and stays down for an
/// exponentially distributed time before rejoining.
///
/// Arrivals are sampled per process from a domain-separated PRF of the
/// scenario seed, so the expansion into explicit [`ChurnEvent`]s
/// ([`ChurnPlan::resolve`]) is a pure function of `(seed, n)` — the
/// same purity contract as per-message delays, which is what keeps all
/// three engines and checkpoint resumes bit-for-bit equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoissonChurn {
    /// Expected leaves per process per million ticks (the arrival
    /// rate). `0` disables the process entirely.
    pub rate_ppm: u32,
    /// Mean downtime in ticks before the rejoin; `0` means churned
    /// processes leave forever (no rejoin).
    pub mean_down_ticks: u64,
    /// Sampling horizon: a first arrival at or beyond this virtual time
    /// is discarded (the process never churns). Keeps the expansion
    /// finite and the event heap free of far-future no-ops.
    pub horizon_ticks: u64,
}

impl PoissonChurn {
    /// Default mean downtime (ticks): ten default network delays.
    pub const DEFAULT_MEAN_DOWN: u64 = 10_000;
    /// Default sampling horizon (ticks): ~tens of consensus rounds
    /// under the default network calibration.
    pub const DEFAULT_HORIZON: u64 = 100_000;
}

/// One process's scheduled departure, and optionally its return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the process leaves (crashes).
    pub leave: VirtualTime,
    /// When it rejoins, if ever. Must be strictly after `leave`.
    pub rejoin: Option<VirtualTime>,
}

/// The churn pattern of one run: which processes leave, and when (if
/// ever) they come back.
///
/// # Examples
///
/// ```
/// use ofa_scenario::{ChurnPlan, VirtualTime};
/// use ofa_topology::ProcessId;
///
/// let plan = ChurnPlan::new()
///     .leave(ProcessId(2), VirtualTime::from_ticks(3_000))
///     .leave_rejoin(
///         ProcessId(5),
///         VirtualTime::from_ticks(1_000),
///         VirtualTime::from_ticks(4_000),
///     );
/// assert_eq!(plan.len(), 2);
/// assert!(plan.event(ProcessId(5)).unwrap().rejoin.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    events: HashMap<ProcessId, ChurnEvent>,
    poisson: Option<PoissonChurn>,
}

impl ChurnPlan {
    /// No churn.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `p` to leave at `t` and never return — equivalent to a
    /// timed crash, but kept in the churn plan (the two plans must name
    /// disjoint processes).
    pub fn leave(mut self, p: ProcessId, t: VirtualTime) -> Self {
        self.events.insert(
            p,
            ChurnEvent {
                leave: t,
                rejoin: None,
            },
        );
        self
    }

    /// Schedules `p` to leave at `leave` and rejoin at `rejoin`.
    pub fn leave_rejoin(mut self, p: ProcessId, leave: VirtualTime, rejoin: VirtualTime) -> Self {
        self.events.insert(
            p,
            ChurnEvent {
                leave,
                rejoin: Some(rejoin),
            },
        );
        self
    }

    /// Inserts (or overwrites) the churn event for `p` in place.
    pub fn insert(&mut self, p: ProcessId, event: ChurnEvent) {
        self.events.insert(p, event);
    }

    /// Removes the churn event for `p` in place, returning it if any.
    pub fn remove(&mut self, p: ProcessId) -> Option<ChurnEvent> {
        self.events.remove(&p)
    }

    /// Adds a Poisson arrival process with default downtime and horizon
    /// ([`PoissonChurn::DEFAULT_MEAN_DOWN`],
    /// [`PoissonChurn::DEFAULT_HORIZON`]): every process not named by an
    /// explicit event or the crash plan leaves at rate `rate_ppm` per
    /// million ticks and rejoins after an exponential downtime.
    pub fn poisson(self, rate_ppm: u32) -> Self {
        self.poisson_spec(PoissonChurn {
            rate_ppm,
            mean_down_ticks: PoissonChurn::DEFAULT_MEAN_DOWN,
            horizon_ticks: PoissonChurn::DEFAULT_HORIZON,
        })
    }

    /// Adds (or replaces, or with `None` clears) the full Poisson
    /// arrival spec.
    pub fn poisson_spec(mut self, spec: PoissonChurn) -> Self {
        self.poisson = Some(spec);
        self
    }

    /// The Poisson arrival spec, if any.
    pub fn poisson_arrivals(&self) -> Option<PoissonChurn> {
        self.poisson
    }

    /// Expands the plan into explicit events only: Poisson arrivals are
    /// sampled — one leave/rejoin pair per process, from a
    /// churn-domain-separated PRF of `(seed, process)` — for every
    /// process not already named by an explicit event or by `crashes`
    /// (whose failure semantics would race). A pure function of its
    /// arguments: backends call this once before running, so all
    /// engines, snapshots, and resumes see the identical expansion.
    pub fn resolve(&self, seed: u64, n: usize, crashes: &crate::CrashPlan) -> ChurnPlan {
        let Some(spec) = self.poisson else {
            return self.clone();
        };
        let mut resolved = ChurnPlan {
            events: self.events.clone(),
            poisson: None,
        };
        if spec.rate_ppm == 0 {
            return resolved;
        }
        let mean_gap = 1_000_000u64 / u64::from(spec.rate_ppm);
        for i in 0..n {
            let p = ProcessId(i);
            if resolved.events.contains_key(&p) || crashes.trigger(p).is_some() {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(mix_delay_seed(seed ^ CHURN_DOMAIN_SEP, p, p, 0));
            let leave = exponential_ticks(&mut rng, mean_gap);
            if leave >= spec.horizon_ticks {
                continue;
            }
            let rejoin = (spec.mean_down_ticks > 0).then(|| {
                let down = exponential_ticks(&mut rng, spec.mean_down_ticks).max(1);
                VirtualTime::from_ticks(leave + down)
            });
            resolved.events.insert(
                p,
                ChurnEvent {
                    leave: VirtualTime::from_ticks(leave),
                    rejoin,
                },
            );
        }
        resolved
    }

    /// The churn event for `p`, if any.
    pub fn event(&self, p: ProcessId) -> Option<ChurnEvent> {
        self.events.get(&p).copied()
    }

    /// Number of explicitly churning processes (a Poisson spec adds
    /// more at [`ChurnPlan::resolve`] time).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no churn is planned — neither explicit events nor a
    /// Poisson arrival process that could generate some.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.poisson.is_none_or(|p| p.rate_ppm == 0)
    }

    /// The churning processes, as a set over universe `n`.
    pub fn planned_set(&self, n: usize) -> ProcessSet {
        ProcessSet::from_indices(n, self.events.keys().map(|p| p.index()))
    }

    /// Iterates over `(process, event)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ChurnEvent)> + '_ {
        self.events.iter().map(|(p, e)| (*p, *e))
    }

    /// Checks internal consistency against a universe of `n` processes
    /// and a crash plan.
    ///
    /// # Panics
    ///
    /// Panics if an event names a process index `>= n`, a rejoin is not
    /// strictly after its leave, a process appears in both the churn
    /// and the crash plan (their failure semantics would race), or a
    /// Poisson spec is out of range (`rate_ppm > 1_000_000`, or a
    /// nonzero rate with a zero horizon).
    pub fn assert_valid(&self, n: usize, crashes: &crate::CrashPlan) {
        if let Some(spec) = self.poisson {
            assert!(
                spec.rate_ppm <= 1_000_000,
                "poisson churn rate {} ppm exceeds 1_000_000",
                spec.rate_ppm
            );
            assert!(
                spec.rate_ppm == 0 || spec.horizon_ticks > 0,
                "poisson churn with rate {} ppm needs a nonzero horizon",
                spec.rate_ppm
            );
        }
        for (p, e) in self.iter() {
            assert!(
                p.index() < n,
                "churn event names process index {} but n={n}",
                p.index()
            );
            if let Some(r) = e.rejoin {
                assert!(
                    r > e.leave,
                    "process {} rejoins at {} but leaves at {} (rejoin must be later)",
                    p.index(),
                    r.ticks(),
                    e.leave.ticks()
                );
            }
            assert!(
                crashes.trigger(p).is_none(),
                "process {} appears in both the churn plan and the crash plan",
                p.index()
            );
        }
    }
}

/// Serialized as a process-index-sorted list of `[index, event]` pairs —
/// same canonical shape as [`crate::CrashPlan`]. A plan carrying a
/// Poisson spec serializes as `{events, poisson}` instead; the bare list
/// shape is kept whenever no spec is set so pre-Poisson scenario JSON
/// replays byte-identically.
impl Serialize for ChurnPlan {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(ProcessId, ChurnEvent)> = self.iter().collect();
        entries.sort_by_key(|(p, _)| *p);
        let events = serde::Value::Seq(
            entries
                .into_iter()
                .map(|(p, e)| {
                    serde::Value::Seq(vec![serde::Value::U64(p.index() as u64), e.to_value()])
                })
                .collect(),
        );
        match self.poisson {
            None => events,
            Some(spec) => serde::Value::Map(vec![
                ("events".to_string(), events),
                ("poisson".to_string(), spec.to_value()),
            ]),
        }
    }
}

impl Deserialize for ChurnPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let (events_value, poisson) = match v {
            serde::Value::Map(_) => {
                let events = v
                    .get("events")
                    .ok_or_else(|| serde::Error::msg("ChurnPlan: missing field \"events\""))?;
                let poisson = match v.get("poisson") {
                    Some(spec) => Some(Deserialize::from_value(spec)?),
                    None => None,
                };
                (events, poisson)
            }
            _ => (v, None),
        };
        let entries: Vec<(usize, ChurnEvent)> = Deserialize::from_value(events_value)?;
        let mut plan = ChurnPlan::new();
        plan.poisson = poisson;
        for (i, e) in entries {
            plan.events.insert(ProcessId(i), e);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashPlan;

    #[test]
    fn builders_accumulate_and_overwrite() {
        let plan = ChurnPlan::new()
            .leave(ProcessId(1), VirtualTime::from_ticks(500))
            .leave_rejoin(
                ProcessId(1),
                VirtualTime::from_ticks(700),
                VirtualTime::from_ticks(900),
            );
        assert_eq!(plan.len(), 1, "later entries overwrite");
        let e = plan.event(ProcessId(1)).unwrap();
        assert_eq!(e.leave.ticks(), 700);
        assert_eq!(e.rejoin.unwrap().ticks(), 900);
        assert!(plan.planned_set(3).contains(ProcessId(1)));
    }

    #[test]
    fn serde_is_canonical_and_round_trips() {
        let plan = ChurnPlan::new()
            .leave(ProcessId(3), VirtualTime::from_ticks(100))
            .leave_rejoin(
                ProcessId(0),
                VirtualTime::from_ticks(50),
                VirtualTime::from_ticks(120),
            );
        let json = serde_json::to_string(&plan).unwrap();
        // Sorted by process index regardless of insertion order.
        assert!(
            json.find("[0,").unwrap() < json.find("[3,").unwrap(),
            "{json}"
        );
        let copy: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(copy, plan);
    }

    #[test]
    fn poisson_resolution_is_pure_and_respects_exclusions() {
        let plan = ChurnPlan::new()
            .leave(ProcessId(0), VirtualTime::from_ticks(123))
            .poisson_spec(PoissonChurn {
                rate_ppm: 5_000, // mean first leave at 200 ticks
                mean_down_ticks: 500,
                horizon_ticks: 1_000_000,
            });
        let crashes = CrashPlan::new().crash_at_start(ProcessId(1));
        let a = plan.resolve(42, 64, &crashes);
        let b = plan.resolve(42, 64, &crashes);
        assert_eq!(a, b, "resolution is a pure function of (seed, n)");
        assert!(
            a.poisson_arrivals().is_none(),
            "resolved plans are explicit"
        );
        // The explicit event survives untouched; the crash-planned
        // process is skipped; everyone else churned (rate ≫ horizon⁻¹).
        assert_eq!(a.event(ProcessId(0)).unwrap().leave.ticks(), 123);
        assert!(a.event(ProcessId(1)).is_none(), "crash plan wins");
        assert!(a.len() > 32, "high rate churns most of the universe");
        a.assert_valid(64, &crashes);
        // A different seed samples a different expansion.
        assert_ne!(a, plan.resolve(43, 64, &crashes));
        // Zero downtime means leaves without rejoins.
        let forever = ChurnPlan::new()
            .poisson_spec(PoissonChurn {
                rate_ppm: 5_000,
                mean_down_ticks: 0,
                horizon_ticks: 1_000_000,
            })
            .resolve(7, 16, &CrashPlan::new());
        assert!(forever.iter().all(|(_, e)| e.rejoin.is_none()));
    }

    #[test]
    fn poisson_horizon_caps_the_expansion() {
        let sparse = ChurnPlan::new()
            .poisson_spec(PoissonChurn {
                rate_ppm: 100, // mean first leave at 10_000 ticks
                mean_down_ticks: 100,
                horizon_ticks: 10, // essentially no arrivals fit
            })
            .resolve(1, 1_000, &CrashPlan::new());
        assert!(sparse.len() < 10, "horizon discards late arrivals");
    }

    #[test]
    fn poisson_serde_round_trips_and_legacy_shape_is_preserved() {
        // No Poisson spec: the pre-Poisson bare-list shape, byte-compat.
        let legacy = ChurnPlan::new().leave(ProcessId(2), VirtualTime::from_ticks(9));
        let json = serde_json::to_string(&legacy).unwrap();
        assert!(
            json.starts_with('['),
            "legacy plans keep the list shape: {json}"
        );
        // With a spec: the {events, poisson} map, lossless.
        let plan = ChurnPlan::new()
            .leave(ProcessId(2), VirtualTime::from_ticks(9))
            .poisson(250);
        let json = serde_json::to_string(&plan).unwrap();
        let copy: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(copy, plan);
        assert_eq!(copy.poisson_arrivals().unwrap().rate_ppm, 250);
    }

    #[test]
    #[should_panic(expected = "needs a nonzero horizon")]
    fn poisson_zero_horizon_is_rejected() {
        ChurnPlan::new()
            .poisson_spec(PoissonChurn {
                rate_ppm: 10,
                mean_down_ticks: 0,
                horizon_ticks: 0,
            })
            .assert_valid(4, &CrashPlan::new());
    }

    #[test]
    #[should_panic(expected = "rejoin must be later")]
    fn rejoin_before_leave_is_rejected() {
        ChurnPlan::new()
            .leave_rejoin(
                ProcessId(0),
                VirtualTime::from_ticks(500),
                VirtualTime::from_ticks(500),
            )
            .assert_valid(2, &CrashPlan::new());
    }

    #[test]
    #[should_panic(expected = "both the churn plan and the crash plan")]
    fn overlap_with_crash_plan_is_rejected() {
        ChurnPlan::new()
            .leave(ProcessId(0), VirtualTime::from_ticks(500))
            .assert_valid(2, &CrashPlan::new().crash_at_start(ProcessId(0)));
    }
}
