//! Crash injection (§II-A: "a crash is a premature halt").
//!
//! Three trigger kinds cover the failure patterns the paper reasons about:
//!
//! * [`CrashTrigger::AtStep`] — crash at the `k`-th environment call.
//!   Because `broadcast` is a per-destination send loop, a step-indexed
//!   crash lands *inside* a broadcast, delivering the message to an
//!   arbitrary prefix of processes — exactly the paper's non-reliable
//!   broadcast macro-operation.
//! * [`CrashTrigger::AtTime`] — crash at a virtual time (scheduled as a
//!   simulator event; fires even while the process is blocked).
//! * [`CrashTrigger::AtRound`] — crash when the process enters its
//!   `r`-th protocol round, for round-aligned failure patterns. Rounds
//!   are counted cumulatively across consensus instances, so the
//!   trigger also fires inside multi-instance bodies (multivalued
//!   stages, replicated-log slots).

use crate::VirtualTime;
use ofa_topology::{ProcessId, ProcessSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// When a process should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashTrigger {
    /// Crash at the `k`-th environment call (0 = before any step — the
    /// process is crashed from the start).
    AtStep(u64),
    /// Crash at the given virtual time.
    AtTime(VirtualTime),
    /// Crash upon entering the given round (cumulative across
    /// instances: the `r`-th `RoundStart` the process observes).
    AtRound(u64),
}

/// The failure pattern of one run: which processes crash, and when.
///
/// # Examples
///
/// ```
/// use ofa_scenario::{CrashPlan, CrashTrigger, VirtualTime};
/// use ofa_topology::ProcessId;
///
/// let plan = CrashPlan::new()
///     .crash_at_start(ProcessId(0))
///     .crash_at_step(ProcessId(3), 12)
///     .crash_at_time(ProcessId(5), VirtualTime::from_ticks(2_000));
/// assert_eq!(plan.len(), 3);
/// assert!(plan.trigger(ProcessId(3)).is_some());
/// assert!(plan.trigger(ProcessId(1)).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashPlan {
    triggers: HashMap<ProcessId, CrashTrigger>,
}

impl CrashPlan {
    /// No crashes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `p` before it takes any step.
    pub fn crash_at_start(mut self, p: ProcessId) -> Self {
        self.triggers.insert(p, CrashTrigger::AtStep(0));
        self
    }

    /// Crashes `p` at its `k`-th environment call.
    pub fn crash_at_step(mut self, p: ProcessId, k: u64) -> Self {
        self.triggers.insert(p, CrashTrigger::AtStep(k));
        self
    }

    /// Crashes `p` at virtual time `t`.
    pub fn crash_at_time(mut self, p: ProcessId, t: VirtualTime) -> Self {
        self.triggers.insert(p, CrashTrigger::AtTime(t));
        self
    }

    /// Crashes `p` when it enters its `r`-th protocol round (counted
    /// cumulatively across instances for multi-instance bodies).
    pub fn crash_at_round(mut self, p: ProcessId, r: u64) -> Self {
        self.triggers.insert(p, CrashTrigger::AtRound(r));
        self
    }

    /// Crashes every member of `set` from the start.
    pub fn crash_set_at_start(mut self, set: &ProcessSet) -> Self {
        for p in set {
            self.triggers.insert(p, CrashTrigger::AtStep(0));
        }
        self
    }

    /// Inserts (or overwrites) the trigger for `p` in place — the
    /// non-builder form, for merging plans (e.g. a divergent-replay
    /// spec's extra crashes onto a checkpoint's original plan).
    pub fn insert(&mut self, p: ProcessId, trigger: CrashTrigger) {
        self.triggers.insert(p, trigger);
    }

    /// Removes the trigger for `p` in place, returning it if any — the
    /// inverse of [`CrashPlan::insert`], for schedule mutation (the
    /// adversarial explorer's remove-a-crash operator).
    pub fn remove(&mut self, p: ProcessId) -> Option<CrashTrigger> {
        self.triggers.remove(&p)
    }

    /// The trigger for `p`, if any.
    pub fn trigger(&self, p: ProcessId) -> Option<CrashTrigger> {
        self.triggers.get(&p).copied()
    }

    /// Number of planned crashes.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// `true` if no crash is planned.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// The processes with a plan entry, as a set over universe `n`.
    pub fn planned_set(&self, n: usize) -> ProcessSet {
        ProcessSet::from_indices(n, self.triggers.keys().map(|p| p.index()))
    }

    /// Iterates over `(process, trigger)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, CrashTrigger)> + '_ {
        self.triggers.iter().map(|(p, t)| (*p, *t))
    }
}

/// Serialized as a process-index-sorted list of `[index, trigger]` pairs,
/// so the encoding is canonical regardless of hash-map iteration order.
impl Serialize for CrashPlan {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<(ProcessId, CrashTrigger)> = self.iter().collect();
        entries.sort_by_key(|(p, _)| *p);
        serde::Value::Seq(
            entries
                .into_iter()
                .map(|(p, t)| {
                    serde::Value::Seq(vec![serde::Value::U64(p.index() as u64), t.to_value()])
                })
                .collect(),
        )
    }
}

impl Deserialize for CrashPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries: Vec<(usize, CrashTrigger)> = Deserialize::from_value(v)?;
        let mut plan = CrashPlan::new();
        for (i, t) in entries {
            plan.triggers.insert(ProcessId(i), t);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate() {
        let plan = CrashPlan::new()
            .crash_at_start(ProcessId(1))
            .crash_at_round(ProcessId(2), 3);
        assert_eq!(plan.trigger(ProcessId(1)), Some(CrashTrigger::AtStep(0)));
        assert_eq!(plan.trigger(ProcessId(2)), Some(CrashTrigger::AtRound(3)));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn later_entries_overwrite() {
        let plan = CrashPlan::new()
            .crash_at_start(ProcessId(0))
            .crash_at_step(ProcessId(0), 9);
        assert_eq!(plan.trigger(ProcessId(0)), Some(CrashTrigger::AtStep(9)));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn set_crash_covers_all_members() {
        let set = ProcessSet::from_indices(7, [0, 5, 6]);
        let plan = CrashPlan::new().crash_set_at_start(&set);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.planned_set(7), set);
    }

    #[test]
    fn empty_plan() {
        let plan = CrashPlan::new();
        assert!(plan.is_empty());
        assert!(plan.planned_set(4).is_empty());
        assert_eq!(plan.iter().count(), 0);
    }
}
