//! Virtual time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) virtual time, in abstract ticks.
///
/// The simulator charges configurable tick costs per operation
/// ([`crate::CostModel`]) and per message ([`crate::DelayModel`]); the
/// resulting decision latencies are meaningful *relative to each other*
/// (e.g. shared-memory-op cost vs message delay — experiment E7), not as
/// wall-clock predictions.
///
/// # Examples
///
/// ```
/// use ofa_scenario::VirtualTime;
///
/// let t = VirtualTime::ZERO + VirtualTime::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert!(t > VirtualTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Creates a time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(other.0))
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtualTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = VirtualTime::from_ticks(10);
        let b = VirtualTime::from_ticks(4);
        assert_eq!((a + b).ticks(), 14);
        assert_eq!((a - b).ticks(), 6);
        assert_eq!((a + 5u64).ticks(), 15);
        let mut c = a;
        c += 2;
        assert_eq!(c.ticks(), 12);
        assert_eq!(b.saturating_sub(a), VirtualTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn ordering_and_display() {
        assert!(VirtualTime::ZERO < VirtualTime::from_ticks(1));
        assert_eq!(VirtualTime::from_ticks(9).to_string(), "t=9");
    }
}
