//! Checkpoint/restore of in-flight executions.
//!
//! A [`Snapshot`] freezes a deterministic run at a virtual-time cut: the
//! scenario that produced it, the cut time `at`, and an engine-state value
//! holding every resident state machine, mailbox, scheduler entry, PRF
//! send counter, coin stream, shared-memory content, and metric counter.
//! Resuming a snapshot continues the run **bit-for-bit** — the same
//! decisions, counters, `end_time`, and multiset trace hash as the
//! straight-through execution — on any event engine, because the engine
//! state is stored in a canonical engine-independent form (sequential
//! runs can resume parallel checkpoints and vice versa).
//!
//! The cut contract: at checkpoint time `T`, every event scheduled
//! strictly before `T` has been processed and none at `>= T` has.
//! Everything not yet delivered rides in the snapshot's heap section.
//!
//! Snapshots also enable **divergent replay** ([`DivergeSpec`]): resume a
//! checkpoint with a mutated tail — a crash injected after the cut, a
//! different delay seed, a common-coin override — to explore "what if the
//! run had gone differently from here".

use crate::{CoinSpec, CrashPlan, Scenario, VirtualTime};
use serde::{Deserialize, Serialize};

/// Current snapshot format version; bumped on incompatible layout
/// changes so stale CI artifacts fail loudly instead of resuming wrong.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A serializable checkpoint of one in-flight deterministic execution.
///
/// Produced by checkpoint-capable backends (`ofa-sim`'s `run_until`);
/// consumed by [`crate::Backend::run_from`]. The embedded [`Scenario`]
/// is the *resume* scenario: mutating its tail-relevant knobs before
/// resuming (crash triggers after the cut, the coin spec, the seed used
/// for not-yet-drawn delays) is exactly the [`DivergeSpec`] mechanism.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The scenario the run was started from.
    pub scenario: Scenario,
    /// The virtual-time cut: events before `at` happened, events at or
    /// after `at` are still pending in `engine_state`.
    pub at: VirtualTime,
    /// Canonical engine state (machines, mailboxes, heap, counters,
    /// coins, memories) in the simulator's engine-independent encoding.
    pub engine_state: serde::Value,
}

impl Snapshot {
    /// `true` if this snapshot's format version is the one this build
    /// writes.
    pub fn version_matches(&self) -> bool {
        self.version == SNAPSHOT_VERSION
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("version".to_string(), self.version.to_value()),
            ("scenario".to_string(), self.scenario.to_value()),
            ("at".to_string(), self.at.to_value()),
            ("engine_state".to_string(), self.engine_state.clone()),
        ])
    }
}

impl Deserialize for Snapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("Snapshot: missing field {name:?}")))
        };
        let snapshot = Snapshot {
            version: Deserialize::from_value(field("version")?)?,
            scenario: Deserialize::from_value(field("scenario")?)?,
            at: Deserialize::from_value(field("at")?)?,
            engine_state: field("engine_state")?.clone(),
        };
        if !snapshot.version_matches() {
            return Err(serde::Error::msg(format!(
                "Snapshot: format version {} (this build reads {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        Ok(snapshot)
    }
}

/// A mutation of a checkpoint's *tail*: what to change about the world
/// from the cut onward before resuming. Everything before the cut is
/// already history inside the snapshot and cannot be altered.
#[derive(Debug, Clone, Default)]
pub struct DivergeSpec {
    /// Replace the master seed for randomness not yet consumed at the
    /// cut (message delays of future sends). Coins and counters already
    /// captured keep their exact state.
    pub seed: Option<u64>,
    /// Replace the common-coin source for rounds evaluated after the
    /// cut (common coins are stateless by round, so this is exact).
    pub coin: Option<CoinSpec>,
    /// Additional crash triggers. Time-based triggers that fire before
    /// the cut are ignored (that time already happened); step/round
    /// triggers apply to processes still running.
    pub extra_crashes: CrashPlan,
}

impl DivergeSpec {
    /// No changes: resuming with this spec replays the original tail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a replacement delay seed for the tail.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets a replacement common-coin source for the tail.
    pub fn coin(mut self, coin: CoinSpec) -> Self {
        self.coin = Some(coin);
        self
    }

    /// Adds crash triggers to the tail.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.extra_crashes = plan;
        self
    }

    /// Applies the mutation to a snapshot's embedded scenario, yielding
    /// the scenario the diverged resume should run under.
    pub fn apply(&self, scenario: &Scenario) -> Scenario {
        let mut diverged = scenario.clone();
        if let Some(seed) = self.seed {
            diverged.seed = seed;
        }
        if let Some(coin) = &self.coin {
            diverged.coin = coin.clone();
        }
        for (p, trigger) in self.extra_crashes.iter() {
            diverged.crashes.insert(p, trigger);
        }
        diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashTrigger;
    use ofa_core::Algorithm;
    use ofa_topology::{Partition, ProcessId};

    fn snapshot() -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            scenario: Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin).seed(7),
            at: VirtualTime::from_ticks(1_234),
            engine_state: serde::Value::Map(vec![(
                "counters".to_string(),
                serde::Value::Seq(vec![serde::Value::U64(3)]),
            )]),
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let copy: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(copy.version, SNAPSHOT_VERSION);
        assert_eq!(copy.at, snap.at);
        assert_eq!(copy.scenario.seed, 7);
        assert_eq!(
            serde_json::to_string(&copy).unwrap(),
            json,
            "canonical form is stable"
        );
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        let mut snap = snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        let json = serde_json::to_string(&snap).unwrap();
        let err = serde_json::from_str::<Snapshot>(&json).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn diverge_spec_mutates_only_what_it_names() {
        let snap = snapshot();
        let spec = DivergeSpec::new()
            .seed(99)
            .crashes(CrashPlan::new().crash_at_time(ProcessId(1), VirtualTime::from_ticks(2_000)));
        let diverged = spec.apply(&snap.scenario);
        assert_eq!(diverged.seed, 99);
        assert_eq!(diverged.coin, snap.scenario.coin, "coin untouched");
        assert_eq!(diverged.crashes.len(), snap.scenario.crashes.len() + 1);
        assert!(diverged.crashes.iter().any(|(p, t)| p == ProcessId(1)
            && matches!(t, CrashTrigger::AtTime(at) if at.ticks() == 2_000)));
    }
}
