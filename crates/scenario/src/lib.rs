//! # `ofa-scenario` — one backend-agnostic execution surface
//!
//! The paper's core claim is that the *same* hybrid-model protocol runs
//! unchanged over any cluster decomposition. This crate makes the claim an
//! API: a [`Scenario`] is a *declarative, serializable value* describing
//! one consensus execution — partition, protocol body, configuration,
//! proposals, seed, failure pattern, delay/cost models, coin source,
//! observer hook — and a [`Backend`] is anything that can execute it
//! (`ofa-sim`'s deterministic simulator, `ofa-runtime`'s real threads).
//! Every backend returns the same [`Outcome`] type, whose safety
//! predicates ([`Outcome::agreement_holds`], [`Outcome::deciders`],
//! [`Outcome::decided`]) are defined exactly once for the whole workspace.
//!
//! On top of single executions, [`Sweep`] runs `Scenario × seeds ×
//! parameter grid` on any backend (optionally fanned out across threads)
//! and aggregates the outcomes — the shape of every experiment in
//! `ofa-bench`.
//!
//! ```
//! use ofa_core::Algorithm;
//! use ofa_scenario::Scenario;
//! use ofa_topology::Partition;
//!
//! // A scenario is data: build it, serialize it, ship it, replay it.
//! let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(3)
//!     .seed(42);
//! let json = serde_json::to_string(&scenario).unwrap();
//! let replay: Scenario = serde_json::from_str(&json).unwrap();
//! assert_eq!(replay.partition, scenario.partition);
//! // `ofa_sim::Sim.run(&replay)` reproduces the original trace hash
//! // bit-for-bit; `ofa_runtime::Threads.run(&replay)` runs the same
//! // description on real threads.
//! ```
//!
//! The substrate-neutral description types ([`CrashPlan`], [`DelayModel`],
//! [`CostModel`], [`VirtualTime`], the trace types, [`ProcessBody`]) live
//! here too, so both substrates — and any future one — share one
//! vocabulary.

#![warn(missing_docs)]

mod backend;
mod body;
mod churn;
mod crash;
mod delay;
mod network;
mod outcome;
#[allow(clippy::module_inception)]
mod scenario;
mod snapshot;
mod sweep;
mod time;
mod trace;

pub use backend::Backend;
pub use body::{Body, MvWorkload, ProcessBody, SmrWorkload};
pub use churn::{ChurnEvent, ChurnPlan, PoissonChurn};
pub use crash::{CrashPlan, CrashTrigger};
pub use delay::{CostModel, DelayModel};
pub use network::{Fate, LatencyDist, LinkClasses, LinkOverride, NetIndex, NetworkModel};
pub use outcome::{BackendKind, Outcome};
pub use scenario::{CoinSpec, Engine, Scenario};
pub use snapshot::{DivergeSpec, Snapshot, SNAPSHOT_VERSION};
pub use sweep::{default_workers, Sweep, SweepReport, SweepRun, SweepView};
pub use time::VirtualTime;
pub use trace::{TimedEvent, TraceEvent, TraceRecorder};
