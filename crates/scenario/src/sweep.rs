//! Scenario sweeps: `Scenario × seeds × parameter grid → Vec<Outcome>`.
//!
//! Experiments rarely run one execution; they run a base scenario across
//! many seeds and a grid of parameter variants (cluster counts, delay
//! models, crash patterns, …) and aggregate. [`Sweep`] packages that loop
//! once, for every [`Backend`], with optional thread fan-out for
//! single-threaded backends like the simulator.

use crate::{Backend, Outcome, Scenario};
use ofa_metrics::Summary;
use std::sync::Arc;

/// The natural worker-thread count for CPU-bound fan-out on this host:
/// one per available core (1 if the parallelism cannot be queried).
///
/// This is the shared sizing heuristic for everything in the workspace
/// that spreads deterministic work over a pool — [`Sweep::workers`]
/// callers and the simulator's cluster-sharded
/// `Engine::ParallelEvent { workers: 0 }` both resolve "auto" through
/// it.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A function that derives a variant scenario from the base scenario.
type Patch = Arc<dyn Fn(Scenario) -> Scenario + Send + Sync>;

/// One point of a sweep's parameter grid: a label plus a scenario patch.
#[derive(Clone)]
struct Variant {
    label: String,
    patch: Patch,
}

/// Runs a base [`Scenario`] across seeds and parameter variants on any
/// [`Backend`], collecting unified [`Outcome`]s plus aggregate statistics.
///
/// The base scenario's [`Scenario::observer`] hook is dropped for sweep
/// runs — a single observer object cannot distinguish the interleaved
/// events of many runs (see [`Sweep::run`]); use observers on single
/// executions instead.
///
/// # Examples
///
/// ```no_run
/// use ofa_core::Algorithm;
/// use ofa_scenario::{Scenario, Sweep};
/// use ofa_topology::Partition;
///
/// # fn demo(backend: &(impl ofa_scenario::Backend + Sync)) {
/// let report = Sweep::new(Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
///         .proposals_split(3))
///     .seeds(0..20)
///     .vary("m=1", |sc| {
///         let n = sc.partition.n();
///         Scenario { partition: Partition::single_cluster(n), ..sc }
///     })
///     .run(backend);
/// assert!(report.all_agree());
/// # }
/// ```
pub struct Sweep {
    base: Scenario,
    seeds: Vec<u64>,
    variants: Vec<Variant>,
    workers: usize,
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("seeds", &self.seeds.len())
            .field(
                "variants",
                &self
                    .variants
                    .iter()
                    .map(|v| v.label.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Sweep {
    /// Starts a sweep over `base` with its single seed, no parameter
    /// variants, and serial execution.
    pub fn new(base: Scenario) -> Self {
        Sweep {
            base,
            seeds: Vec::new(),
            variants: Vec::new(),
            workers: 1,
        }
    }

    /// Sets the seeds to sweep (replacing the base scenario's seed).
    /// An empty iterator keeps just the base seed.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Adds one parameter-grid point: `patch` maps the base scenario to
    /// the variant scenario. Calling `vary` at least once replaces the
    /// implicit identity variant.
    pub fn vary(
        mut self,
        label: impl Into<String>,
        patch: impl Fn(Scenario) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        self.variants.push(Variant {
            label: label.into(),
            patch: Arc::new(patch),
        });
        self
    }

    /// Fans the runs out over up to `workers` OS threads. Worth it for
    /// single-threaded backends (the simulator); real-thread backends
    /// already parallelize internally, so keep this at 1 there.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The full job list, in deterministic (variant-major) order.
    ///
    /// Each job drops the base scenario's observer: one shared observer
    /// would see the events of *every* run interleaved (all runs use
    /// protocol instance 0, so e.g. an `InvariantChecker` would report
    /// cross-run "violations" on perfectly safe sweeps, racily so under
    /// `workers > 1`). Attach observers when running single scenarios.
    fn jobs(&self) -> Vec<(String, u64, Scenario)> {
        let seeds: Vec<u64> = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let identity: Variant = Variant {
            label: "base".to_string(),
            patch: Arc::new(|sc| sc),
        };
        let variants: &[Variant] = if self.variants.is_empty() {
            std::slice::from_ref(&identity)
        } else {
            &self.variants
        };
        let mut jobs = Vec::with_capacity(variants.len() * seeds.len());
        for v in variants {
            for &seed in &seeds {
                let mut sc = (v.patch)(self.base.clone()).seed(seed);
                sc.observer = None;
                jobs.push((v.label.clone(), seed, sc));
            }
        }
        jobs
    }

    /// Runs every `(variant, seed)` combination on `backend` and collects
    /// the outcomes in deterministic variant-major, seed-minor order
    /// (regardless of worker count).
    pub fn run<B: Backend + Sync + ?Sized>(&self, backend: &B) -> SweepReport {
        let jobs = self.jobs();
        let runs: Vec<SweepRun> = if self.workers <= 1 || jobs.len() <= 1 {
            jobs.into_iter()
                .map(|(variant, seed, sc)| SweepRun {
                    variant,
                    seed,
                    outcome: backend.run(&sc),
                })
                .collect()
        } else {
            let mut slots: Vec<Option<SweepRun>> = Vec::new();
            slots.resize_with(jobs.len(), || None);
            let (tx, rx) = std::sync::mpsc::channel::<(usize, SweepRun)>();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let jobs_ref = &jobs;
            let next_ref = &next;
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(jobs.len()) {
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((variant, seed, sc)) = jobs_ref.get(i) else {
                            break;
                        };
                        let run = SweepRun {
                            variant: variant.clone(),
                            seed: *seed,
                            outcome: backend.run(sc),
                        };
                        if tx.send((i, run)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, run) in rx {
                    slots[i] = Some(run);
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every sweep job reports"))
                .collect()
        };
        SweepReport { runs }
    }
}

/// One executed `(variant, seed)` combination of a [`Sweep`].
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The variant label (`"base"` for the implicit identity variant).
    pub variant: String,
    /// The seed this run used.
    pub seed: u64,
    /// The unified outcome.
    pub outcome: Outcome,
}

/// All outcomes of a [`Sweep`], with aggregate statistics.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// The runs, in deterministic variant-major, seed-minor order.
    pub runs: Vec<SweepRun>,
}

impl SweepReport {
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` if the sweep produced no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over the outcomes.
    pub fn outcomes(&self) -> impl Iterator<Item = &Outcome> {
        self.runs.iter().map(|r| &r.outcome)
    }

    /// A borrowed view over all runs (no outcome data is copied). The
    /// report-level aggregates delegate here, so every statistic is
    /// defined once, on [`SweepView`].
    pub fn all(&self) -> SweepView<'_> {
        SweepView {
            runs: self.runs.iter().collect(),
        }
    }

    /// A borrowed view over the runs of one variant label (no outcome
    /// data is copied).
    pub fn variant<'a>(&'a self, label: &str) -> SweepView<'a> {
        SweepView {
            runs: self.runs.iter().filter(|r| r.variant == label).collect(),
        }
    }

    /// `true` iff agreement held in every run — the sweep-level safety
    /// check.
    pub fn all_agree(&self) -> bool {
        self.all().all_agree()
    }

    /// Fraction of runs where every correct process decided.
    pub fn termination_rate(&self) -> f64 {
        self.all().termination_rate()
    }

    /// Summary of `max_decision_round` across runs.
    pub fn rounds(&self) -> Summary {
        self.all().rounds()
    }

    /// Summary of virtual-time decision latency (ticks) across runs.
    pub fn latency_ticks(&self) -> Summary {
        self.all().latency_ticks()
    }

    /// Summary of total messages sent across runs.
    pub fn messages(&self) -> Summary {
        self.all().messages()
    }
}

/// A borrowed subset of a [`SweepReport`]'s runs (e.g. one variant),
/// exposing the same aggregates without copying any outcome data.
#[derive(Debug, Clone)]
pub struct SweepView<'a> {
    runs: Vec<&'a SweepRun>,
}

impl<'a> SweepView<'a> {
    /// Number of runs in the view.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over the runs.
    pub fn runs(&self) -> impl Iterator<Item = &'a SweepRun> + '_ {
        self.runs.iter().copied()
    }

    /// Iterates over the outcomes.
    pub fn outcomes(&self) -> impl Iterator<Item = &'a Outcome> + '_ {
        self.runs.iter().map(|r| &r.outcome)
    }

    /// `true` iff agreement held in every run of the view.
    pub fn all_agree(&self) -> bool {
        self.outcomes().all(Outcome::agreement_holds)
    }

    /// Fraction of runs where every correct process decided.
    pub fn termination_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.outcomes().filter(|o| o.all_correct_decided).count() as f64 / self.runs.len() as f64
    }

    /// Summary of `max_decision_round` across the view's runs.
    pub fn rounds(&self) -> Summary {
        Summary::of(self.outcomes().map(|o| o.max_decision_round as f64))
    }

    /// Summary of virtual-time decision latency (ticks) across the view.
    pub fn latency_ticks(&self) -> Summary {
        Summary::of(
            self.outcomes()
                .map(|o| o.latest_decision_time.ticks() as f64),
        )
    }

    /// Summary of total messages sent across the view's runs.
    pub fn messages(&self) -> Summary {
        Summary::of(self.outcomes().map(|o| o.counters.messages_sent as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendKind;
    use ofa_core::{Algorithm, Bit, Decision};
    use ofa_metrics::CounterSnapshot;
    use ofa_topology::Partition;

    /// A fake backend: "decides" the majority proposal in round `seed % 3
    /// + 1` without running any protocol — enough to test sweep plumbing.
    struct Echo;
    impl Backend for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn run(&self, sc: &Scenario) -> Outcome {
            sc.assert_valid();
            assert!(
                sc.observer.is_none(),
                "sweeps must strip the shared observer hook"
            );
            let ones = sc.proposals.iter().filter(|b| **b == Bit::One).count();
            let v = Bit::from(ones * 2 > sc.proposals.len());
            let results = (0..sc.partition.n())
                .map(|_| {
                    Ok(Decision {
                        value: v,
                        round: sc.seed % 3 + 1,
                        relayed: false,
                    })
                })
                .collect();
            Outcome::assemble(
                BackendKind::Sim,
                results,
                vec![CounterSnapshot::default(); sc.partition.n()],
                0,
                0,
            )
        }
    }

    fn base() -> Scenario {
        Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin).proposals_split(5)
    }

    #[test]
    fn sweep_orders_runs_deterministically() {
        let sweep = Sweep::new(base())
            .seeds(0..4)
            .vary("a", |sc| sc)
            .vary("b", |sc| sc.proposals_split(1));
        let report = sweep.run(&Echo);
        assert_eq!(report.len(), 8);
        let order: Vec<(String, u64)> = report
            .runs
            .iter()
            .map(|r| (r.variant.clone(), r.seed))
            .collect();
        let expected: Vec<(String, u64)> = ["a", "b"]
            .iter()
            .flat_map(|v| (0..4).map(move |s| (v.to_string(), s)))
            .collect();
        assert_eq!(order, expected);
        assert!(report.all_agree());
        assert_eq!(report.termination_rate(), 1.0);
    }

    #[test]
    fn parallel_run_matches_serial_order() {
        let serial = Sweep::new(base()).seeds(0..16).run(&Echo);
        let parallel = Sweep::new(base()).seeds(0..16).workers(4).run(&Echo);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.runs.iter().zip(parallel.runs.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.outcome.max_decision_round, b.outcome.max_decision_round);
        }
    }

    #[test]
    fn variant_filter_and_aggregates() {
        let report = Sweep::new(base())
            .seeds(0..6)
            .vary("ones", |sc| sc.proposals_all(Bit::One))
            .vary("zeros", |sc| sc.proposals_all(Bit::Zero))
            .run(&Echo);
        let ones = report.variant("ones");
        assert_eq!(ones.len(), 6);
        assert!(ones.outcomes().all(|o| o.decided(Bit::One)));
        let rounds = report.rounds();
        assert!(rounds.min >= 1.0 && rounds.max <= 3.0);
    }

    #[test]
    fn empty_seed_list_keeps_base_seed() {
        let report = Sweep::new(base().seed(9)).run(&Echo);
        assert_eq!(report.len(), 1);
        assert_eq!(report.runs[0].seed, 9);
        assert_eq!(report.runs[0].variant, "base");
    }
}
