//! The network model: link-class latencies, jitter, loss, duplication.
//!
//! [`crate::DelayModel`] models the paper's reliable asynchronous
//! channels as one delay distribution for every link. [`NetworkModel`]
//! subsumes it with the dimensions a realistic deployment adds:
//!
//! * **Link classes** — intra-cluster and inter-cluster links draw from
//!   different [`LatencyDist`]s (the paper's hybrid premise made
//!   quantitative), with directed per-pair [`LinkOverride`]s for
//!   asymmetric routes.
//! * **Jitter** — [`LatencyDist::LogNormal`] gives the heavy-tailed
//!   latency shape measured on real networks, built from
//!   platform-deterministic float ops only (`vendor/rand`'s
//!   Irwin–Hall normal + exact `2^x`), clamped to `[floor, cap]`.
//! * **Loss and duplication** — each message independently survives,
//!   vanishes, or is delivered twice, with parts-per-million rates
//!   decided by a pure integer-compare Bernoulli.
//!
//! Every decision — delay, fate, duplicate offset — is a **pure function
//! of `(seed, from, to, k)`** where `k` is the sender's send counter, so
//! all three engines (threads, event-driven, cluster-sharded parallel)
//! agree bit-for-bit for any worker count: fates resolve at *send* time,
//! which keeps batched broadcasts and the `EventKey` total order intact.
//! A duplicate's extra offset is a fresh sample of the same link-class
//! distribution, so it is always `>= min_delay()` — the parallel
//! engine's epoch lookahead — and a lazily-expanded duplicate can never
//! land inside an already-collected epoch.

use crate::delay::mix_delay_seed;
use crate::DelayModel;
use ofa_topology::{Partition, ProcessId};
use rand::rngs::StdRng;
use rand::{distributions, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Domain separator for the loss/duplication fate PRF, so fate words
/// never correlate with delay samples drawn from the same master seed.
const FATE_DOMAIN_SEP: u64 = 0x000F_A7E0_FD00_5EED;

/// Domain separator for the duplicate-offset PRF (the second copy's
/// extra transit time), distinct from both the delay and fate domains.
const DUP_DOMAIN_SEP: u64 = 0xD09B_1E0F_F5E7;

/// One latency distribution, attachable to a link class.
///
/// Every variant has a positive-or-zero hard minimum ([`LatencyDist::min`]),
/// which is what the parallel engine's conservative lookahead builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyDist {
    /// Exactly this many ticks, always.
    Constant(u64),
    /// Uniformly random in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Lognormal-style jitter: `median × 2^(σ·z)` with `z` standard
    /// normal and `σ = sigma_milli / 1000`, clamped into `[floor, cap]`.
    /// Sampled via platform-exact float ops only, so the draw is
    /// bit-identical on every platform.
    LogNormal {
        /// The distribution's median, in ticks.
        median: u64,
        /// σ in thousandths (1000 = one base-2 order of magnitude per
        /// standard deviation).
        sigma_milli: u32,
        /// Hard lower clamp (also the class's `min`).
        floor: u64,
        /// Hard upper clamp.
        cap: u64,
    },
}

impl LatencyDist {
    /// Samples one transit time from the PRF stream seeded by `mixed`.
    fn sample(&self, mixed: u64) -> u64 {
        match *self {
            LatencyDist::Constant(d) => d,
            LatencyDist::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform latency bounds inverted");
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                let word = StdRng::seed_from_u64(mixed).next_u64();
                if span == 0 {
                    return word;
                }
                lo + ((u128::from(word) * u128::from(span)) >> 64) as u64
            }
            LatencyDist::LogNormal {
                median,
                sigma_milli,
                floor,
                cap,
            } => {
                let mut rng = StdRng::seed_from_u64(mixed);
                distributions::log_normal_ticks(&mut rng, median, sigma_milli).clamp(floor, cap)
            }
        }
    }

    /// The hard minimum of every sample this distribution can produce.
    pub fn min(&self) -> u64 {
        match *self {
            LatencyDist::Constant(d) => d,
            LatencyDist::Uniform { lo, .. } => lo,
            LatencyDist::LogNormal { floor, .. } => floor,
        }
    }

    /// `Some(d)` iff every sample is exactly `d`.
    fn constant(&self) -> Option<u64> {
        match *self {
            LatencyDist::Constant(d) => Some(d),
            LatencyDist::Uniform { lo, hi } if lo == hi => Some(lo),
            LatencyDist::LogNormal {
                median, floor, cap, ..
            } if floor == cap => {
                let _ = median;
                Some(floor)
            }
            _ => None,
        }
    }
}

/// A directed per-pair latency override — the asymmetric link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// Sender.
    pub from: ProcessId,
    /// Receiver (the override is directed: `to → from` is unaffected).
    pub to: ProcessId,
    /// The distribution this directed link draws from.
    pub dist: LatencyDist,
}

/// How latencies are organized across links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkClasses {
    /// One distribution for every link — exactly the legacy
    /// [`DelayModel`] semantics (including `Laggard`), byte-for-byte:
    /// a flat network reproduces pre-network-model delay streams.
    Flat(DelayModel),
    /// Cluster-aware classes: links inside a cluster draw from `intra`,
    /// links between clusters from `inter`, and listed directed pairs
    /// from their override.
    Clustered {
        /// Distribution for links within one cluster.
        intra: LatencyDist,
        /// Distribution for links between clusters.
        inter: LatencyDist,
        /// Directed per-pair exceptions (asymmetry).
        links: Vec<LinkOverride>,
    },
}

/// A message's send-time fate under loss/duplication rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered once, normally.
    Deliver,
    /// Never delivered (the send still consumes the sender's counter).
    Lost,
    /// Delivered twice: once normally, once after an extra link-class
    /// sample ([`NetIndex::dup_extra_of`]). Lost and duplicated are
    /// exclusive — a lost message cannot also duplicate.
    Dup,
}

/// The full network description of a scenario: link-class latencies plus
/// loss and duplication rates. Subsumes [`DelayModel`] — a
/// [`NetworkModel::flat`] wrapper with zero rates is bit-for-bit the
/// legacy behavior, which is what the serde back-compat path produces
/// for scenarios stored before this type existed.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Latency organization across links.
    pub classes: LinkClasses,
    /// Per-message loss probability in parts per million.
    pub loss_ppm: u32,
    /// Per-message duplication probability in parts per million
    /// (evaluated only for non-lost messages).
    pub dup_ppm: u32,
}

impl NetworkModel {
    /// A lossless single-class network with the legacy delay semantics.
    pub fn flat(delay: DelayModel) -> Self {
        NetworkModel {
            classes: LinkClasses::Flat(delay),
            loss_ppm: 0,
            dup_ppm: 0,
        }
    }

    /// A cluster-aware network: `intra` for links within a cluster,
    /// `inter` for links between clusters, no loss or duplication.
    pub fn clustered(intra: LatencyDist, inter: LatencyDist) -> Self {
        NetworkModel {
            classes: LinkClasses::Clustered {
                intra,
                inter,
                links: Vec::new(),
            },
            loss_ppm: 0,
            dup_ppm: 0,
        }
    }

    /// Sets the loss rate (parts per million; returns a modified copy).
    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// Sets the duplication rate (parts per million).
    pub fn with_dup_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Adds a directed per-pair latency override (no-op on flat
    /// networks, which have no class table to override).
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, dist: LatencyDist) -> Self {
        if let LinkClasses::Clustered { links, .. } = &mut self.classes {
            links.push(LinkOverride { from, to, dist });
        }
        self
    }

    /// A lower bound on every transit time this model can produce,
    /// *independent of the partition*: the minimum over all link
    /// classes. This is the parallel engine's conservative lookahead —
    /// and also what bounds a duplicate's extra offset from below, so
    /// lazily-expanded duplicates always land outside the current epoch.
    pub fn min_delay(&self) -> u64 {
        match &self.classes {
            LinkClasses::Flat(d) => d.min_delay(),
            LinkClasses::Clustered {
                intra,
                inter,
                links,
            } => links
                .iter()
                .map(|l| l.dist.min())
                .fold(intra.min().min(inter.min()), u64::min),
        }
    }

    /// Checks internal consistency against a universe of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics on inverted distribution bounds or an override naming a
    /// process index `>= n`.
    pub fn assert_valid(&self, n: usize) {
        fn check_dist(d: &LatencyDist) {
            match *d {
                LatencyDist::Constant(_) => {}
                LatencyDist::Uniform { lo, hi } => {
                    assert!(lo <= hi, "uniform latency bounds inverted ({lo} > {hi})")
                }
                LatencyDist::LogNormal { floor, cap, .. } => {
                    assert!(
                        floor <= cap,
                        "lognormal latency clamp inverted ({floor} > {cap})"
                    )
                }
            }
        }
        assert!(self.loss_ppm <= 1_000_000, "loss_ppm is a ppm rate");
        assert!(self.dup_ppm <= 1_000_000, "dup_ppm is a ppm rate");
        match &self.classes {
            LinkClasses::Flat(_) => {}
            LinkClasses::Clustered {
                intra,
                inter,
                links,
            } => {
                check_dist(intra);
                check_dist(inter);
                for l in links {
                    check_dist(&l.dist);
                    assert!(
                        l.from.index() < n && l.to.index() < n,
                        "link override {} → {} names a process index >= n={n}",
                        l.from.index(),
                        l.to.index()
                    );
                }
            }
        }
    }

    /// Resolves the class table against a partition, producing the
    /// compiled form the engines query per message.
    pub fn compile(&self, partition: &Partition) -> NetIndex {
        let classes = match &self.classes {
            LinkClasses::Flat(d) => CompiledClasses::Flat(d.clone()),
            LinkClasses::Clustered {
                intra,
                inter,
                links,
            } => CompiledClasses::Clustered {
                intra: *intra,
                inter: *inter,
                cluster_of: (0..partition.n())
                    .map(|i| partition.cluster_of(ProcessId(i)).index() as u32)
                    .collect(),
                overrides: links
                    .iter()
                    .map(|l| ((l.from.index() as u32, l.to.index() as u32), l.dist))
                    .collect(),
            },
        };
        NetIndex {
            min: self.min_delay(),
            classes,
            loss_ppm: self.loss_ppm,
            dup_ppm: self.dup_ppm,
        }
    }
}

impl Default for NetworkModel {
    /// The legacy default network, flat and lossless.
    fn default() -> Self {
        NetworkModel::flat(DelayModel::default_network())
    }
}

/// Serialized as `{classes, loss_ppm, dup_ppm}`; a bare [`DelayModel`]
/// value (the pre-network-model `delay` field of stored scenarios) is
/// accepted and lifts to the equivalent flat lossless network.
impl Serialize for NetworkModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("classes".to_string(), self.classes.to_value()),
            (
                "loss_ppm".to_string(),
                serde::Value::U64(self.loss_ppm as u64),
            ),
            (
                "dup_ppm".to_string(),
                serde::Value::U64(self.dup_ppm as u64),
            ),
        ])
    }
}

impl Deserialize for NetworkModel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(classes) = v.get("classes") {
            return Ok(NetworkModel {
                classes: Deserialize::from_value(classes)?,
                loss_ppm: Deserialize::from_value(v.get("loss_ppm").ok_or_else(|| {
                    serde::Error::msg("NetworkModel: missing field \"loss_ppm\"")
                })?)?,
                dup_ppm: Deserialize::from_value(v.get("dup_ppm").ok_or_else(|| {
                    serde::Error::msg("NetworkModel: missing field \"dup_ppm\"")
                })?)?,
            });
        }
        // Back-compat: a stored DelayModel value is a flat network.
        DelayModel::from_value(v).map(NetworkModel::flat)
    }
}

#[derive(Debug, Clone)]
enum CompiledClasses {
    Flat(DelayModel),
    Clustered {
        intra: LatencyDist,
        inter: LatencyDist,
        cluster_of: Vec<u32>,
        overrides: HashMap<(u32, u32), LatencyDist>,
    },
}

/// A [`NetworkModel`] compiled against one partition: link classes are
/// resolved to a per-process cluster table so every per-message query is
/// O(1). This is what the engines hold; all its answers are pure
/// functions of `(seed, from, to, k)`.
#[derive(Debug, Clone)]
pub struct NetIndex {
    classes: CompiledClasses,
    loss_ppm: u32,
    dup_ppm: u32,
    min: u64,
}

impl NetIndex {
    fn dist_of(&self, from: ProcessId, to: ProcessId) -> Option<&LatencyDist> {
        match &self.classes {
            CompiledClasses::Flat(_) => None,
            CompiledClasses::Clustered {
                intra,
                inter,
                cluster_of,
                overrides,
            } => {
                let (f, t) = (from.index() as u32, to.index() as u32);
                Some(overrides.get(&(f, t)).unwrap_or({
                    if cluster_of[from.index()] == cluster_of[to.index()] {
                        intra
                    } else {
                        inter
                    }
                }))
            }
        }
    }

    /// The transit time of the sender's `k`-th network handoff to `to` —
    /// same PRF contract as [`DelayModel::delay_of`], extended to link
    /// classes. A flat network delegates to the legacy model unchanged,
    /// so pre-network-model delay streams replay byte-for-byte.
    pub fn delay_of(&self, seed: u64, from: ProcessId, to: ProcessId, k: u64) -> u64 {
        match self.dist_of(from, to) {
            None => match &self.classes {
                CompiledClasses::Flat(d) => d.delay_of(seed, from, to, k),
                CompiledClasses::Clustered { .. } => unreachable!(),
            },
            Some(LatencyDist::Constant(d)) => *d,
            Some(dist) => dist.sample(mix_delay_seed(seed, from, to, k)),
        }
    }

    /// The send-time fate of the sender's `k`-th handoff to `to`: a pure
    /// PRF decision in a domain separate from delays, so adding loss or
    /// duplication perturbs no existing delay stream.
    pub fn fate_of(&self, seed: u64, from: ProcessId, to: ProcessId, k: u64) -> Fate {
        if self.loss_ppm == 0 && self.dup_ppm == 0 {
            return Fate::Deliver;
        }
        let mut rng = StdRng::seed_from_u64(mix_delay_seed(seed ^ FATE_DOMAIN_SEP, from, to, k));
        if distributions::bernoulli_ppm(rng.next_u64(), self.loss_ppm) {
            return Fate::Lost;
        }
        if distributions::bernoulli_ppm(rng.next_u64(), self.dup_ppm) {
            return Fate::Dup;
        }
        Fate::Deliver
    }

    /// The extra transit time of a duplicated message's second copy
    /// (delivered at `original_at + dup_extra`): a fresh sample of the
    /// same link class in its own PRF domain. Because every class sample
    /// is `>= min_delay()`, the copy always lands at least one epoch
    /// lookahead past the original, which is what keeps lazily-created
    /// duplicates out of already-collected parallel epochs.
    pub fn dup_extra_of(&self, seed: u64, from: ProcessId, to: ProcessId, k: u64) -> u64 {
        let seed = seed ^ DUP_DOMAIN_SEP;
        match self.dist_of(from, to) {
            None => match &self.classes {
                CompiledClasses::Flat(d) => d.delay_of(seed, from, to, k),
                CompiledClasses::Clustered { .. } => unreachable!(),
            },
            Some(LatencyDist::Constant(d)) => *d,
            Some(dist) => dist.sample(mix_delay_seed(seed, from, to, k)),
        }
    }

    /// The model-wide minimum transit time (cached from
    /// [`NetworkModel::min_delay`]).
    pub fn min_delay(&self) -> u64 {
        self.min
    }

    /// `Some(d)` iff every link delivers in exactly `d` ticks — the
    /// condition for batching a broadcast into one heap entry. Loss and
    /// duplication do **not** disable batching: fates are resolved
    /// lazily, per destination, when the batch drains.
    pub fn constant_broadcast_delay(&self) -> Option<u64> {
        match &self.classes {
            CompiledClasses::Flat(DelayModel::Constant(d)) => Some(*d),
            CompiledClasses::Flat(_) => None,
            CompiledClasses::Clustered {
                intra,
                inter,
                overrides,
                ..
            } => {
                let d = intra.constant()?;
                if inter.constant() != Some(d) {
                    return None;
                }
                if overrides.values().any(|o| o.constant() != Some(d)) {
                    return None;
                }
                Some(d)
            }
        }
    }

    /// The configured loss rate, in parts per million.
    pub fn loss_ppm(&self) -> u32 {
        self.loss_ppm
    }

    /// The configured duplication rate, in parts per million.
    pub fn dup_ppm(&self) -> u32 {
        self.dup_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_topology::Partition;

    fn compile(net: &NetworkModel) -> NetIndex {
        net.compile(&Partition::even(6, 2))
    }

    #[test]
    fn flat_network_replays_the_legacy_delay_stream_exactly() {
        let delay = DelayModel::Uniform { lo: 200, hi: 900 };
        let net = compile(&NetworkModel::flat(delay.clone()));
        for k in 0..64 {
            assert_eq!(
                net.delay_of(9, ProcessId(1), ProcessId(4), k),
                delay.delay_of(9, ProcessId(1), ProcessId(4), k),
                "flat network must be byte-compatible with DelayModel"
            );
            assert_eq!(net.fate_of(9, ProcessId(1), ProcessId(4), k), Fate::Deliver);
        }
        assert_eq!(net.min_delay(), 200);
        assert_eq!(net.constant_broadcast_delay(), None);
        assert_eq!(
            compile(&NetworkModel::flat(DelayModel::Constant(700))).constant_broadcast_delay(),
            Some(700)
        );
    }

    #[test]
    fn clustered_classes_route_by_cluster_and_overrides_win() {
        let net = NetworkModel::clustered(LatencyDist::Constant(100), LatencyDist::Constant(1_000))
            .with_link(ProcessId(0), ProcessId(5), LatencyDist::Constant(7));
        let idx = compile(&net);
        // Partition::even(6, 2): clusters {0,1,2} and {3,4,5}.
        assert_eq!(idx.delay_of(1, ProcessId(0), ProcessId(2), 0), 100);
        assert_eq!(idx.delay_of(1, ProcessId(0), ProcessId(4), 0), 1_000);
        assert_eq!(
            idx.delay_of(1, ProcessId(0), ProcessId(5), 3),
            7,
            "override"
        );
        // Directed: the reverse link keeps its class.
        assert_eq!(idx.delay_of(1, ProcessId(5), ProcessId(0), 3), 1_000);
        assert_eq!(net.min_delay(), 7);
        assert_eq!(idx.constant_broadcast_delay(), None, "classes differ");
    }

    #[test]
    fn lognormal_is_deterministic_clamped_and_varies() {
        let dist = LatencyDist::LogNormal {
            median: 1_000,
            sigma_milli: 1_000,
            floor: 200,
            cap: 20_000,
        };
        let net = NetworkModel::clustered(dist, dist);
        let idx = compile(&net);
        let (p, q) = (ProcessId(0), ProcessId(4));
        let first = idx.delay_of(9, p, q, 0);
        assert_eq!(idx.delay_of(9, p, q, 0), first, "pure PRF");
        let samples: Vec<u64> = (0..256).map(|k| idx.delay_of(9, p, q, k)).collect();
        assert!(samples.iter().all(|&s| (200..=20_000).contains(&s)));
        assert!(samples.iter().any(|&s| s != first), "jitter must vary");
        assert_eq!(net.min_delay(), 200, "lookahead is the clamp floor");
    }

    #[test]
    fn fates_are_pure_exclusive_and_rate_shaped() {
        let net = compile(
            &NetworkModel::flat(DelayModel::Constant(500))
                .with_loss_ppm(200_000)
                .with_dup_ppm(200_000),
        );
        let mut lost = 0;
        let mut dup = 0;
        for k in 0..10_000 {
            let f = net.fate_of(3, ProcessId(0), ProcessId(1), k);
            assert_eq!(f, net.fate_of(3, ProcessId(0), ProcessId(1), k), "pure");
            match f {
                Fate::Lost => lost += 1,
                Fate::Dup => dup += 1,
                Fate::Deliver => {}
            }
        }
        // 20% loss; 20% dup of the surviving 80% ⇒ ~16%.
        assert!((1_500..2_500).contains(&lost), "lost={lost}");
        assert!((1_100..2_100).contains(&dup), "dup={dup}");
    }

    #[test]
    fn dup_extra_is_bounded_below_by_the_class_minimum() {
        let net = compile(
            &NetworkModel::clustered(
                LatencyDist::Uniform { lo: 300, hi: 800 },
                LatencyDist::Uniform { lo: 600, hi: 900 },
            )
            .with_dup_ppm(1_000_000),
        );
        for k in 0..512 {
            let intra = net.dup_extra_of(5, ProcessId(0), ProcessId(1), k);
            let inter = net.dup_extra_of(5, ProcessId(0), ProcessId(4), k);
            assert!((300..=800).contains(&intra), "{intra}");
            assert!((600..=900).contains(&inter), "{inter}");
            assert!(intra >= net.min_delay());
            // A different PRF domain than the delay itself.
            let _ = net.delay_of(5, ProcessId(0), ProcessId(1), k);
        }
    }

    #[test]
    fn serde_round_trips_and_lifts_bare_delay_models() {
        let net = NetworkModel::clustered(
            LatencyDist::LogNormal {
                median: 900,
                sigma_milli: 700,
                floor: 100,
                cap: 9_000,
            },
            LatencyDist::Uniform { lo: 500, hi: 1_500 },
        )
        .with_link(ProcessId(2), ProcessId(3), LatencyDist::Constant(42))
        .with_loss_ppm(1_000)
        .with_dup_ppm(50);
        let json = serde_json::to_string(&net).unwrap();
        let copy: NetworkModel = serde_json::from_str(&json).unwrap();
        assert_eq!(copy, net);
        // A bare DelayModel value (a stored pre-PR scenario's "delay"
        // field) lifts to the flat lossless network.
        let legacy = serde_json::to_string(&DelayModel::Uniform { lo: 10, hi: 40 }).unwrap();
        let lifted: NetworkModel = serde_json::from_str(&legacy).unwrap();
        assert_eq!(
            lifted,
            NetworkModel::flat(DelayModel::Uniform { lo: 10, hi: 40 })
        );
    }

    #[test]
    #[should_panic(expected = "names a process index")]
    fn out_of_range_override_is_rejected() {
        NetworkModel::clustered(LatencyDist::Constant(1), LatencyDist::Constant(2))
            .with_link(ProcessId(9), ProcessId(0), LatencyDist::Constant(3))
            .assert_valid(4);
    }

    #[test]
    fn scenario_default_is_the_legacy_network() {
        let sc = crate::Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin);
        assert_eq!(sc.network, NetworkModel::default());
        assert_eq!(sc.network.min_delay(), 500);
    }
}
