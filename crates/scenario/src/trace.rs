//! Execution traces and replay hashes.
//!
//! Every simulator run folds its full event stream into a 64-bit
//! [`TraceRecorder::hash`] (always on, O(1) memory), so tests can assert
//! *bit-for-bit deterministic replay*: same seed ⇒ same hash. Optionally,
//! the recorder also retains the events themselves for inspection and
//! pretty-printing (the `trace_walkthrough` example).
//!
//! The hash is a **multiset** hash: each `(timestamp, event)` pair is
//! avalanched into an independent 64-bit fingerprint and the fingerprints
//! are combined with wrapping addition, so the result is independent of
//! recording *order* (but still sensitive to content, timestamps, and
//! multiplicity). That is what lets the parallel event engine keep one
//! recorder per shard and [`TraceRecorder::merge`] the partials into a
//! value bit-identical to a single-threaded recorder of the same events —
//! the "shard-merged trace hash" the engine-equivalence corpus asserts.

use crate::VirtualTime;
use ofa_core::{Decision, Halt, MsgKind};
use ofa_topology::ProcessId;
use std::fmt;

/// One step of an execution, as recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `who` handed a message to the network.
    Send {
        /// Sending process.
        who: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Payload.
        msg: MsgKind,
    },
    /// A message was delivered into `who`'s input queue.
    Deliver {
        /// Receiving process.
        who: ProcessId,
        /// Original sender.
        from: ProcessId,
        /// Payload.
        msg: MsgKind,
    },
    /// `who` invoked its cluster's consensus object.
    ClusterPropose {
        /// Invoking process.
        who: ProcessId,
        /// Round of the object's slot.
        round: u64,
        /// Phase of the object's slot.
        phase: u8,
        /// Proposed encoding.
        proposed: u64,
        /// Decided encoding.
        decided: u64,
    },
    /// `who` entered a round.
    RoundStart {
        /// The process.
        who: ProcessId,
        /// The round.
        round: u64,
    },
    /// `who` drew a coin.
    Coin {
        /// The process.
        who: ProcessId,
        /// `true` for the common coin.
        common: bool,
        /// The bit drawn (as bool).
        value: bool,
    },
    /// `who` finished with a decision.
    Decided {
        /// The process.
        who: ProcessId,
        /// Its decision.
        decision: Decision,
    },
    /// `who` halted without deciding.
    Halted {
        /// The process.
        who: ProcessId,
        /// Why.
        halt: Halt,
    },
    /// `who` crashed (trigger fired).
    Crash {
        /// The process.
        who: ProcessId,
    },
    /// `who` rejoined after a churn leave, restarting with fresh state.
    Rejoin {
        /// The process.
        who: ProcessId,
    },
}

/// A recorded event with its virtual timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When it happened (the acting process's local clock).
    pub at: VirtualTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] ", self.at.ticks())?;
        match self.event {
            TraceEvent::Send { who, to, msg } => write!(f, "{who} → {to}: {msg}"),
            TraceEvent::Deliver { who, from, msg } => write!(f, "{who} ⇐ {from}: {msg}"),
            TraceEvent::ClusterPropose {
                who,
                round,
                phase,
                proposed,
                decided,
            } => write!(
                f,
                "{who} CONS[{round},{phase}].propose({proposed}) = {decided}"
            ),
            TraceEvent::RoundStart { who, round } => write!(f, "{who} enters round {round}"),
            TraceEvent::Coin { who, common, value } => write!(
                f,
                "{who} {} coin = {}",
                if common { "common" } else { "local" },
                value as u8
            ),
            TraceEvent::Decided { who, decision } => write!(f, "{who} {decision}"),
            TraceEvent::Halted { who, halt } => write!(f, "{who} halted: {halt}"),
            TraceEvent::Crash { who } => write!(f, "{who} CRASHES"),
            TraceEvent::Rejoin { who } => write!(f, "{who} REJOINS"),
        }
    }
}

/// Folds events into a replay hash; optionally retains them.
#[derive(Debug)]
pub struct TraceRecorder {
    hash: u64,
    count: u64,
    keep: bool,
    events: Vec<TimedEvent>,
}

impl TraceRecorder {
    /// Creates a recorder. With `keep_events` the full trace is retained
    /// in memory; the hash is always computed.
    pub fn new(keep_events: bool) -> Self {
        TraceRecorder {
            hash: 0,
            count: 0,
            keep: keep_events,
            events: Vec::new(),
        }
    }

    /// Rebuilds a recorder mid-stream from a checkpointed accumulator
    /// (`hash`, `count`). Retained-event mode is not resumable — events
    /// before the checkpoint are gone — so the recorder is hash-only.
    pub fn resume(hash: u64, count: u64) -> Self {
        TraceRecorder {
            hash,
            count,
            keep: false,
            events: Vec::new(),
        }
    }

    /// Records one event.
    pub fn record(&mut self, at: VirtualTime, event: TraceEvent) {
        // Per-event fingerprint: FNV-1a lifted from bytes to whole words
        // (one xor-multiply per 64 bits, high bits fed back), then a
        // splitmix-style finalizer so the commutative sum below still
        // separates near-identical events. Billions of events are hashed
        // per large run, so this is on the simulator's hottest path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        let mut fold = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            h ^= h >> 32;
        };
        fold(at.ticks());
        fold(discriminant_code(&event));
        let (words, len) = encode_words(&event);
        for &w in &words[..len] {
            fold(w);
        }
        // Finalize, then combine order-independently (multiset hash).
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        self.hash = self.hash.wrapping_add(h);
        self.count += 1;
        if self.keep {
            self.events.push(TimedEvent { at, event });
        }
    }

    /// Folds another recorder's partial trace into this one. Because the
    /// hash is a multiset hash, merging shard-local recorders in any
    /// order yields the same hash a single recorder of all events would
    /// have — the parallel engine's per-shard traces merge losslessly.
    ///
    /// Intended for recorders that observed *disjoint shares of one
    /// run*. The hash and count are always exact; retained events are
    /// simply concatenated, **not** re-sorted into timestamp order (the
    /// parallel engine never retains events — scenarios that keep a
    /// trace run on a sequential engine), and a `keep_events` mismatch
    /// between the two recorders keeps only the self side's events
    /// while the count still covers both.
    pub fn merge(&mut self, other: TraceRecorder) {
        self.hash = self.hash.wrapping_add(other.hash);
        self.count += other.count;
        if self.keep {
            self.events.extend(other.events);
        }
    }

    /// The replay hash of everything recorded so far.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The retained events (empty unless `keep_events` was set).
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the retained events.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events
    }
}

fn discriminant_code(e: &TraceEvent) -> u64 {
    match e {
        TraceEvent::Send { .. } => 1,
        TraceEvent::Deliver { .. } => 2,
        TraceEvent::ClusterPropose { .. } => 3,
        TraceEvent::RoundStart { .. } => 4,
        TraceEvent::Coin { .. } => 5,
        TraceEvent::Decided { .. } => 6,
        TraceEvent::Halted { .. } => 7,
        TraceEvent::Crash { .. } => 8,
        TraceEvent::Rejoin { .. } => 9,
    }
}

fn encode_msg(m: &MsgKind) -> u64 {
    match *m {
        MsgKind::Phase {
            instance,
            round,
            phase,
            est,
        } => {
            let e = match est {
                None => 2u64,
                Some(b) => b.as_bool() as u64,
            };
            (instance << 32) ^ ((round << 8) | ((phase.slot_index() as u64) << 4) | e)
        }
        MsgKind::Decide { instance, value } => {
            0x8000_0000_0000_0000 | (instance << 8) | value.as_bool() as u64
        }
        MsgKind::App {
            instance,
            seq,
            payload,
        } => {
            let mut h = instance.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq;
            for &b in payload.as_bytes() {
                h = h.wrapping_mul(31).wrapping_add(b as u64);
            }
            0x4000_0000_0000_0000 | (h >> 2)
        }
    }
}

/// Encodes an event into at most 5 words without allocating (the
/// recorder folds billions of events on large runs).
fn encode_words(e: &TraceEvent) -> ([u64; 5], usize) {
    let mut words = [0u64; 5];
    let len = match *e {
        TraceEvent::Send { who, to, msg } => {
            words[..3].copy_from_slice(&[who.index() as u64, to.index() as u64, encode_msg(&msg)]);
            3
        }
        TraceEvent::Deliver { who, from, msg } => {
            words[..3].copy_from_slice(&[
                who.index() as u64,
                from.index() as u64,
                encode_msg(&msg),
            ]);
            3
        }
        TraceEvent::ClusterPropose {
            who,
            round,
            phase,
            proposed,
            decided,
        } => {
            words = [who.index() as u64, round, phase as u64, proposed, decided];
            5
        }
        TraceEvent::RoundStart { who, round } => {
            words[..2].copy_from_slice(&[who.index() as u64, round]);
            2
        }
        TraceEvent::Coin { who, common, value } => {
            words[..3].copy_from_slice(&[who.index() as u64, common as u64, value as u64]);
            3
        }
        TraceEvent::Decided { who, decision } => {
            words[..4].copy_from_slice(&[
                who.index() as u64,
                decision.value.as_bool() as u64,
                decision.round,
                decision.relayed as u64,
            ]);
            4
        }
        TraceEvent::Halted { who, halt } => {
            words[..2].copy_from_slice(&[who.index() as u64, matches!(halt, Halt::Crashed) as u64]);
            2
        }
        TraceEvent::Crash { who } | TraceEvent::Rejoin { who } => {
            words[0] = who.index() as u64;
            1
        }
    };
    (words, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Bit;

    fn sample_events() -> Vec<(VirtualTime, TraceEvent)> {
        vec![
            (
                VirtualTime::from_ticks(1),
                TraceEvent::RoundStart {
                    who: ProcessId(0),
                    round: 1,
                },
            ),
            (
                VirtualTime::from_ticks(2),
                TraceEvent::Send {
                    who: ProcessId(0),
                    to: ProcessId(1),
                    msg: MsgKind::Decide {
                        instance: 0,
                        value: Bit::One,
                    },
                },
            ),
        ]
    }

    #[test]
    fn same_events_same_hash() {
        let mut a = TraceRecorder::new(false);
        let mut b = TraceRecorder::new(true);
        for (t, e) in sample_events() {
            a.record(t, e);
            b.record(t, e);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.count(), 2);
        assert_eq!(b.events().len(), 2);
        assert!(a.events().is_empty(), "hash-only recorder keeps nothing");
    }

    #[test]
    fn different_events_different_hash() {
        let mut a = TraceRecorder::new(false);
        let mut b = TraceRecorder::new(false);
        for (t, e) in sample_events() {
            a.record(t, e);
        }
        // Same count, different content.
        b.record(
            VirtualTime::from_ticks(1),
            TraceEvent::RoundStart {
                who: ProcessId(0),
                round: 2,
            },
        );
        b.record(
            VirtualTime::from_ticks(2),
            TraceEvent::Crash { who: ProcessId(1) },
        );
        assert_ne!(a.hash(), b.hash(), "content must matter");
        // Multiplicity matters too (multiset, not set).
        let mut c = TraceRecorder::new(false);
        let (t, e) = sample_events()[0];
        c.record(t, e);
        c.record(t, e);
        let mut d = TraceRecorder::new(false);
        d.record(t, e);
        assert_ne!(c.hash(), d.hash(), "multiplicity must matter");
    }

    #[test]
    fn hash_is_order_independent_and_shard_partials_merge() {
        // The multiset property: recording in any order — or recording
        // disjoint shares on separate recorders and merging — produces
        // the same hash as one sequential recorder.
        let mut seq = TraceRecorder::new(false);
        for (t, e) in sample_events() {
            seq.record(t, e);
        }
        let mut rev = TraceRecorder::new(false);
        for (t, e) in sample_events().into_iter().rev() {
            rev.record(t, e);
        }
        assert_eq!(seq.hash(), rev.hash(), "order must not matter");
        let mut shard_a = TraceRecorder::new(false);
        let mut shard_b = TraceRecorder::new(false);
        for (i, (t, e)) in sample_events().into_iter().enumerate() {
            if i % 2 == 0 {
                shard_a.record(t, e);
            } else {
                shard_b.record(t, e);
            }
        }
        shard_b.merge(shard_a);
        assert_eq!(seq.hash(), shard_b.hash(), "shard partials must merge");
        assert_eq!(seq.count(), shard_b.count());
    }

    #[test]
    fn timestamp_affects_hash() {
        let mut a = TraceRecorder::new(false);
        let mut b = TraceRecorder::new(false);
        let e = TraceEvent::Crash { who: ProcessId(0) };
        a.record(VirtualTime::from_ticks(5), e);
        b.record(VirtualTime::from_ticks(6), e);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn display_is_readable() {
        let te = TimedEvent {
            at: VirtualTime::from_ticks(12),
            event: TraceEvent::Deliver {
                who: ProcessId(1),
                from: ProcessId(0),
                msg: MsgKind::Phase {
                    instance: 0,
                    round: 1,
                    phase: ofa_core::Phase::One,
                    est: Some(Bit::Zero),
                },
            },
        };
        let s = te.to_string();
        assert!(s.contains("p2 ⇐ p1"), "{s}");
        assert!(s.contains("PHASE1(1,0)"), "{s}");
    }
}
