//! Coin sources for randomized consensus (paper §II-B).
//!
//! The paper's two algorithms differ only in their source of randomness:
//!
//! * a **local coin** ([`LocalCoin`]) returns an independent fair bit per
//!   invocation, private to each process (Algorithm 2 / Ben-Or style);
//! * a **common coin** ([`CommonCoin`]) delivers the *same* sequence of
//!   fair bits `b_1, b_2, …` to every process: the `r`-th query by `p_i`
//!   and the `r`-th query by `p_j` return the same bit (Algorithm 3).
//!
//! Production coins are seeded deterministically so whole executions
//! replay bit-for-bit; adversarial coins ([`ConstantCoin`],
//! [`AlternatingCoin`], [`ScriptedCoin`]) let tests drive worst-case
//! schedules.
//!
//! # Examples
//!
//! ```
//! use ofa_coins::{CommonCoin, LocalCoin, SeededCommonCoin, SeededLocalCoin};
//!
//! // Common coin: every process sees the same bit at the same round.
//! let at_p1 = SeededCommonCoin::new(42);
//! let at_p2 = SeededCommonCoin::new(42);
//! assert_eq!(at_p1.bit(7), at_p2.bit(7));
//!
//! // Local coins: deterministic per (seed, process), independent across
//! // processes.
//! let mut c = SeededLocalCoin::for_process(42, ofa_topology::ProcessId(0));
//! let _bit: bool = c.flip();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ofa_topology::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain separator XORed into a run's master seed before deriving the
/// default [`SeededCommonCoin`], so the common coin's bit stream differs
/// from the delay and local-coin streams derived from the same seed. Both
/// execution substrates (and any future backend) must use this constant so
/// the same scenario description draws the same coins everywhere.
pub const COIN_DOMAIN_SEP: u64 = 0xC0_1D_5E_ED;

/// A private source of independent fair bits (`local_coin()` in the paper).
pub trait LocalCoin {
    /// Returns 0 or 1, each with probability 1/2 (for fair implementations).
    fn flip(&mut self) -> bool;
}

/// A global source of round-indexed fair bits (`common_coin()` in the
/// paper): the `r`-th invocation returns the same bit at every process.
///
/// Implementations are addressed by round rather than by invocation count
/// so that a process that skipped rounds (e.g. after adopting a relayed
/// `DECIDE`) still reads the bit every other process read.
pub trait CommonCoin: Send + Sync {
    /// The common bit `b_r` for round `r`.
    fn bit(&self, round: u64) -> bool;
}

/// SplitMix64 finalizer — a well-distributed 64-bit mixing function used to
/// derive per-round and per-process randomness from a master seed.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seeded local coin.
///
/// Two processes with different ids (or different master seeds) obtain
/// computationally independent streams; the same `(seed, process)` pair
/// replays the same stream, which is what makes simulator runs
/// reproducible.
#[derive(Debug, Clone)]
pub struct SeededLocalCoin {
    rng: StdRng,
    flips: u64,
}

impl SeededLocalCoin {
    /// Derives the coin of `process` from a master seed.
    pub fn for_process(master_seed: u64, process: ProcessId) -> Self {
        let seed = splitmix64(master_seed ^ splitmix64(process.index() as u64 + 1));
        SeededLocalCoin {
            rng: StdRng::seed_from_u64(seed),
            flips: 0,
        }
    }

    /// Number of flips performed.
    pub fn flip_count(&self) -> u64 {
        self.flips
    }

    /// The coin's raw state — generator words plus flip count — for
    /// checkpointing a run mid-flight.
    pub fn state(&self) -> ([u64; 4], u64) {
        (self.rng.state(), self.flips)
    }

    /// Rebuilds a coin from a captured [`state`], resuming its stream
    /// exactly where it left off.
    ///
    /// [`state`]: SeededLocalCoin::state
    pub fn from_state(rng: [u64; 4], flips: u64) -> Self {
        SeededLocalCoin {
            rng: StdRng::from_state(rng),
            flips,
        }
    }
}

impl LocalCoin for SeededLocalCoin {
    fn flip(&mut self) -> bool {
        self.flips += 1;
        self.rng.gen_bool(0.5)
    }
}

/// A deterministic common coin: `bit(r)` is a fair PRF of `(seed, r)`,
/// identical wherever it is evaluated.
///
/// The paper assumes the common coin as an oracle and points to textbook
/// constructions; a pre-shared seed is the standard experimental stand-in
/// and preserves the defining property (same `r` ⇒ same bit everywhere).
#[derive(Debug, Clone, Copy)]
pub struct SeededCommonCoin {
    seed: u64,
}

impl SeededCommonCoin {
    /// Creates the coin for a given shared seed.
    pub fn new(seed: u64) -> Self {
        SeededCommonCoin { seed }
    }
}

impl CommonCoin for SeededCommonCoin {
    fn bit(&self, round: u64) -> bool {
        splitmix64(self.seed ^ splitmix64(round.wrapping_mul(0xA24B_AED4_963E_E407))) & 1 == 1
    }
}

/// A biased local coin returning `true` with probability `p` — used to
/// stress convergence behaviour (a fair coin is `p = 0.5`).
#[derive(Debug, Clone)]
pub struct BiasedLocalCoin {
    rng: StdRng,
    p: f64,
}

impl BiasedLocalCoin {
    /// Creates a coin that returns `true` with probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(master_seed: u64, process: ProcessId, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let seed = splitmix64(master_seed ^ splitmix64(process.index() as u64 + 1));
        BiasedLocalCoin {
            rng: StdRng::seed_from_u64(seed),
            p,
        }
    }
}

impl LocalCoin for BiasedLocalCoin {
    fn flip(&mut self) -> bool {
        self.rng.gen_bool(self.p)
    }
}

/// An adversarial coin that always returns the same bit. With all local
/// coins constant and opposite inputs, Ben-Or-style algorithms can be held
/// in disagreement indefinitely — tests use this to check indulgence
/// (safety without termination).
#[derive(Debug, Clone, Copy)]
pub struct ConstantCoin(pub bool);

impl LocalCoin for ConstantCoin {
    fn flip(&mut self) -> bool {
        self.0
    }
}

impl CommonCoin for ConstantCoin {
    fn bit(&self, _round: u64) -> bool {
        self.0
    }
}

/// A coin that alternates `false, true, false, …` per flip (local) or by
/// round parity (common).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlternatingCoin {
    state: bool,
}

impl AlternatingCoin {
    /// Creates a coin whose first flip returns `false`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LocalCoin for AlternatingCoin {
    fn flip(&mut self) -> bool {
        let out = self.state;
        self.state = !self.state;
        out
    }
}

impl CommonCoin for AlternatingCoin {
    fn bit(&self, round: u64) -> bool {
        round % 2 == 1
    }
}

/// A coin that replays a fixed script, then repeats its last bit (or
/// `false` for an empty script). Lets tests pin exact coin outcomes, e.g.
/// to force the common coin to match a chosen estimate at a chosen round.
#[derive(Debug, Clone)]
pub struct ScriptedCoin {
    script: Vec<bool>,
    cursor: usize,
}

impl ScriptedCoin {
    /// Creates a coin replaying `script`.
    pub fn new(script: Vec<bool>) -> Self {
        ScriptedCoin { script, cursor: 0 }
    }

    fn at(&self, i: usize) -> bool {
        self.script
            .get(i)
            .or(self.script.last())
            .copied()
            .unwrap_or(false)
    }
}

impl LocalCoin for ScriptedCoin {
    fn flip(&mut self) -> bool {
        let out = self.at(self.cursor);
        self.cursor += 1;
        out
    }
}

impl CommonCoin for ScriptedCoin {
    fn bit(&self, round: u64) -> bool {
        // Rounds are 1-based in the paper; round r reads script[r-1].
        self.at((round.max(1) - 1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_coin_agrees_across_replicas() {
        let a = SeededCommonCoin::new(7);
        let b = SeededCommonCoin::new(7);
        for r in 1..=1000 {
            assert_eq!(a.bit(r), b.bit(r), "round {r}");
        }
    }

    #[test]
    fn common_coin_differs_across_seeds_somewhere() {
        let a = SeededCommonCoin::new(1);
        let b = SeededCommonCoin::new(2);
        assert!((1..=64).any(|r| a.bit(r) != b.bit(r)));
    }

    #[test]
    fn common_coin_is_roughly_fair() {
        let c = SeededCommonCoin::new(99);
        let ones = (1..=10_000).filter(|&r| c.bit(r)).count();
        assert!(
            (4500..=5500).contains(&ones),
            "common coin strongly biased: {ones}/10000"
        );
    }

    #[test]
    fn local_coin_replays_per_process_and_seed() {
        let p = ProcessId(3);
        let mut a = SeededLocalCoin::for_process(5, p);
        let mut b = SeededLocalCoin::for_process(5, p);
        let sa: Vec<bool> = (0..100).map(|_| a.flip()).collect();
        let sb: Vec<bool> = (0..100).map(|_| b.flip()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.flip_count(), 100);
    }

    #[test]
    fn local_coins_differ_across_processes() {
        let mut a = SeededLocalCoin::for_process(5, ProcessId(0));
        let mut b = SeededLocalCoin::for_process(5, ProcessId(1));
        let sa: Vec<bool> = (0..64).map(|_| a.flip()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.flip()).collect();
        assert_ne!(
            sa, sb,
            "streams should differ with overwhelming probability"
        );
    }

    #[test]
    fn local_coin_is_roughly_fair() {
        let mut c = SeededLocalCoin::for_process(123, ProcessId(0));
        let ones = (0..10_000).filter(|_| c.flip()).count();
        assert!((4500..=5500).contains(&ones), "local coin biased: {ones}");
    }

    #[test]
    fn biased_coin_respects_probability() {
        let mut c = BiasedLocalCoin::new(5, ProcessId(0), 0.9);
        let ones = (0..10_000).filter(|_| c.flip()).count();
        assert!(ones > 8500, "p=0.9 coin returned only {ones} ones");
        let mut never = BiasedLocalCoin::new(5, ProcessId(0), 0.0);
        assert!((0..100).all(|_| !never.flip()));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn biased_coin_rejects_bad_p() {
        let _ = BiasedLocalCoin::new(0, ProcessId(0), 1.5);
    }

    #[test]
    fn constant_and_alternating() {
        let mut k = ConstantCoin(true);
        assert!(k.flip() && k.flip());
        assert!(CommonCoin::bit(&k, 9));
        let mut alt = AlternatingCoin::new();
        assert!(!alt.flip());
        assert!(alt.flip());
        assert!(!alt.flip());
        assert!(!CommonCoin::bit(&AlternatingCoin::new(), 2));
        assert!(CommonCoin::bit(&AlternatingCoin::new(), 3));
    }

    #[test]
    fn scripted_coin_replays_then_repeats_last() {
        let mut c = ScriptedCoin::new(vec![true, false]);
        assert!(c.flip());
        assert!(!c.flip());
        assert!(!c.flip()); // repeats last
        let cc = ScriptedCoin::new(vec![true, false]);
        assert!(CommonCoin::bit(&cc, 1));
        assert!(!CommonCoin::bit(&cc, 2));
        assert!(!CommonCoin::bit(&cc, 50));
        let empty = ScriptedCoin::new(vec![]);
        assert!(!CommonCoin::bit(&empty, 1));
    }

    #[test]
    fn traits_are_object_safe() {
        let mut coins: Vec<Box<dyn LocalCoin>> = vec![
            Box::new(ConstantCoin(false)),
            Box::new(AlternatingCoin::new()),
            Box::new(SeededLocalCoin::for_process(1, ProcessId(0))),
        ];
        for c in &mut coins {
            let _ = c.flip();
        }
        let cc: Box<dyn CommonCoin> = Box::new(SeededCommonCoin::new(3));
        let _ = cc.bit(1);
    }
}
