//! The [`Sim`] backend: deterministic execution of any
//! [`ofa_scenario::Scenario`].

use crate::checkpoint::EngineSnap;
use crate::conductor::{conduct, RawOutcome, RunSpec, TimedScheduler};
use crate::engine::{conduct_event_driven, conduct_event_driven_leg, LegResult};
use crate::par::{conduct_parallel, conduct_parallel_leg};
use ofa_scenario::{
    default_workers, Backend, BackendKind, CoinSpec, DivergeSpec, Engine, Outcome, Scenario,
    Snapshot, VirtualTime, SNAPSHOT_VERSION,
};
use serde::{Deserialize as _, Serialize as _};
use std::time::Instant;

/// The deterministic discrete-event backend.
///
/// Every run is a pure function of the scenario value: the same
/// [`Scenario`] — including one deserialized from JSON — reproduces the
/// same [`Outcome::trace_hash`] bit-for-bit. The scenario's
/// [`Engine`] knob selects *how* processes execute — blocking algorithms
/// on conducted threads ([`Engine::Threads`], the reference) or resumable
/// state machines on a single thread ([`Engine::EventDriven`], the
/// scalable engine) — with identical outcomes either way; custom
/// protocol bodies always run on the thread conductor.
///
/// # Examples
///
/// ```
/// use ofa_core::{Algorithm, Bit};
/// use ofa_scenario::{Backend, Scenario};
/// use ofa_sim::Sim;
/// use ofa_topology::Partition;
///
/// // Figure 1 (right), mixed proposals, common-coin algorithm:
/// let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
///     .proposals_split(3) // p1..p3 propose 1, the rest propose 0
///     .seed(7);
/// let outcome = Sim.run(&scenario);
/// assert!(outcome.all_correct_decided);
/// assert!(outcome.agreement_holds());
/// outcome.decided_value.expect("someone decided");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Sim;

/// How a time-budgeted [`Sim::run_until`] / [`Sim::resume_until`] leg
/// ended.
// `Done` is the overwhelmingly common case and every caller consumes it
// immediately; boxing it would tax the straight-through path to slim an
// enum that lives for one `match`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run reached quiescence (or its event budget) before the cut
    /// and completed normally.
    Done(Outcome),
    /// The run paused at the virtual-time cut; the snapshot resumes it
    /// bit-for-bit (serialize it, ship it, [`Sim::resume`] it).
    Paused(Box<Snapshot>),
}

impl Sim {
    /// Runs `scenario` until the virtual-time cut `stop_at`: every event
    /// scheduled strictly before the cut is processed, none at or after
    /// it. If the run finishes first, this is exactly [`Backend::run`].
    ///
    /// The returned [`Snapshot`] resumes **bit-for-bit** on either event
    /// engine: the final `Outcome`'s deterministic fields (decisions,
    /// counters, `events_processed`, `end_time`, trace hash) equal the
    /// straight-through run's.
    ///
    /// # Panics
    ///
    /// Panics if the scenario cannot checkpoint: a custom (blocking)
    /// body or an explicit [`Engine::Threads`] request, a retained trace
    /// ([`Scenario::keep_trace`]), an observer, or a [`CoinSpec::Custom`]
    /// coin (snapshots must serialize; custom coins cannot).
    pub fn run_until(&self, scenario: &Scenario, stop_at: VirtualTime) -> RunOutcome {
        run_leg(scenario, None, Some(stop_at))
    }

    /// Resumes a checkpoint to completion (same as [`Backend::run_from`]).
    pub fn resume(&self, snapshot: &Snapshot) -> Outcome {
        expect_done(resume_leg(snapshot, &snapshot.scenario, None))
    }

    /// Resumes a checkpoint up to a further cut — chained legs: a run
    /// can be carried across any number of pause/resume hops (each CI
    /// gate invocation runs one leg) and still end bit-identical.
    pub fn resume_until(&self, snapshot: &Snapshot, stop_at: VirtualTime) -> RunOutcome {
        resume_leg(snapshot, &snapshot.scenario, Some(stop_at))
    }

    /// Resumes a checkpoint with a mutated tail: everything before the
    /// cut is history (identical to the original run); the
    /// [`DivergeSpec`] rewrites what happens after — extra crashes, a
    /// different delay seed, a common-coin override.
    pub fn diverge(&self, snapshot: &Snapshot, spec: &DivergeSpec) -> Outcome {
        let diverged = spec.apply(&snapshot.scenario);
        expect_done(resume_leg(snapshot, &diverged, None))
    }
}

fn expect_done(run: RunOutcome) -> Outcome {
    match run {
        RunOutcome::Done(out) => out,
        RunOutcome::Paused(_) => unreachable!("no cut was requested"),
    }
}

impl Backend for Sim {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        run_scenario(scenario)
    }

    fn run_from(&self, snapshot: &Snapshot) -> Outcome {
        self.resume(snapshot)
    }
}

/// Decides which engine will actually run `scenario` — the observable
/// value recorded in [`Outcome::engine_used`]. The fallback ladder:
///
/// * [`Body::Custom`](ofa_scenario::Body::Custom) bodies are blocking
///   code → [`Engine::Threads`], whatever was requested.
/// * [`Engine::ParallelEvent`] degrades to [`Engine::EventDriven`] when
///   parallelism cannot help or cannot be exact: fewer than two shards
///   (auto workers resolve to the host parallelism, capped by the
///   cluster count `m`), more shards than the host has cores (epoch
///   barriers on an oversubscribed box cost more than they buy — the
///   `parscale` single-core regression), a zero
///   [`ofa_scenario::NetworkModel::min_delay`] (no conservative
///   lookahead), or a retained trace ([`Scenario::keep_trace`] — only
///   the sequential engines reproduce event *order*; the hash needs no
///   order and is always computed).
/// * Otherwise the requested engine runs, with `ParallelEvent` carrying
///   the resolved shard count.
///
/// Every fallback is observable in [`Outcome::engine_used`], never
/// silent.
fn resolve_engine(scenario: &Scenario) -> Engine {
    if !scenario.body.has_state_machine() {
        return Engine::Threads;
    }
    match scenario.engine {
        Engine::Threads => Engine::Threads,
        Engine::EventDriven => Engine::EventDriven,
        Engine::ParallelEvent { workers } => resolve_parallel(scenario, workers, available_cores()),
    }
}

/// The `ParallelEvent` arm of [`resolve_engine`], with the host core
/// count passed in so the guard is a pure, testable function.
fn resolve_parallel(scenario: &Scenario, workers: u64, cores: usize) -> Engine {
    let requested = if workers == 0 {
        default_workers()
    } else {
        workers as usize
    };
    let shards = requested.min(scenario.partition.m());
    if shards < 2 || shards > cores || scenario.network.min_delay() == 0 || scenario.keep_trace {
        Engine::EventDriven
    } else {
        Engine::ParallelEvent {
            workers: shards as u64,
        }
    }
}

/// Process-wide override for [`available_cores`]; `0` = no override.
static CORES_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the core count [`resolve_engine`]'s parallel-engine guard
/// sees. `0` clears the override. The determinism contract does not
/// depend on the host's parallelism — this exists so equivalence tests
/// can exercise the parallel engine on small CI boxes, and is hidden
/// because the guard is a perf heuristic, not a correctness knob.
#[doc(hidden)]
pub fn override_available_cores(cores: usize) {
    CORES_OVERRIDE.store(cores, std::sync::atomic::Ordering::Relaxed);
}

/// The host's scheduling parallelism — the ceiling above which extra
/// shards only add barrier synchronization cost (measured 0.93× vs the
/// sequential event engine at `n = 10⁴` on one core). Overridable via
/// [`override_available_cores`] or the `OFA_CORES` environment variable
/// (useful to pin CI benchmark runs to a known shard plan).
pub(crate) fn available_cores() -> usize {
    let forced = CORES_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(v) = std::env::var("OFA_CORES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&v| v > 0)
    {
        return v;
    }
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Executes `scenario` under the timed scheduler and shapes the raw
/// conductor result into the unified [`Outcome`].
pub(crate) fn run_scenario(scenario: &Scenario) -> Outcome {
    scenario.assert_valid();
    let started = Instant::now();
    // Resolve the engine first, then build the run spec exactly once —
    // the fallback paths must not re-clone the scenario's body,
    // proposals, and crash plan per attempted engine.
    let engine = resolve_engine(scenario);
    let spec = RunSpec {
        partition: scenario.partition.clone(),
        body: scenario.body.clone(),
        config: scenario.config,
        proposals: scenario.proposals.clone(),
        seed: scenario.seed,
        costs: scenario.costs,
        crash_plan: scenario.crashes.clone(),
        // Poisson churn arrivals expand into explicit events here, once,
        // before any engine sees the plan — the expansion is a pure PRF
        // of the scenario seed, so resumes re-derive it identically.
        churn: scenario
            .churn
            .resolve(scenario.seed, scenario.partition.n(), &scenario.crashes),
        common_coin: scenario.build_coin(),
        observer: scenario.observer.clone(),
        keep_trace: scenario.keep_trace,
        max_events: scenario.max_events,
    };
    let net = scenario.network.compile(&scenario.partition);
    let raw = match engine {
        Engine::Threads => {
            let mut scheduler = TimedScheduler::new(scenario.seed, net);
            conduct(spec, &mut scheduler)
        }
        Engine::EventDriven => {
            let mut scheduler = TimedScheduler::new(scenario.seed, net);
            conduct_event_driven(spec, &mut scheduler)
        }
        Engine::ParallelEvent { workers } => conduct_parallel(spec, &net, workers as usize),
    };
    finish_outcome(engine, raw, started)
}

/// Shapes a raw engine result into the unified [`Outcome`].
fn finish_outcome(engine: Engine, raw: RawOutcome, started: Instant) -> Outcome {
    let latest_decision_ticks = raw
        .results
        .iter()
        .filter(|(res, _)| res.is_ok())
        .map(|(_, clock)| *clock)
        .max()
        .unwrap_or(0);
    let results: Vec<_> = raw.results.iter().map(|(res, _)| *res).collect();
    let mut out = Outcome::assemble(
        BackendKind::Sim,
        results,
        raw.counters,
        raw.sm_objects,
        raw.sm_proposes,
    );
    // Record which engine actually ran — every fallback (custom body →
    // conductor, unparallelizable scenario → single-threaded event
    // engine) is observable here, not silent. `ParallelEvent` carries
    // the resolved shard count.
    out.engine_used = Some(engine);
    out.service = raw.service;
    out.latest_decision_time = VirtualTime::from_ticks(latest_decision_ticks);
    out.end_time = VirtualTime::from_ticks(raw.end_time);
    out.events_processed = raw.events_processed;
    out.trace_hash = Some(raw.trace_hash);
    out.events = if raw.trace_events.is_empty() {
        None
    } else {
        Some(raw.trace_events)
    };
    out.elapsed = started.elapsed();
    out
}

/// Resolves the engine for a checkpoint-capable leg and rejects what
/// snapshots cannot capture.
fn checkpoint_engine(scenario: &Scenario) -> Engine {
    assert!(
        scenario.body.has_state_machine(),
        "checkpointing requires a declarative body (custom bodies are blocking code)"
    );
    assert!(
        !scenario.keep_trace,
        "checkpointing cannot retain an ordered trace (the multiset hash is always kept)"
    );
    assert!(
        scenario.observer.is_none(),
        "checkpointing does not capture observer state"
    );
    assert!(
        !matches!(scenario.coin, CoinSpec::Custom(_)),
        "checkpointing requires a serializable coin spec"
    );
    match resolve_engine(scenario) {
        Engine::Threads => panic!("the thread engine cannot checkpoint; use an event engine"),
        engine => engine,
    }
}

/// Runs one leg — fresh or resumed, to completion or to a cut — and
/// shapes the result.
fn run_leg(
    scenario: &Scenario,
    resume: Option<&EngineSnap>,
    stop_at: Option<VirtualTime>,
) -> RunOutcome {
    scenario.assert_valid();
    let started = Instant::now();
    let engine = checkpoint_engine(scenario);
    let spec = RunSpec {
        partition: scenario.partition.clone(),
        body: scenario.body.clone(),
        config: scenario.config,
        proposals: scenario.proposals.clone(),
        seed: scenario.seed,
        costs: scenario.costs,
        crash_plan: scenario.crashes.clone(),
        // Same Poisson expansion as the straight-through path: a leg
        // resumed from a snapshot re-derives the identical explicit plan.
        churn: scenario
            .churn
            .resolve(scenario.seed, scenario.partition.n(), &scenario.crashes),
        common_coin: scenario.build_coin(),
        observer: None,
        keep_trace: false,
        max_events: scenario.max_events,
    };
    let net = scenario.network.compile(&scenario.partition);
    let cut = stop_at.map(|t| t.ticks());
    let leg = match engine {
        Engine::EventDriven => {
            let mut scheduler = TimedScheduler::new(scenario.seed, net);
            conduct_event_driven_leg(spec, &mut scheduler, resume, cut)
        }
        Engine::ParallelEvent { workers } => {
            conduct_parallel_leg(spec, &net, workers as usize, resume, cut)
        }
        Engine::Threads => unreachable!("checkpoint_engine rejects the thread engine"),
    };
    match leg {
        LegResult::Done(raw) => RunOutcome::Done(finish_outcome(engine, raw, started)),
        LegResult::Paused(snap) => RunOutcome::Paused(Box::new(Snapshot {
            version: SNAPSHOT_VERSION,
            scenario: scenario.clone(),
            at: VirtualTime::from_ticks(snap.at),
            engine_state: snap.to_value(),
        })),
    }
}

/// Decodes a snapshot's engine state and continues it under `scenario`
/// (the snapshot's own scenario, or a diverged rewrite of it).
fn resume_leg(
    snapshot: &Snapshot,
    scenario: &Scenario,
    stop_at: Option<VirtualTime>,
) -> RunOutcome {
    assert!(
        snapshot.version_matches(),
        "snapshot format version {} (this build reads {SNAPSHOT_VERSION})",
        snapshot.version
    );
    let snap =
        EngineSnap::from_value(&snapshot.engine_state).expect("snapshot engine state must decode");
    assert_eq!(
        snap.at,
        snapshot.at.ticks(),
        "snapshot cut time disagrees with its engine state"
    );
    run_leg(scenario, Some(&snap), stop_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::{Algorithm, Bit};
    use ofa_scenario::CrashPlan;
    use ofa_topology::{Partition, ProcessId, ProcessSet};
    use std::sync::Arc;

    #[test]
    fn parallel_guard_respects_the_core_count() {
        // Satellite of the `parscale` single-core regression: more
        // shards than cores degrades to the sequential event engine,
        // observably, while a big-enough box keeps the request.
        let scenario = Scenario::new(Partition::even(12, 4), Algorithm::LocalCoin)
            .proposals_split(5)
            .parallel(4);
        assert_eq!(
            resolve_parallel(&scenario, 4, 1),
            Engine::EventDriven,
            "4 shards on 1 core must fall back"
        );
        assert_eq!(
            resolve_parallel(&scenario, 4, 2),
            Engine::EventDriven,
            "4 shards on 2 cores must fall back"
        );
        assert_eq!(
            resolve_parallel(&scenario, 4, 4),
            Engine::ParallelEvent { workers: 4 },
            "4 shards on 4 cores run as requested"
        );
        assert_eq!(
            resolve_parallel(&scenario, 9, 64),
            Engine::ParallelEvent { workers: 4 },
            "shards cap at the cluster count"
        );
    }

    #[test]
    fn unanimous_one_cluster_decides_fast() {
        let out = Sim.run(
            &Scenario::new(Partition::single_cluster(4), Algorithm::LocalCoin)
                .proposals_all(Bit::One)
                .seed(1),
        );
        assert!(out.all_correct_decided);
        assert!(
            out.decided(Bit::One),
            "validity: unanimous input decides it"
        );
        assert_eq!(out.deciders(), 4);
        assert_eq!(out.max_decision_round, 1, "unanimous input: one round");
    }

    #[test]
    fn fig1_right_mixed_proposals_agree() {
        for seed in 0..5 {
            let out = Sim.run(
                &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                    .proposals_split(3)
                    .seed(seed),
            );
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn common_coin_variant_agrees() {
        for seed in 0..5 {
            let out = Sim.run(
                &Scenario::new(Partition::fig1_left(), Algorithm::CommonCoin)
                    .proposals_split(4)
                    .seed(seed),
            );
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn same_scenario_same_trace_hash() {
        let scenario = |seed| {
            Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(4)
                .seed(seed)
        };
        let a = Sim.run(&scenario(42));
        let b = Sim.run(&scenario(42));
        assert_eq!(a.trace_hash, b.trace_hash, "replay must be exact");
        assert!(a.trace_hash.is_some());
        assert_eq!(a.decided_value, b.decided_value);
        assert_eq!(a.latest_decision_time, b.latest_decision_time);
        let c = Sim.run(&scenario(43));
        // Different seed: almost surely a different schedule.
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn crash_all_but_one_in_majority_cluster_still_decides() {
        // The paper's headline: Fig 1 right, crash everything except p3.
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        let out = Sim.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(2)
                .crashes(plan)
                .seed(3),
        );
        assert!(out.all_correct_decided, "p3 alone must decide");
        assert_eq!(out.deciders(), 1);
        assert_eq!(out.crashed.len(), 6);
    }

    #[test]
    fn minority_survivors_stall_but_stay_safe() {
        // Pure message passing (singletons), crash a majority: no decision,
        // but also no wrong decision (indulgence).
        let part = Partition::singletons(5);
        let crashed = ProcessSet::from_indices(5, [0, 1, 2]);
        let out = Sim.run(
            &Scenario::new(part, Algorithm::LocalCoin)
                .proposals_split(2)
                .crashes(CrashPlan::new().crash_set_at_start(&crashed))
                .max_rounds(20)
                .seed(5),
        );
        assert!(!out.all_correct_decided);
        assert_eq!(out.deciders(), 0);
        assert!(out.agreement_holds());
    }

    #[test]
    fn trace_is_kept_on_request() {
        let out = Sim.run(
            &Scenario::new(Partition::single_cluster(2), Algorithm::CommonCoin)
                .proposals_all(Bit::Zero)
                .keep_trace(),
        );
        let events = out.events.expect("trace kept");
        assert!(!events.is_empty());
        // The trace must contain decisions for both processes.
        let decided = events
            .iter()
            .filter(|e| matches!(e.event, ofa_scenario::TraceEvent::Decided { .. }))
            .count();
        assert_eq!(decided, 2);
    }

    #[test]
    fn observer_sees_invariants_hold() {
        use ofa_core::InvariantChecker;
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(3)
                .observer(checker.clone())
                .seed(11),
        );
        assert!(out.all_correct_decided);
        checker.assert_clean();
        assert_eq!(checker.decisions().len(), 7);
    }

    #[test]
    fn mid_broadcast_crash_partial_delivery_is_safe() {
        // Crash p2 a few env-calls in: its first broadcast is cut short.
        for step in [1u64, 2, 3, 5, 8] {
            let out = Sim.run(
                &Scenario::new(Partition::fig1_left(), Algorithm::LocalCoin)
                    .proposals_split(4)
                    .crashes(CrashPlan::new().crash_at_step(ProcessId(1), step))
                    .seed(step),
            );
            assert!(out.agreement_holds(), "step {step}");
            assert!(out.all_correct_decided, "step {step}");
            assert!(out.crashed.contains(ProcessId(1)));
        }
    }

    #[test]
    fn deserialized_scenario_reproduces_trace_hash() {
        let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
            .proposals_split(3)
            .crashes(CrashPlan::new().crash_at_step(ProcessId(5), 9))
            .seed(1234);
        let json = serde_json::to_string(&scenario).unwrap();
        let replay: Scenario = serde_json::from_str(&json).unwrap();
        let a = Sim.run(&scenario);
        let b = Sim.run(&replay);
        assert_eq!(a.trace_hash, b.trace_hash, "serde round-trip must replay");
        assert_eq!(a.decided_value, b.decided_value);
    }

    #[test]
    fn custom_bodies_fall_back_to_the_thread_conductor() {
        use ofa_core::{Decision, Env, Halt, ProtocolConfig};
        use ofa_scenario::ProcessBody;

        // A custom body is blocking code, so an EventDriven request must
        // run it on the conductor — same outcome either way, and the
        // fallback is recorded in `engine_used` rather than guessed.
        struct Delegate;
        impl ProcessBody for Delegate {
            fn run(
                &self,
                env: &mut dyn Env,
                proposal: Bit,
                config: &ProtocolConfig,
            ) -> Result<Decision, Halt> {
                Algorithm::LocalCoin.run(env, proposal, config)
            }
        }
        let base = Scenario::new(Partition::even(6, 2), Algorithm::LocalCoin)
            .proposals_split(3)
            .seed(5);
        let direct = Sim.run(&base.clone().engine(ofa_scenario::Engine::EventDriven));
        assert_eq!(
            direct.engine_used,
            Some(ofa_scenario::Engine::EventDriven),
            "declarative bodies run on the requested engine"
        );
        let custom = Sim.run(
            &base
                .custom_body(Arc::new(Delegate))
                .engine(ofa_scenario::Engine::EventDriven),
        );
        assert_eq!(
            custom.engine_used,
            Some(ofa_scenario::Engine::Threads),
            "custom bodies fall back to the conductor, observably"
        );
        assert_eq!(direct.trace_hash, custom.trace_hash);
        assert_eq!(direct.decisions, custom.decisions);
    }

    #[test]
    #[should_panic(expected = "one proposal per process")]
    fn wrong_proposal_count_panics() {
        let _ = Sim.run(
            &Scenario::new(Partition::single_cluster(3), Algorithm::LocalCoin)
                .proposals(vec![Bit::One]),
        );
    }
}
