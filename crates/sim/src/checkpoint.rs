//! The canonical checkpoint format shared by every event engine.
//!
//! A checkpoint freezes a run at a virtual-time cut `T`: every event
//! scheduled strictly before `T` has been processed, none at `>= T` has.
//! [`EngineSnap`] is the *engine-independent* encoding of everything
//! live at that cut — per-process machine snapshots, process accounting
//! (clocks, steps, coin streams, metric counters), shared-memory
//! contents, per-sender PRF send counters, the trace-hash accumulator,
//! and the pending event set in canonical [`CanonEvent`] form. Both the
//! single-threaded event engine and the cluster-sharded parallel engine
//! capture into and restore from this one shape, which is what lets a
//! sequential run resume a parallel checkpoint and vice versa.
//!
//! Two normalizations make the encoding canonical:
//!
//! * **Events are sorted** by `(time, sender, counter, destination)` —
//!   the same total order the schedulers dispatch in — so the byte
//!   encoding is independent of heap iteration order and shard count.
//!   Batched broadcasts stay batched: one [`CanonEvent::Broadcast`]
//!   descriptor (destinations `0..n` implied, destination `g` holding
//!   sender-counter `k0 + g`), deduplicated across the per-shard copies
//!   the parallel engine keeps.
//! * **Timed crashes are excluded.** They are a pure function of the
//!   scenario's crash plan, so the resume path re-seeds `AtTime`
//!   triggers with `at >= T` from the *resume* scenario — which is
//!   exactly what lets a divergent replay swap the tail's failure
//!   pattern.

use ofa_core::{Decision, Halt, MsgKind};
use ofa_metrics::{CounterSnapshot, ServiceStats};
use ofa_sharedmem::Slot;
use serde::{Deserialize, Serialize};

/// One pending delivery, in the engine-independent form. Times and
/// ordering keys were fixed when the message was sent (they are
/// functions of the sender's local history), so restoring re-draws no
/// randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CanonEvent {
    /// A point-to-point delivery.
    One {
        /// Delivery time.
        at: u64,
        /// Sender index.
        from: u32,
        /// The sender's send-op counter for this message (the tie-break
        /// key component).
        k: u64,
        /// Destination index.
        to: u32,
        /// The message.
        msg: MsgKind,
    },
    /// A batched uniform broadcast: destinations `0..n` implied,
    /// destination `g` holds sender-counter `k0 + g`.
    Broadcast {
        /// Shared delivery time of every destination.
        at: u64,
        /// Sender index.
        from: u32,
        /// The sender's counter for destination 0.
        k0: u64,
        /// The message.
        msg: MsgKind,
    },
}

impl CanonEvent {
    /// The canonical dispatch order: `(time, sender, counter,
    /// destination)` — every pending event is a delivery (class 1), so
    /// this is exactly the schedulers' `(at, EventKey)` order.
    pub(crate) fn sort_key(&self) -> (u64, u32, u64, u32) {
        match *self {
            CanonEvent::One {
                at, from, k, to, ..
            } => (at, from, k, to),
            CanonEvent::Broadcast { at, from, k0, .. } => (at, from, k0, 0),
        }
    }
}

impl Serialize for CanonEvent {
    fn to_value(&self) -> serde::Value {
        match *self {
            CanonEvent::One {
                at,
                from,
                k,
                to,
                msg,
            } => serde::Value::Map(vec![(
                "One".to_string(),
                serde::Value::Map(vec![
                    ("at".to_string(), at.to_value()),
                    ("from".to_string(), from.to_value()),
                    ("k".to_string(), k.to_value()),
                    ("to".to_string(), to.to_value()),
                    ("msg".to_string(), msg.to_value()),
                ]),
            )]),
            CanonEvent::Broadcast { at, from, k0, msg } => serde::Value::Map(vec![(
                "Broadcast".to_string(),
                serde::Value::Map(vec![
                    ("at".to_string(), at.to_value()),
                    ("from".to_string(), from.to_value()),
                    ("k0".to_string(), k0.to_value()),
                    ("msg".to_string(), msg.to_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for CanonEvent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(o) = v.get("One") {
            let field = |name: &str| {
                o.get(name)
                    .ok_or_else(|| serde::Error::msg(format!("CanonEvent::One: missing {name:?}")))
            };
            return Ok(CanonEvent::One {
                at: Deserialize::from_value(field("at")?)?,
                from: Deserialize::from_value(field("from")?)?,
                k: Deserialize::from_value(field("k")?)?,
                to: Deserialize::from_value(field("to")?)?,
                msg: Deserialize::from_value(field("msg")?)?,
            });
        }
        if let Some(b) = v.get("Broadcast") {
            let field = |name: &str| {
                b.get(name).ok_or_else(|| {
                    serde::Error::msg(format!("CanonEvent::Broadcast: missing {name:?}"))
                })
            };
            return Ok(CanonEvent::Broadcast {
                at: Deserialize::from_value(field("at")?)?,
                from: Deserialize::from_value(field("from")?)?,
                k0: Deserialize::from_value(field("k0")?)?,
                msg: Deserialize::from_value(field("msg")?)?,
            });
        }
        Err(serde::Error::msg("CanonEvent: expected One or Broadcast"))
    }
}

/// One process's accounting state at the cut.
#[derive(Debug, Clone)]
pub(crate) struct ProcSnap {
    /// The process-local virtual clock.
    pub(crate) clock: u64,
    /// Environment calls taken (the `AtStep` crash countdown).
    pub(crate) steps: u64,
    /// `true` once this process crashed itself.
    pub(crate) crashed_self: bool,
    /// The seeded local-coin xoshiro state.
    pub(crate) coin_rng: [u64; 4],
    /// Local-coin flips taken so far.
    pub(crate) coin_flips: u64,
    /// Metric counters accumulated so far.
    pub(crate) counters: CounterSnapshot,
    /// Client-service statistics emitted so far (traffic-driven
    /// replicated logs only; empty — and omitted from the encoding —
    /// otherwise).
    pub(crate) service: ServiceStats,
    /// Terminal result and final clock, if the process already finished.
    pub(crate) finished: Option<(Result<Decision, Halt>, u64)>,
}

impl Serialize for ProcSnap {
    fn to_value(&self) -> serde::Value {
        let finished = match &self.finished {
            None => serde::Value::Null,
            Some((res, clock)) => {
                let (tag, inner) = match res {
                    Ok(d) => ("ok", d.to_value()),
                    Err(h) => ("halt", h.to_value()),
                };
                serde::Value::Map(vec![
                    (tag.to_string(), inner),
                    ("clock".to_string(), clock.to_value()),
                ])
            }
        };
        let mut entries = vec![
            ("clock".to_string(), self.clock.to_value()),
            ("steps".to_string(), self.steps.to_value()),
            ("crashed_self".to_string(), self.crashed_self.to_value()),
            ("coin_rng".to_string(), self.coin_rng.to_vec().to_value()),
            ("coin_flips".to_string(), self.coin_flips.to_value()),
            ("counters".to_string(), self.counters.to_value()),
            ("finished".to_string(), finished),
        ];
        // Empty stats encode as absence, which keeps pre-traffic
        // checkpoints byte-identical (and loadable both ways).
        if self.service != ServiceStats::default() {
            entries.push(("service".to_string(), self.service.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for ProcSnap {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("ProcSnap: missing field {name:?}")))
        };
        let rng: Vec<u64> = Deserialize::from_value(field("coin_rng")?)?;
        let coin_rng: [u64; 4] = rng
            .try_into()
            .map_err(|_| serde::Error::msg("ProcSnap: coin_rng must have 4 words"))?;
        let finished = match field("finished")? {
            serde::Value::Null => None,
            f => {
                let clock = Deserialize::from_value(
                    f.get("clock")
                        .ok_or_else(|| serde::Error::msg("ProcSnap: finished missing clock"))?,
                )?;
                let res = if let Some(d) = f.get("ok") {
                    Ok(Deserialize::from_value(d)?)
                } else if let Some(h) = f.get("halt") {
                    Err(Deserialize::from_value(h)?)
                } else {
                    return Err(serde::Error::msg("ProcSnap: finished needs ok or halt"));
                };
                Some((res, clock))
            }
        };
        Ok(ProcSnap {
            clock: Deserialize::from_value(field("clock")?)?,
            steps: Deserialize::from_value(field("steps")?)?,
            crashed_self: Deserialize::from_value(field("crashed_self")?)?,
            coin_rng,
            coin_flips: Deserialize::from_value(field("coin_flips")?)?,
            counters: Deserialize::from_value(field("counters")?)?,
            service: match v.get("service") {
                None | Some(serde::Value::Null) => ServiceStats::default(),
                Some(s) => Deserialize::from_value(s)?,
            },
            finished,
        })
    }
}

/// The complete engine state at a virtual-time cut, in canonical
/// engine-independent form. This is the payload behind
/// [`ofa_scenario::Snapshot::engine_state`].
#[derive(Debug, Clone)]
pub(crate) struct EngineSnap {
    /// The cut time `T`.
    pub(crate) at: u64,
    /// Events dispatched so far (the `max_events` budget position).
    pub(crate) events_processed: u64,
    /// Max event timestamp dispatched so far.
    pub(crate) end_time: u64,
    /// The multiset trace-hash accumulator.
    pub(crate) trace_hash: u64,
    /// Trace records hashed so far.
    pub(crate) trace_count: u64,
    /// Per-sender PRF send counters (index = process).
    pub(crate) send_counters: Vec<u64>,
    /// Per-process machine snapshots; `Null` for finished processes
    /// (they are never dispatched again).
    pub(crate) machines: Vec<serde::Value>,
    /// Per-process accounting.
    pub(crate) procs: Vec<ProcSnap>,
    /// Per-cluster shared memory: decided `(slot, word)` pairs plus the
    /// propose count.
    pub(crate) memory: Vec<(Vec<(Slot, u64)>, u64)>,
    /// Pending deliveries in canonical sorted order; timed crashes are
    /// re-seeded from the resume scenario, not stored.
    pub(crate) events: Vec<CanonEvent>,
}

impl EngineSnap {
    /// Sorts the pending events into canonical dispatch order and
    /// collapses the per-shard copies of each batched broadcast (the
    /// parallel engine keeps one descriptor per shard for the same
    /// logical broadcast; `(from, k0)` identifies it globally).
    pub(crate) fn normalize(&mut self) {
        self.events.sort_unstable_by_key(CanonEvent::sort_key);
        self.events.dedup_by(|a, b| {
            matches!(
                (*a, *b),
                (
                    CanonEvent::Broadcast { from: fa, k0: ka, .. },
                    CanonEvent::Broadcast { from: fb, k0: kb, .. },
                ) if fa == fb && ka == kb
            )
        });
    }
}

/// Slots carry no serde impls (`ofa-sharedmem` is serialization-free),
/// so each decided cell flattens to `[instance, round, phase, word]`.
fn slot_cell_to_value(slot: &Slot, word: u64) -> serde::Value {
    serde::Value::Seq(vec![
        slot.instance.to_value(),
        slot.round.to_value(),
        serde::Value::U64(u64::from(slot.phase)),
        word.to_value(),
    ])
}

fn slot_cell_from_value(v: &serde::Value) -> Result<(Slot, u64), serde::Error> {
    let (instance, round, phase, word): (u64, u64, u8, u64) = Deserialize::from_value(v)?;
    Ok((
        Slot {
            instance,
            round,
            phase,
        },
        word,
    ))
}

impl Serialize for EngineSnap {
    fn to_value(&self) -> serde::Value {
        let memory = serde::Value::Seq(
            self.memory
                .iter()
                .map(|(decided, proposes)| {
                    serde::Value::Map(vec![
                        (
                            "decided".to_string(),
                            serde::Value::Seq(
                                decided
                                    .iter()
                                    .map(|(slot, word)| slot_cell_to_value(slot, *word))
                                    .collect(),
                            ),
                        ),
                        ("proposes".to_string(), proposes.to_value()),
                    ])
                })
                .collect(),
        );
        serde::Value::Map(vec![
            ("at".to_string(), self.at.to_value()),
            (
                "events_processed".to_string(),
                self.events_processed.to_value(),
            ),
            ("end_time".to_string(), self.end_time.to_value()),
            ("trace_hash".to_string(), self.trace_hash.to_value()),
            ("trace_count".to_string(), self.trace_count.to_value()),
            ("send_counters".to_string(), self.send_counters.to_value()),
            (
                "machines".to_string(),
                serde::Value::Seq(self.machines.clone()),
            ),
            ("procs".to_string(), self.procs.to_value()),
            ("memory".to_string(), memory),
            ("events".to_string(), self.events.to_value()),
        ])
    }
}

impl Deserialize for EngineSnap {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("EngineSnap: missing field {name:?}")))
        };
        let machines = match field("machines")? {
            serde::Value::Seq(items) => items.clone(),
            _ => return Err(serde::Error::msg("EngineSnap: machines must be a sequence")),
        };
        let memory = match field("memory")? {
            serde::Value::Seq(clusters) => clusters
                .iter()
                .map(|c| {
                    let decided = match c.get("decided") {
                        Some(serde::Value::Seq(cells)) => cells
                            .iter()
                            .map(slot_cell_from_value)
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err(serde::Error::msg("EngineSnap: cluster missing decided")),
                    };
                    let proposes =
                        Deserialize::from_value(c.get("proposes").ok_or_else(|| {
                            serde::Error::msg("EngineSnap: cluster missing proposes")
                        })?)?;
                    Ok((decided, proposes))
                })
                .collect::<Result<Vec<_>, serde::Error>>()?,
            _ => return Err(serde::Error::msg("EngineSnap: memory must be a sequence")),
        };
        Ok(EngineSnap {
            at: Deserialize::from_value(field("at")?)?,
            events_processed: Deserialize::from_value(field("events_processed")?)?,
            end_time: Deserialize::from_value(field("end_time")?)?,
            trace_hash: Deserialize::from_value(field("trace_hash")?)?,
            trace_count: Deserialize::from_value(field("trace_count")?)?,
            send_counters: Deserialize::from_value(field("send_counters")?)?,
            machines,
            procs: Deserialize::from_value(field("procs")?)?,
            memory,
            events: Deserialize::from_value(field("events")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg() -> MsgKind {
        // Any MsgKind works; the codec treats it opaquely.
        MsgKind::Decide {
            instance: 0,
            value: ofa_core::Bit::One,
        }
    }

    #[test]
    fn canon_events_sort_and_dedupe_like_the_schedulers() {
        let msg = sample_msg();
        let mut snap = EngineSnap {
            at: 10,
            events_processed: 0,
            end_time: 0,
            trace_hash: 0,
            trace_count: 0,
            send_counters: vec![],
            machines: vec![],
            procs: vec![],
            memory: vec![],
            events: vec![
                CanonEvent::Broadcast {
                    at: 20,
                    from: 1,
                    k0: 4,
                    msg,
                },
                CanonEvent::One {
                    at: 15,
                    from: 2,
                    k: 0,
                    to: 1,
                    msg,
                },
                // The same broadcast as seen from another shard.
                CanonEvent::Broadcast {
                    at: 20,
                    from: 1,
                    k0: 4,
                    msg,
                },
                CanonEvent::One {
                    at: 15,
                    from: 0,
                    k: 7,
                    to: 2,
                    msg,
                },
            ],
        };
        snap.normalize();
        assert_eq!(snap.events.len(), 3, "shard copies collapse");
        assert_eq!(
            snap.events
                .iter()
                .map(CanonEvent::sort_key)
                .collect::<Vec<_>>(),
            vec![(15, 0, 7, 2), (15, 2, 0, 1), (20, 1, 4, 0)],
        );
    }

    #[test]
    fn engine_snap_round_trips() {
        let msg = sample_msg();
        let snap = EngineSnap {
            at: 1_000,
            events_processed: 42,
            end_time: 990,
            trace_hash: 0xDEAD_BEEF,
            trace_count: 42,
            send_counters: vec![3, 0, 9],
            machines: vec![serde::Value::Null, serde::Value::U64(1), serde::Value::Null],
            procs: vec![ProcSnap {
                clock: 980,
                steps: 17,
                crashed_self: false,
                coin_rng: [1, 2, 3, 4],
                coin_flips: 5,
                counters: CounterSnapshot::default(),
                service: ServiceStats::default(),
                finished: Some((Err(Halt::Crashed), 980)),
            }],
            memory: vec![(
                vec![(
                    Slot {
                        instance: 0,
                        round: 2,
                        phase: 1,
                    },
                    77,
                )],
                4,
            )],
            events: vec![CanonEvent::One {
                at: 1_005,
                from: 0,
                k: 3,
                to: 2,
                msg,
            }],
        };
        let copy = EngineSnap::from_value(&snap.to_value()).expect("round trip");
        assert_eq!(copy.at, snap.at);
        assert_eq!(copy.send_counters, snap.send_counters);
        assert_eq!(copy.procs[0].coin_rng, [1, 2, 3, 4]);
        assert_eq!(copy.procs[0].finished, Some((Err(Halt::Crashed), 980)));
        assert_eq!(copy.memory, snap.memory);
        assert_eq!(copy.events, snap.events);
        assert_eq!(copy.machines.len(), 3);
    }
}
