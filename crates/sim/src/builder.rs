//! Deprecated builder shim over the unified scenario API.
//!
//! [`SimBuilder`] predates [`ofa_scenario::Scenario`]; it survives one
//! release as a thin wrapper so downstream code migrates at its own pace.
//! New code should build a [`Scenario`] and run it on the [`Sim`] backend
//! (or any other [`ofa_scenario::Backend`]).

#![allow(deprecated)]

use crate::Sim;
use ofa_coins::CommonCoin;
use ofa_core::{Algorithm, Bit, Observer, ProtocolConfig};
use ofa_scenario::{Backend, CostModel, CrashPlan, DelayModel, Outcome, ProcessBody, Scenario};
use ofa_topology::Partition;
use std::fmt;
use std::sync::Arc;

/// Deprecated alias: outcomes are now the backend-agnostic
/// [`ofa_scenario::Outcome`], identical across substrates.
#[deprecated(since = "0.2.0", note = "use ofa_scenario::Outcome")]
pub type SimOutcome = Outcome;

/// Deprecated builder for one simulated consensus execution.
///
/// Thin shim over [`Scenario`] + the [`Sim`] backend; every method maps
/// 1:1 onto a [`Scenario`] setter.
#[deprecated(
    since = "0.2.0",
    note = "build an ofa_scenario::Scenario and run it on the ofa_sim::Sim backend"
)]
pub struct SimBuilder {
    scenario: Scenario,
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("scenario", &self.scenario)
            .finish()
    }
}

impl SimBuilder {
    /// Starts a builder with [`Scenario::new`]'s defaults.
    pub fn new(partition: Partition, algorithm: Algorithm) -> Self {
        SimBuilder {
            scenario: Scenario::new(partition, algorithm),
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.scenario = self.scenario.config(config);
        self
    }

    /// Replaces the algorithm with a custom protocol body.
    pub fn custom_body(mut self, body: Arc<dyn ProcessBody>) -> Self {
        self.scenario = self.scenario.custom_body(body);
        self
    }

    /// Bounds the number of protocol rounds per process.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.scenario = self.scenario.max_rounds(rounds);
        self
    }

    /// Sets every process's proposal explicitly.
    pub fn proposals(mut self, proposals: Vec<Bit>) -> Self {
        self.scenario = self.scenario.proposals(proposals);
        self
    }

    /// All processes propose the same value.
    pub fn proposals_all(mut self, v: Bit) -> Self {
        self.scenario = self.scenario.proposals_all(v);
        self
    }

    /// The first `ones` processes propose 1, the rest 0.
    pub fn proposals_split(mut self, ones: usize) -> Self {
        self.scenario = self.scenario.proposals_split(ones);
        self
    }

    /// Seeds all randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario = self.scenario.seed(seed);
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.scenario = self.scenario.delay(delay);
        self
    }

    /// Sets the per-operation cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.scenario = self.scenario.costs(costs);
        self
    }

    /// Sets the failure pattern.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.scenario = self.scenario.crashes(plan);
        self
    }

    /// Substitutes a custom common coin.
    pub fn common_coin(mut self, coin: Arc<dyn CommonCoin>) -> Self {
        self.scenario = self.scenario.common_coin(coin);
        self
    }

    /// Attaches an observer.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.scenario = self.scenario.observer(observer);
        self
    }

    /// Retains the full event trace in the outcome.
    pub fn keep_trace(mut self) -> Self {
        self.scenario = self.scenario.keep_trace();
        self
    }

    /// Caps the number of simulator events.
    pub fn max_events(mut self, max: u64) -> Self {
        self.scenario = self.scenario.max_events(max);
        self
    }

    /// The scenario this builder has accumulated (migration helper).
    pub fn into_scenario(self) -> Scenario {
        self.scenario
    }

    /// Runs the execution to completion and summarizes it.
    ///
    /// # Panics
    ///
    /// Panics if the proposal vector length differs from `n`, or if
    /// protocol code panics (a bug, not a modeled fault).
    pub fn run(self) -> Outcome {
        Sim.run(&self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_matches_direct_scenario_run() {
        let via_shim = SimBuilder::new(Partition::fig1_right(), Algorithm::CommonCoin)
            .proposals_split(3)
            .seed(7)
            .run();
        let direct = Sim.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
                .proposals_split(3)
                .seed(7),
        );
        assert_eq!(via_shim.trace_hash, direct.trace_hash);
        assert_eq!(via_shim.decided_value, direct.decided_value);
        assert_eq!(
            via_shim.counters.messages_sent,
            direct.counters.messages_sent
        );
    }

    #[test]
    fn into_scenario_preserves_settings() {
        let sc = SimBuilder::new(Partition::single_cluster(4), Algorithm::LocalCoin)
            .proposals_all(Bit::One)
            .seed(5)
            .into_scenario();
        assert_eq!(sc.seed, 5);
        assert_eq!(sc.proposals, vec![Bit::One; 4]);
    }
}
