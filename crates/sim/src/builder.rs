//! High-level entry point: configure and run one simulated execution.

use crate::conductor::{conduct, Body, RunSpec, TimedScheduler};
use crate::{CostModel, CrashPlan, DelayModel, TimedEvent, VirtualTime};
use ofa_coins::{CommonCoin, SeededCommonCoin};
use ofa_core::{Algorithm, Bit, Decision, Halt, Observer, ProtocolConfig};
use ofa_metrics::CounterSnapshot;
use ofa_topology::{Partition, ProcessId, ProcessSet};
use std::fmt;
use std::sync::Arc;

/// Builder for one simulated consensus execution.
///
/// # Examples
///
/// ```
/// use ofa_core::{Algorithm, Bit};
/// use ofa_sim::SimBuilder;
/// use ofa_topology::Partition;
///
/// // Figure 1 (right), mixed proposals, common-coin algorithm:
/// let outcome = SimBuilder::new(Partition::fig1_right(), Algorithm::CommonCoin)
///     .proposals_split(3) // p1..p3 propose 1, the rest propose 0
///     .seed(7)
///     .run();
/// assert!(outcome.all_correct_decided);
/// assert!(outcome.agreement_holds());
/// outcome.decided_value.expect("someone decided");
/// ```
pub struct SimBuilder {
    partition: Partition,
    body: Body,
    config: ProtocolConfig,
    proposals: Vec<Bit>,
    seed: u64,
    delay: DelayModel,
    costs: CostModel,
    crash_plan: CrashPlan,
    common_coin: Option<Arc<dyn CommonCoin>>,
    observer: Option<Arc<dyn Observer>>,
    keep_trace: bool,
    max_events: u64,
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("partition", &self.partition)
            .field("seed", &self.seed)
            .field("crashes", &self.crash_plan.len())
            .finish_non_exhaustive()
    }
}

impl SimBuilder {
    /// Starts a builder for `partition` running `algorithm` with the
    /// paper's configuration, alternating proposals (`0, 1, 0, 1, …`),
    /// seed 0, default delays/costs, no crashes, and a round budget of 512
    /// (safety net; conforming runs finish in a handful of rounds).
    pub fn new(partition: Partition, algorithm: Algorithm) -> Self {
        let n = partition.n();
        SimBuilder {
            partition,
            body: Body::Algo(algorithm),
            config: ProtocolConfig::paper().with_max_rounds(512),
            proposals: (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
            seed: 0,
            delay: DelayModel::default_network(),
            costs: CostModel::default(),
            crash_plan: CrashPlan::new(),
            common_coin: None,
            observer: None,
            keep_trace: false,
            max_events: 5_000_000,
        }
    }

    /// Sets the protocol configuration (preserves its `max_rounds`).
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the algorithm with a custom protocol body (e.g. the m&m
    /// comparator of `ofa-mm` or an SMR replica of `ofa-smr`). The body
    /// runs once per process under the same deterministic conductor.
    pub fn custom_body(mut self, body: Arc<dyn crate::ProcessBody>) -> Self {
        self.body = Body::Custom(body);
        self
    }

    /// Bounds the number of protocol rounds per process.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config = self.config.with_max_rounds(rounds);
        self
    }

    /// Sets every process's proposal explicitly.
    ///
    /// # Panics
    ///
    /// Panics (on `run`) if the length differs from `n`.
    pub fn proposals(mut self, proposals: Vec<Bit>) -> Self {
        self.proposals = proposals;
        self
    }

    /// All processes propose the same value.
    pub fn proposals_all(mut self, v: Bit) -> Self {
        self.proposals = vec![v; self.partition.n()];
        self
    }

    /// The first `ones` processes propose 1, the rest 0 — a convenient
    /// mixed-input workload.
    pub fn proposals_split(mut self, ones: usize) -> Self {
        let n = self.partition.n();
        self.proposals = (0..n).map(|i| Bit::from(i < ones)).collect();
        self
    }

    /// Seeds all randomness (delays, local coins, common coin).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the per-operation cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the failure pattern.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Substitutes a custom common coin (default: seeded fair coin).
    pub fn common_coin(mut self, coin: Arc<dyn CommonCoin>) -> Self {
        self.common_coin = Some(coin);
        self
    }

    /// Attaches an observer (e.g. [`ofa_core::InvariantChecker`]).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Retains the full event trace in the outcome (hash is always on).
    pub fn keep_trace(mut self) -> Self {
        self.keep_trace = true;
        self
    }

    /// Caps the number of simulator events (safety net against unbounded
    /// non-terminating runs).
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Runs the execution to completion and summarizes it.
    ///
    /// # Panics
    ///
    /// Panics if the proposal vector length differs from `n`, or if
    /// protocol code panics (a bug, not a modeled fault).
    pub fn run(self) -> SimOutcome {
        let mut scheduler = TimedScheduler::new(self.seed, self.delay.clone());
        let common_coin: Arc<dyn CommonCoin> = self
            .common_coin
            .unwrap_or_else(|| Arc::new(SeededCommonCoin::new(self.seed ^ COIN_SEED_MARKER)));
        let n = self.partition.n();
        let spec = RunSpec {
            partition: self.partition,
            body: self.body,
            config: self.config,
            proposals: self.proposals,
            seed: self.seed,
            costs: self.costs,
            crash_plan: self.crash_plan,
            common_coin,
            observer: self.observer,
            keep_trace: self.keep_trace,
            max_events: self.max_events,
        };
        let raw = conduct(spec, &mut scheduler);

        let mut decisions: Vec<Option<Decision>> = Vec::with_capacity(n);
        let mut halts: Vec<Option<Halt>> = Vec::with_capacity(n);
        let mut crashed = ProcessSet::empty(n);
        let mut decide_times = Vec::new();
        for (i, (res, clock)) in raw.results.iter().enumerate() {
            match res {
                Ok(d) => {
                    decisions.push(Some(*d));
                    halts.push(None);
                    decide_times.push(VirtualTime::from_ticks(*clock));
                }
                Err(h) => {
                    decisions.push(None);
                    halts.push(Some(*h));
                    if *h == Halt::Crashed {
                        crashed.insert(ProcessId(i));
                    }
                }
            }
        }
        let decided_value = decisions.iter().flatten().map(|d| d.value).next();
        let all_correct_decided = decisions
            .iter()
            .zip(halts.iter())
            .all(|(d, h)| d.is_some() || *h == Some(Halt::Crashed));
        let latest_decision_time = decide_times
            .iter()
            .copied()
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let rounds: Vec<u64> = decisions.iter().flatten().map(|d| d.round).collect();
        let mean_decision_round = if rounds.is_empty() {
            0.0
        } else {
            rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
        };
        let max_decision_round = rounds.iter().copied().max().unwrap_or(0);

        SimOutcome {
            decisions,
            halts,
            crashed,
            decided_value,
            all_correct_decided,
            latest_decision_time,
            mean_decision_round,
            max_decision_round,
            end_time: VirtualTime::from_ticks(raw.end_time),
            per_process: raw.counters.clone(),
            counters: CounterSnapshot::merge_all(raw.counters),
            trace_hash: raw.trace_hash,
            events: if raw.trace_events.is_empty() {
                None
            } else {
                Some(raw.trace_events)
            },
            events_processed: raw.events_processed,
            sm_objects: raw.sm_objects,
            sm_proposes: raw.sm_proposes,
        }
    }
}

/// Domain separator so the common coin's stream differs from the delay and
/// local-coin streams derived from the same master seed.
const COIN_SEED_MARKER: u64 = 0xC0_1D_5E_ED;

/// Summary of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-process decision (`None` for crashed/stopped processes).
    pub decisions: Vec<Option<Decision>>,
    /// Per-process halt reason (`None` for deciders).
    pub halts: Vec<Option<Halt>>,
    /// Processes that ended crashed.
    pub crashed: ProcessSet,
    /// The first decided value observed, if any.
    pub decided_value: Option<Bit>,
    /// `true` iff every non-crashed process decided (termination).
    pub all_correct_decided: bool,
    /// Local clock of the last process to decide.
    pub latest_decision_time: VirtualTime,
    /// Mean deciding round over deciders.
    pub mean_decision_round: f64,
    /// Max deciding round over deciders.
    pub max_decision_round: u64,
    /// Largest virtual timestamp seen.
    pub end_time: VirtualTime,
    /// Merged counters over all processes.
    pub counters: CounterSnapshot,
    /// Per-process counters.
    pub per_process: Vec<CounterSnapshot>,
    /// Replay hash of the full event stream.
    pub trace_hash: u64,
    /// Full trace (only with [`SimBuilder::keep_trace`]).
    pub events: Option<Vec<TimedEvent>>,
    /// Number of scheduler events processed.
    pub events_processed: u64,
    /// Consensus objects materialized across all cluster memories.
    pub sm_objects: usize,
    /// Total propose invocations across all cluster memories.
    pub sm_proposes: u64,
}

impl SimOutcome {
    /// `true` iff no two processes decided different values.
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<Bit> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(d.value),
                Some(v) if v != d.value => return false,
                _ => {}
            }
        }
        true
    }

    /// Number of processes that decided.
    pub fn deciders(&self) -> usize {
        self.decisions.iter().flatten().count()
    }

    /// `true` iff `v` was decided by someone and it equals every decision.
    pub fn decided(&self, v: Bit) -> bool {
        self.decided_value == Some(v) && self.agreement_holds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_one_cluster_decides_fast() {
        let out = SimBuilder::new(Partition::single_cluster(4), Algorithm::LocalCoin)
            .proposals_all(Bit::One)
            .seed(1)
            .run();
        assert!(out.all_correct_decided);
        assert!(
            out.decided(Bit::One),
            "validity: unanimous input decides it"
        );
        assert_eq!(out.deciders(), 4);
        assert_eq!(out.max_decision_round, 1, "unanimous input: one round");
    }

    #[test]
    fn fig1_right_mixed_proposals_agree() {
        for seed in 0..5 {
            let out = SimBuilder::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(3)
                .seed(seed)
                .run();
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn common_coin_variant_agrees() {
        for seed in 0..5 {
            let out = SimBuilder::new(Partition::fig1_left(), Algorithm::CommonCoin)
                .proposals_split(4)
                .seed(seed)
                .run();
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn same_seed_same_trace_hash() {
        let run = |seed| {
            SimBuilder::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(4)
                .seed(seed)
                .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.trace_hash, b.trace_hash, "replay must be exact");
        assert_eq!(a.decided_value, b.decided_value);
        assert_eq!(a.latest_decision_time, b.latest_decision_time);
        let c = run(43);
        // Different seed: almost surely a different schedule.
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn crash_all_but_one_in_majority_cluster_still_decides() {
        // The paper's headline: Fig 1 right, crash everything except p3.
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        let out = SimBuilder::new(Partition::fig1_right(), Algorithm::LocalCoin)
            .proposals_split(2)
            .crashes(plan)
            .seed(3)
            .run();
        assert!(out.all_correct_decided, "p3 alone must decide");
        assert_eq!(out.deciders(), 1);
        assert_eq!(out.crashed.len(), 6);
    }

    #[test]
    fn minority_survivors_stall_but_stay_safe() {
        // Pure message passing (singletons), crash a majority: no decision,
        // but also no wrong decision (indulgence).
        let part = Partition::singletons(5);
        let crashed = ProcessSet::from_indices(5, [0, 1, 2]);
        let out = SimBuilder::new(part, Algorithm::LocalCoin)
            .proposals_split(2)
            .crashes(CrashPlan::new().crash_set_at_start(&crashed))
            .max_rounds(20)
            .seed(5)
            .run();
        assert!(!out.all_correct_decided);
        assert_eq!(out.deciders(), 0);
        assert!(out.agreement_holds());
    }

    #[test]
    fn trace_is_kept_on_request() {
        let out = SimBuilder::new(Partition::single_cluster(2), Algorithm::CommonCoin)
            .proposals_all(Bit::Zero)
            .keep_trace()
            .run();
        let events = out.events.expect("trace kept");
        assert!(!events.is_empty());
        // The trace must contain decisions for both processes.
        let decided = events
            .iter()
            .filter(|e| matches!(e.event, crate::TraceEvent::Decided { .. }))
            .count();
        assert_eq!(decided, 2);
    }

    #[test]
    fn observer_sees_invariants_hold() {
        use ofa_core::InvariantChecker;
        let checker = Arc::new(InvariantChecker::new());
        let out = SimBuilder::new(Partition::fig1_right(), Algorithm::LocalCoin)
            .proposals_split(3)
            .observer(checker.clone())
            .seed(11)
            .run();
        assert!(out.all_correct_decided);
        checker.assert_clean();
        assert_eq!(checker.decisions().len(), 7);
    }

    #[test]
    fn mid_broadcast_crash_partial_delivery_is_safe() {
        // Crash p2 a few env-calls in: its first broadcast is cut short.
        for step in [1u64, 2, 3, 5, 8] {
            let out = SimBuilder::new(Partition::fig1_left(), Algorithm::LocalCoin)
                .proposals_split(4)
                .crashes(CrashPlan::new().crash_at_step(ProcessId(1), step))
                .seed(step)
                .run();
            assert!(out.agreement_holds(), "step {step}");
            assert!(out.all_correct_decided, "step {step}");
            assert!(out.crashed.contains(ProcessId(1)));
        }
    }

    #[test]
    #[should_panic(expected = "one proposal per process")]
    fn wrong_proposal_count_panics() {
        let _ = SimBuilder::new(Partition::single_cluster(3), Algorithm::LocalCoin)
            .proposals(vec![Bit::One])
            .run();
    }
}
