//! The event-driven engine: resumable state machines, no threads.
//!
//! The thread conductor (`conductor.rs`) runs the blocking `Env`-trait
//! algorithms by giving every simulated process its own OS thread and
//! serializing them with a rendezvous baton — two context switches per
//! burst, a few thousand processes at most. This engine replaces the
//! thread per process with an `ofa_core::sm` state machine — a
//! [`ConsensusSm`] for binary bodies, a [`MultivaluedSm`] for
//! multivalued workloads, a [`LogSm`] for replicated logs — and
//! dispatches steps straight off the scheduler heap on a single thread:
//! no spawned threads, no baton, no channels.
//!
//! It is **observationally identical** to the conductor: the per-process
//! [`EventCtx`] charges the same steps and virtual-time costs in the same
//! order as the conductor's `SimEnv`, and the machines mirror the
//! blocking algorithms operation for operation, so the same scenario
//! produces the same decisions, counters, event counts — and the same
//! trace hash, bit for bit (`tests/engine_equivalence.rs`, across all
//! three declarative body kinds). What changes is the constant factor and
//! the ceiling: a burst is a function call, and with a constant-delay
//! model whole broadcasts stay single heap entries, so
//! `n = 10 000`-process executions finish in seconds on one core (the
//! `escale` experiment) and replicated KV runs reach `n >= 5 000` (the
//! `smrscale` experiment).

use crate::checkpoint::{EngineSnap, ProcSnap};
use crate::conductor::{
    rejoin_coin_seed, RawOutcome, RunSpec, SchedEvent, Scheduler, TimedScheduler,
};
use ofa_coins::{CommonCoin, LocalCoin, SeededLocalCoin};
use ofa_core::sm::{
    ConsensusSm, LogSm, MultivaluedSm, MvProgress, OutItem, Progress, SmCtx, SmTopology,
};
use ofa_core::TrafficState;
use ofa_core::{
    mv_body_decision, Bit, Decision, Halt, Msg, MsgKind, ObsEvent, Observer, ProtocolConfig,
};
use ofa_metrics::{CounterSnapshot, ServiceStats};
use ofa_scenario::{
    Body, CostModel, CrashPlan, CrashTrigger, TraceEvent, TraceRecorder, VirtualTime,
};
use ofa_sharedmem::{ClusterMemory, MemoryBank, Slot};
use ofa_topology::{Partition, ProcessId};
use std::sync::Arc;

/// One process's machine, shaped by the scenario body. The multivalued
/// variant adapts [`MvProgress`] to [`Progress`] via
/// [`mv_body_decision`], exactly like the blocking body wrapper.
// A run's machine population is homogeneous — every element of the
// machines vec is the same variant — so boxing `LogSm` (which carries
// the traffic queue inline) would buy nothing for mixed workloads and
// cost a pointer chase per step on SMR runs.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Machine {
    Consensus(ConsensusSm),
    Multivalued(MultivaluedSm),
    Log(LogSm),
}

impl Machine {
    /// Builds process `i`'s machine for a declarative body — shared by
    /// the single-threaded engine and the per-shard construction of the
    /// parallel engine.
    ///
    /// # Panics
    ///
    /// Panics on [`Body::Custom`] — custom bodies are blocking code;
    /// route them to the thread conductor.
    /// `serves_traffic` mirrors [`ofa_core::Env::serves_traffic`]: pass
    /// `false` for churn-planned processes so both of their incarnations
    /// propose empty filler slots instead of clock-dependent batches (a
    /// restarted proposer could not re-broadcast its first incarnation's
    /// batches identically, which the reduction's agreement requires).
    pub(crate) fn build(
        body: &Body,
        i: usize,
        topo: &Arc<SmTopology>,
        proposals: &[Bit],
        config: ProtocolConfig,
        seed: u64,
        serves_traffic: bool,
    ) -> Machine {
        match body {
            Body::Algo(algorithm) => Machine::Consensus(ConsensusSm::new(
                *algorithm,
                ProcessId(i),
                Arc::clone(topo),
                0,
                proposals[i],
                config,
            )),
            Body::Multivalued(mv) => Machine::Multivalued(MultivaluedSm::new(
                mv.algorithm,
                ProcessId(i),
                Arc::clone(topo),
                0,
                mv.proposals[i],
                config,
            )),
            Body::ReplicatedLog(smr) => {
                let traffic = smr.traffic.as_ref().filter(|_| serves_traffic).map(|spec| {
                    TrafficState::new(spec, seed, i as u32, topo.partition().n() as u32)
                });
                Machine::Log(LogSm::new(
                    smr.algorithm,
                    ProcessId(i),
                    Arc::clone(topo),
                    smr.queues.get(i).cloned().unwrap_or_default(),
                    smr.slots,
                    config,
                    traffic,
                ))
            }
            Body::Custom(_) => {
                panic!("the event-driven engines run declarative bodies only")
            }
        }
    }

    pub(crate) fn start(&mut self, ctx: &mut EventCtx<'_>) -> Progress {
        match self {
            Machine::Consensus(sm) => sm.start(ctx),
            Machine::Multivalued(sm) => adapt(sm.start(ctx)),
            Machine::Log(sm) => sm.start(ctx),
        }
    }

    pub(crate) fn on_msg(&mut self, msg: Msg, ctx: &mut EventCtx<'_>) -> Progress {
        match self {
            Machine::Consensus(sm) => sm.on_msg(msg, ctx),
            Machine::Multivalued(sm) => adapt(sm.on_msg(msg, ctx)),
            Machine::Log(sm) => sm.on_msg(msg, ctx),
        }
    }

    pub(crate) fn halt(&mut self, halt: Halt, ctx: &mut EventCtx<'_>) -> Progress {
        match self {
            Machine::Consensus(sm) => sm.halt(halt, ctx),
            Machine::Multivalued(sm) => adapt(sm.halt(halt, ctx)),
            Machine::Log(sm) => sm.halt(halt, ctx),
        }
    }

    /// Returns a drained outbox buffer to the machine for reuse by the
    /// next step (allocation-free stepping — the buffer cycles
    /// machine → scheduler drain → machine).
    pub(crate) fn recycle_outbox(&mut self, buf: Vec<OutItem>) {
        match self {
            Machine::Consensus(sm) => sm.recycle_outbox(buf),
            Machine::Multivalued(sm) => sm.recycle_outbox(buf),
            Machine::Log(sm) => sm.recycle_outbox(buf),
        }
    }

    /// Serializes the machine's resumable state (wait state, tallies,
    /// mailboxes, stage position) for a checkpoint. Outboxes are always
    /// empty at suspension points (every step `mem::take`s them into its
    /// `Progress`), so they are not captured.
    pub(crate) fn snapshot(&self) -> serde::Value {
        let (tag, inner) = match self {
            Machine::Consensus(sm) => ("Consensus", sm.snapshot()),
            Machine::Multivalued(sm) => ("Multivalued", sm.snapshot()),
            Machine::Log(sm) => ("Log", sm.snapshot()),
        };
        serde::Value::Map(vec![(tag.to_string(), inner)])
    }

    /// Rebuilds process `i`'s machine from a [`Machine::snapshot`] value.
    /// The scenario supplies everything a snapshot omits as derivable
    /// (algorithm, topology, config, command queues).
    pub(crate) fn from_snapshot(
        body: &Body,
        i: usize,
        topo: &Arc<SmTopology>,
        config: ProtocolConfig,
        seed: u64,
        serves_traffic: bool,
        v: &serde::Value,
    ) -> Result<Machine, serde::Error> {
        let variant = |tag: &str| {
            v.get(tag)
                .ok_or_else(|| serde::Error::msg(format!("machine snapshot: expected {tag}")))
        };
        match body {
            Body::Algo(algorithm) => Ok(Machine::Consensus(ConsensusSm::from_snapshot(
                *algorithm,
                ProcessId(i),
                Arc::clone(topo),
                config,
                variant("Consensus")?,
            )?)),
            Body::Multivalued(mv) => Ok(Machine::Multivalued(MultivaluedSm::from_snapshot(
                mv.algorithm,
                ProcessId(i),
                Arc::clone(topo),
                config,
                variant("Multivalued")?,
            )?)),
            Body::ReplicatedLog(smr) => Ok(Machine::Log(LogSm::from_snapshot(
                smr.algorithm,
                ProcessId(i),
                Arc::clone(topo),
                config,
                smr.queues.get(i).cloned().unwrap_or_default(),
                smr.slots,
                smr.traffic.as_ref().filter(|_| serves_traffic),
                seed,
                variant("Log")?,
            )?)),
            Body::Custom(_) => {
                panic!("the event-driven engines run declarative bodies only")
            }
        }
    }
}

/// [`MvProgress`] → [`Progress`] for a multivalued *body*: terminal
/// decisions reduce to the digest-parity binary decision.
fn adapt(progress: MvProgress) -> Progress {
    match progress {
        MvProgress::NeedMsg => Progress::NeedMsg,
        MvProgress::Sent(out) => Progress::Sent(out),
        MvProgress::Decided(mv, out) => Progress::Decided(mv_body_decision(&mv), out),
        MvProgress::Halted(h, out) => Progress::Halted(h, out),
    }
}

/// Mutable per-process execution state (the conductor keeps the same
/// quantities on each process thread's stack).
pub(crate) struct ProcState {
    pub(crate) clock: u64,
    steps: u64,
    /// An `AtStep`/`AtRound` trigger fired (checked at every step).
    crashed_self: bool,
    local_coin: SeededLocalCoin,
    /// Plain (non-atomic) counters: each state is stepped by exactly one
    /// thread, so the snapshot type doubles as the accumulator on the
    /// hot path.
    pub(crate) counters: CounterSnapshot,
    /// Client-service statistics emitted by the machine's terminal step
    /// (traffic-driven replicated logs only; empty otherwise). Like
    /// `counters`, persists across churn incarnations — the second
    /// incarnation's emission merges in.
    pub(crate) service: ServiceStats,
    crash_at_step: Option<u64>,
    crash_at_round: Option<u64>,
    pub(crate) finished: Option<(Result<Decision, Halt>, u64)>,
}

impl ProcState {
    /// Fresh state for process `pid` under the run's crash plan.
    pub(crate) fn for_process(seed: u64, pid: ProcessId, crash_plan: &CrashPlan) -> Self {
        let (crash_at_step, crash_at_round) = match crash_plan.trigger(pid) {
            Some(CrashTrigger::AtStep(k)) => (Some(k), None),
            Some(CrashTrigger::AtRound(r)) => (None, Some(r)),
            _ => (None, None),
        };
        ProcState {
            clock: 0,
            steps: 0,
            crashed_self: false,
            local_coin: SeededLocalCoin::for_process(seed, pid),
            counters: CounterSnapshot::default(),
            service: ServiceStats::new(),
            crash_at_step,
            crash_at_round,
            finished: None,
        }
    }

    /// Captures this process's accounting for a checkpoint.
    pub(crate) fn snapshot(&self) -> ProcSnap {
        let (coin_rng, coin_flips) = self.local_coin.state();
        ProcSnap {
            clock: self.clock,
            steps: self.steps,
            crashed_self: self.crashed_self,
            coin_rng,
            coin_flips,
            counters: self.counters,
            service: self.service.clone(),
            finished: self.finished,
        }
    }

    /// Rebuilds a process from a checkpoint. Crash triggers are
    /// re-derived from the *resume* plan (not stored), so a divergent
    /// replay's extra step/round triggers apply to still-running
    /// processes.
    pub(crate) fn restore(snap: &ProcSnap, pid: ProcessId, crash_plan: &CrashPlan) -> Self {
        let (crash_at_step, crash_at_round) = match crash_plan.trigger(pid) {
            Some(CrashTrigger::AtStep(k)) => (Some(k), None),
            Some(CrashTrigger::AtRound(r)) => (None, Some(r)),
            _ => (None, None),
        };
        ProcState {
            clock: snap.clock,
            steps: snap.steps,
            crashed_self: snap.crashed_self,
            local_coin: SeededLocalCoin::from_state(snap.coin_rng, snap.coin_flips),
            counters: snap.counters,
            service: snap.service.clone(),
            crash_at_step,
            crash_at_round,
            finished: snap.finished,
        }
    }

    /// Wake-up + receive accounting for one delivery — the conductor
    /// charges these inside the blocked `recv` when the baton returns.
    /// Shared by both event-driven engines so the charging can never
    /// drift between them.
    pub(crate) fn on_delivered(&mut self, at: u64, recv_cost: u64) {
        self.clock = self.clock.max(at);
        self.clock += recv_cost;
        self.counters.messages_delivered += 1;
    }

    /// Wake-up accounting for a timed crash event.
    pub(crate) fn on_crash_event(&mut self, at: u64) {
        self.clock = self.clock.max(at);
    }

    /// Resets runtime state for a churn rejoin: the second incarnation
    /// starts with a fresh step count and the rejoin-domain coin stream,
    /// its clock at the rejoin time (or the clock the first incarnation
    /// crashed at, whichever is later — matching the conductor's fresh
    /// seat). Metric counters persist across incarnations; churned
    /// processes never carry crash triggers (the plans are disjoint).
    pub(crate) fn rejoin(&mut self, coin_seed: u64, pid: ProcessId, at: u64) {
        let crash_clock = self.finished.as_ref().map(|(_, c)| *c).unwrap_or(0);
        self.clock = crash_clock.max(at);
        self.steps = 0;
        self.crashed_self = false;
        self.local_coin = SeededLocalCoin::for_process(coin_seed, pid);
        self.finished = None;
    }

    /// Records the terminal trace event and stores the result — what the
    /// conductor does when a process thread reports `Finished`. Shared by
    /// both event-driven engines.
    pub(crate) fn finish(
        &mut self,
        who: ProcessId,
        result: Result<Decision, Halt>,
        trace: &mut TraceRecorder,
    ) {
        let clock = self.clock;
        let event = match &result {
            Ok(d) => TraceEvent::Decided { who, decision: *d },
            Err(h) => TraceEvent::Halted { who, halt: *h },
        };
        trace.record(VirtualTime::from_ticks(clock), event);
        self.finished = Some((result, clock));
    }

    /// Assembles the per-step [`SmCtx`] over this state — the one place
    /// the borrow split between process state and run-wide services is
    /// spelled out, shared by both event-driven engines.
    pub(crate) fn ctx<'a>(
        &'a mut self,
        me: ProcessId,
        costs: CostModel,
        memory: &'a ClusterMemory,
        common_coin: &'a dyn CommonCoin,
        observer: Option<&'a dyn Observer>,
        trace: &'a mut TraceRecorder,
    ) -> EventCtx<'a> {
        EventCtx {
            me,
            costs,
            crash_at_step: self.crash_at_step,
            crash_at_round: self.crash_at_round,
            clock: &mut self.clock,
            steps: &mut self.steps,
            crashed_self: &mut self.crashed_self,
            local_coin: &mut self.local_coin,
            counters: &mut self.counters,
            service: &mut self.service,
            memory,
            common_coin,
            observer,
            trace,
        }
    }
}

/// What to feed a machine on dispatch.
pub(crate) enum Input {
    Start,
    Deliver(Msg),
    End(Halt),
}

/// The [`SmCtx`] the engine hands a machine for one step: charges steps
/// and virtual-time costs, fires step/round-indexed crashes, counts, and
/// records trace events — mirroring the conductor's `SimEnv` exactly.
pub(crate) struct EventCtx<'a> {
    me: ProcessId,
    costs: CostModel,
    crash_at_step: Option<u64>,
    crash_at_round: Option<u64>,
    clock: &'a mut u64,
    steps: &'a mut u64,
    crashed_self: &'a mut bool,
    local_coin: &'a mut SeededLocalCoin,
    counters: &'a mut CounterSnapshot,
    service: &'a mut ServiceStats,
    memory: &'a ClusterMemory,
    common_coin: &'a dyn CommonCoin,
    observer: Option<&'a dyn Observer>,
    trace: &'a mut TraceRecorder,
}

impl EventCtx<'_> {
    /// Counts an environment call and fires step-indexed crashes — the
    /// conductor's `SimEnv::step`.
    fn step(&mut self) -> Result<(), Halt> {
        *self.steps += 1;
        if let Some(k) = self.crash_at_step {
            if *self.steps > k {
                *self.crashed_self = true;
            }
        }
        if *self.crashed_self {
            return Err(Halt::Crashed);
        }
        Ok(())
    }

    fn record(&mut self, event: TraceEvent) {
        self.trace
            .record(VirtualTime::from_ticks(*self.clock), event);
    }
}

impl SmCtx for EventCtx<'_> {
    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<u64, Halt> {
        self.step()?;
        *self.clock += self.costs.send_cost;
        self.counters.messages_sent += 1;
        self.record(TraceEvent::Send {
            who: self.me,
            to,
            msg,
        });
        Ok(*self.clock)
    }

    fn begin_recv(&mut self) -> Result<(), Halt> {
        // The step the blocking code charges on entering `recv`; the
        // receive cost itself is charged at delivery time by the engine.
        self.step()
    }

    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
        self.step()?;
        *self.clock += self.costs.sm_op_cost;
        let decided = self.memory.propose_raw(slot, enc);
        self.counters.cluster_proposes += 1;
        self.record(TraceEvent::ClusterPropose {
            who: self.me,
            round: slot.round,
            phase: slot.phase,
            proposed: enc,
            decided,
        });
        Ok(decided)
    }

    fn local_coin(&mut self) -> Result<Bit, Halt> {
        self.step()?;
        *self.clock += self.costs.coin_cost;
        let bit = Bit::from(self.local_coin.flip());
        self.counters.local_coin_flips += 1;
        self.record(TraceEvent::Coin {
            who: self.me,
            common: false,
            value: bit.as_bool(),
        });
        Ok(bit)
    }

    fn common_coin(&mut self, index: u64) -> Result<Bit, Halt> {
        self.step()?;
        *self.clock += self.costs.coin_cost;
        let bit = Bit::from(self.common_coin.bit(index));
        self.counters.common_coin_queries += 1;
        self.record(TraceEvent::Coin {
            who: self.me,
            common: true,
            value: bit.as_bool(),
        });
        Ok(bit)
    }

    fn observe(&mut self, event: ObsEvent) {
        match event {
            ObsEvent::RoundStart { round, .. } => {
                self.counters.rounds_started += 1;
                self.record(TraceEvent::RoundStart {
                    who: self.me,
                    round,
                });
                // Round-indexed crashes count rounds cumulatively across
                // instances (multivalued stages, log slots), so they
                // fire inside multi-instance bodies too.
                if let Some(r) = self.crash_at_round {
                    if self.counters.rounds_started >= r {
                        *self.crashed_self = true;
                    }
                }
            }
            ObsEvent::Deciding { relayed, .. } => {
                if relayed {
                    self.counters.decide_relays += 1;
                } else {
                    self.counters.decisions += 1;
                }
            }
            ObsEvent::MailboxStats { stale_dropped } => {
                self.counters.stale_dropped += stale_dropped;
            }
            _ => {}
        }
        if let Some(obs) = self.observer {
            obs.on_event(self.me, &event);
        }
    }

    fn note_broadcast(&mut self) {
        self.counters.broadcasts += 1;
    }

    fn now(&self) -> u64 {
        *self.clock
    }

    fn service_stats(&mut self, stats: &ServiceStats) {
        self.service.merge(stats);
    }
}

/// Everything one event-driven execution owns.
struct Engine<'a, S: Scheduler> {
    machines: Vec<Machine>,
    procs: Vec<ProcState>,
    partition: Partition,
    memory: MemoryBank,
    costs: CostModel,
    crash_plan: CrashPlan,
    common_coin: Arc<dyn CommonCoin>,
    observer: Option<Arc<dyn Observer>>,
    trace: TraceRecorder,
    scheduler: &'a mut S,
    n: usize,
    // Rejoin inputs: a churned process restarts from its original
    // proposal with a freshly built machine.
    topo: Arc<SmTopology>,
    body: Body,
    proposals: Vec<Bit>,
    config: ProtocolConfig,
    seed: u64,
}

impl<S: Scheduler> Engine<'_, S> {
    /// Runs one machine step with a freshly assembled context, then
    /// routes the resulting progress (sends, termination records).
    fn dispatch(&mut self, i: usize, input: Input) {
        let me = ProcessId(i);
        let mut ctx = self.procs[i].ctx(
            me,
            self.costs,
            self.memory.memory_of(&self.partition, me),
            self.common_coin.as_ref(),
            self.observer.as_deref(),
            &mut self.trace,
        );
        let sm = &mut self.machines[i];
        let progress = match input {
            Input::Start => sm.start(&mut ctx),
            Input::Deliver(msg) => sm.on_msg(msg, &mut ctx),
            Input::End(halt) => sm.halt(halt, &mut ctx),
        };
        match progress {
            Progress::NeedMsg => {}
            Progress::Sent(mut outbox) => {
                self.drain(i, &mut outbox);
                // Hand the drained buffer back: the next step's sends
                // reuse its capacity instead of allocating.
                self.machines[i].recycle_outbox(outbox);
            }
            Progress::Decided(decision, mut outbox) => {
                self.drain(i, &mut outbox);
                self.finish(i, Ok(decision));
            }
            Progress::Halted(halt, mut outbox) => {
                self.drain(i, &mut outbox);
                self.finish(i, Err(halt));
            }
        }
    }

    /// Hands a step's sends to the scheduler, in send order, leaving the
    /// buffer empty for recycling.
    fn drain(&mut self, i: usize, outbox: &mut Vec<OutItem>) {
        let from = ProcessId(i);
        for item in outbox.drain(..) {
            match item {
                OutItem::One(o) => self.scheduler.push_send(from, o.to, o.msg, o.sent_at),
                OutItem::Broadcast { msg, sent_at } => {
                    self.scheduler.push_broadcast(from, msg, sent_at, self.n)
                }
            }
        }
    }

    /// Records a terminal result via the shared [`ProcState::finish`].
    fn finish(&mut self, i: usize, result: Result<Decision, Halt>) {
        self.procs[i].finish(ProcessId(i), result, &mut self.trace);
    }
}

/// How a [`conduct_event_driven_leg`] ended: ran to completion, or
/// paused at the requested virtual-time cut with the full engine state
/// captured.
pub(crate) enum LegResult {
    Done(RawOutcome),
    Paused(Box<EngineSnap>),
}

/// Runs a spec on the event-driven engine under the given scheduler.
///
/// # Panics
///
/// Panics if the spec's body is [`Body::Custom`] — custom bodies are
/// blocking code; route them to the thread conductor.
pub(crate) fn conduct_event_driven(spec: RunSpec, scheduler: &mut TimedScheduler) -> RawOutcome {
    match conduct_event_driven_leg(spec, scheduler, None, None) {
        LegResult::Done(out) => out,
        LegResult::Paused(_) => unreachable!("no cut was requested"),
    }
}

/// Runs one *leg* of an event-driven execution: optionally starting from
/// a checkpoint (`resume`), optionally pausing at a virtual-time cut
/// (`stop_at`). The cut contract: every event scheduled strictly before
/// `stop_at` is processed, none at `>= stop_at` is. A leg that reaches
/// quiescence (or the event budget) before the cut completes normally —
/// exactly like the straight-through run.
///
/// # Panics
///
/// Panics if the spec's body is [`Body::Custom`], or if a resume
/// snapshot's shape does not match the spec (wrong process count,
/// undecodable machine state).
pub(crate) fn conduct_event_driven_leg(
    spec: RunSpec,
    scheduler: &mut TimedScheduler,
    resume: Option<&EngineSnap>,
    stop_at: Option<u64>,
) -> LegResult {
    let n = spec.partition.n();
    assert_eq!(
        spec.proposals.len(),
        n,
        "need one proposal per process (got {} for n={n})",
        spec.proposals.len()
    );

    let topo = Arc::new(SmTopology::new(spec.partition.clone()));
    let config: ProtocolConfig = spec.config;
    let serves = |i: usize| spec.churn.event(ProcessId(i)).is_none();
    let machines: Vec<Machine> = match resume {
        None => (0..n)
            .map(|i| {
                Machine::build(
                    &spec.body,
                    i,
                    &topo,
                    &spec.proposals,
                    config,
                    spec.seed,
                    serves(i),
                )
            })
            .collect(),
        Some(snap) => {
            assert_eq!(snap.machines.len(), n, "snapshot is for a different n");
            (0..n)
                .map(|i| match &snap.machines[i] {
                    // Finished processes are never dispatched again; a
                    // fresh machine is a placeholder, not state.
                    serde::Value::Null => Machine::build(
                        &spec.body,
                        i,
                        &topo,
                        &spec.proposals,
                        config,
                        spec.seed,
                        serves(i),
                    ),
                    v => Machine::from_snapshot(
                        &spec.body,
                        i,
                        &topo,
                        config,
                        spec.seed,
                        serves(i),
                        v,
                    )
                    .expect("resume: machine snapshot decodes"),
                })
                .collect()
        }
    };
    let mut engine = Engine {
        machines,
        procs: match resume {
            None => (0..n)
                .map(|i| ProcState::for_process(spec.seed, ProcessId(i), &spec.crash_plan))
                .collect(),
            Some(snap) => (0..n)
                .map(|i| ProcState::restore(&snap.procs[i], ProcessId(i), &spec.crash_plan))
                .collect(),
        },
        partition: spec.partition,
        memory: match resume {
            None => MemoryBank::for_partition(topo.partition()),
            Some(snap) => MemoryBank::restore(&snap.memory),
        },
        costs: spec.costs,
        crash_plan: spec.crash_plan,
        common_coin: spec.common_coin,
        observer: spec.observer,
        trace: match resume {
            None => TraceRecorder::new(spec.keep_trace),
            Some(snap) => TraceRecorder::resume(snap.trace_hash, snap.trace_count),
        },
        scheduler,
        n,
        topo,
        body: spec.body,
        proposals: spec.proposals,
        config,
        seed: spec.seed,
    };

    if let Some(snap) = resume {
        // Pending deliveries re-enter the heap under their captured keys
        // and timestamps; send counters resume mid-stream.
        engine
            .scheduler
            .restore(&snap.events, snap.send_counters.clone(), n as u32);
        // Timed crashes are not stored: re-seed the cut's future from
        // the *resume* plan (this is what lets a diverge swap the tail's
        // failure pattern). Triggers before the cut already happened.
        for (pid, trig) in engine.crash_plan.iter() {
            if let CrashTrigger::AtTime(t) = trig {
                if t.ticks() >= snap.at {
                    engine.scheduler.push_crash(pid, t.ticks());
                }
            }
        }
        // Churn is re-seeded the same way. A rejoin after the cut whose
        // leave was *before* the cut still fires: the leave is already
        // in the trace, the rejoin is not.
        for (pid, e) in spec.churn.iter() {
            if e.leave.ticks() >= snap.at {
                engine.scheduler.push_crash(pid, e.leave.ticks());
            }
            if let Some(r) = e.rejoin {
                if r.ticks() >= snap.at {
                    engine.scheduler.push_rejoin(pid, r.ticks());
                }
            }
        }
    } else {
        // Schedule the timed crashes up front.
        for (pid, trig) in engine.crash_plan.iter() {
            if let CrashTrigger::AtTime(t) = trig {
                engine.scheduler.push_crash(pid, t.ticks());
            }
        }
        // Churn leaves are crashes; rejoins restart the process.
        for (pid, e) in spec.churn.iter() {
            engine.scheduler.push_crash(pid, e.leave.ticks());
            if let Some(r) = e.rejoin {
                engine.scheduler.push_rejoin(pid, r.ticks());
            }
        }

        // Initial steps, in process order (each drains its sends before
        // the next process starts, like the conductor's initial bursts).
        for i in 0..n {
            engine.dispatch(i, Input::Start);
        }
    }

    // Main event loop.
    let mut events_processed: u64 = resume.map_or(0, |s| s.events_processed);
    let mut end_time: u64 = resume.map_or(0, |s| s.end_time);
    while events_processed < spec.max_events {
        if let Some(cut) = stop_at {
            match engine.scheduler.next_at() {
                Some(next) if next >= cut => {
                    let mut snap = EngineSnap {
                        at: cut,
                        events_processed,
                        end_time,
                        trace_hash: engine.trace.hash(),
                        trace_count: engine.trace.count(),
                        send_counters: engine.scheduler.counter_values().to_vec(),
                        machines: engine
                            .machines
                            .iter()
                            .zip(&engine.procs)
                            .map(|(m, p)| {
                                if p.finished.is_some() {
                                    serde::Value::Null
                                } else {
                                    m.snapshot()
                                }
                            })
                            .collect(),
                        procs: engine.procs.iter().map(ProcState::snapshot).collect(),
                        memory: engine.memory.checkpoint(),
                        events: engine.scheduler.checkpoint_events(),
                    };
                    snap.normalize();
                    return LegResult::Paused(Box::new(snap));
                }
                _ => {}
            }
        }
        let Some(ev) = engine.scheduler.pop() else {
            break;
        };
        events_processed += 1;
        match ev {
            SchedEvent::Deliver { to, from, msg, at } => {
                end_time = end_time.max(at);
                let i = to.index();
                // Crashed processes are finished too (a Crash event halts
                // the machine in the same dispatch), so one check covers
                // the conductor's `finished || crashed[]` pair.
                if engine.procs[i].finished.is_some() {
                    continue; // dropped on the floor
                }
                engine.trace.record(
                    VirtualTime::from_ticks(at),
                    TraceEvent::Deliver { who: to, from, msg },
                );
                engine.procs[i].on_delivered(at, engine.costs.recv_cost);
                engine.dispatch(i, Input::Deliver(Msg { from, kind: msg }));
            }
            SchedEvent::Crash { pid, at } => {
                end_time = end_time.max(at);
                let i = pid.index();
                if engine.procs[i].finished.is_some() {
                    continue;
                }
                engine
                    .trace
                    .record(VirtualTime::from_ticks(at), TraceEvent::Crash { who: pid });
                engine.procs[i].on_crash_event(at);
                engine.dispatch(i, Input::End(Halt::Crashed));
            }
            SchedEvent::Rejoin { pid, at } => {
                end_time = end_time.max(at);
                let i = pid.index();
                // A process that decided before its scheduled leave
                // ignored the leave; it ignores the rejoin too.
                if !matches!(engine.procs[i].finished, Some((Err(Halt::Crashed), _))) {
                    continue;
                }
                engine
                    .trace
                    .record(VirtualTime::from_ticks(at), TraceEvent::Rejoin { who: pid });
                // Fresh machine (fresh mailbox, original proposal),
                // reset runtime state, rejoin-domain coin stream —
                // exactly the conductor's fresh seat. Only churn-planned
                // processes rejoin, and those never serve traffic.
                engine.machines[i] = Machine::build(
                    &engine.body,
                    i,
                    &engine.topo,
                    &engine.proposals,
                    engine.config,
                    engine.seed,
                    false,
                );
                engine.procs[i].rejoin(rejoin_coin_seed(engine.seed), pid, at);
                engine.dispatch(i, Input::Start);
            }
        }
    }

    // Quiescent or budget exhausted: stop the stragglers, in process
    // order (the conductor's final baton round).
    for i in 0..n {
        if engine.procs[i].finished.is_none() {
            engine.dispatch(i, Input::End(Halt::Stopped));
        }
    }

    let results: Vec<(Result<Decision, Halt>, u64)> = engine
        .procs
        .iter_mut()
        .map(|s| s.finished.take().expect("all machines have terminated"))
        .collect();
    let counters = engine.procs.iter().map(|s| s.counters).collect();
    let mut service = ServiceStats::new();
    for s in &engine.procs {
        service.merge(&s.service);
    }
    let trace_hash = engine.trace.hash();
    let end_time = end_time.max(results.iter().map(|(_, c)| *c).max().unwrap_or(0));
    LegResult::Done(RawOutcome {
        results,
        counters,
        service,
        trace_hash,
        trace_events: engine.trace.into_events(),
        events_processed,
        end_time,
        sm_objects: engine.memory.total_objects(),
        sm_proposes: engine.memory.total_proposes(),
    })
}

#[cfg(test)]
mod tests {
    use ofa_core::{Algorithm, Bit, InvariantChecker};
    use ofa_scenario::{Backend, CrashPlan, DelayModel, Engine, Scenario};
    use ofa_topology::{Partition, ProcessId};
    use std::sync::Arc;

    use crate::Sim;

    /// Both engines, same scenario: every observable field must match,
    /// including the replay hash.
    fn assert_engines_identical(scenario: Scenario) {
        let threads = Sim.run(&scenario.clone().engine(Engine::Threads));
        let event = Sim.run(&scenario.engine(Engine::EventDriven));
        assert_eq!(threads.engine_used, Some(Engine::Threads));
        assert_eq!(event.engine_used, Some(Engine::EventDriven));
        assert_eq!(threads.decisions, event.decisions);
        assert_eq!(threads.halts, event.halts);
        assert_eq!(threads.crashed, event.crashed);
        assert_eq!(threads.counters, event.counters);
        assert_eq!(threads.per_process, event.per_process);
        assert_eq!(threads.trace_hash, event.trace_hash);
        assert_eq!(threads.events_processed, event.events_processed);
        assert_eq!(threads.end_time, event.end_time);
        assert_eq!(threads.latest_decision_time, event.latest_decision_time);
        assert_eq!(threads.sm_proposes, event.sm_proposes);
    }

    fn payload(s: &str) -> ofa_core::Payload {
        ofa_core::Payload::from_bytes(s.as_bytes()).expect("fits")
    }

    #[test]
    fn engines_match_with_sampled_delays() {
        for seed in 0..4 {
            assert_engines_identical(
                Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                    .proposals_split(3)
                    .seed(seed),
            );
        }
    }

    #[test]
    fn engines_match_on_the_broadcast_batch_path() {
        // Constant delay exercises the single-heap-entry broadcast fast
        // path in the event engine only — outcomes must still be
        // bit-identical to the conductor's per-send entries.
        for seed in 0..4 {
            assert_engines_identical(
                Scenario::new(Partition::even(12, 3), Algorithm::CommonCoin)
                    .proposals_split(5)
                    .delay(DelayModel::Constant(800))
                    .seed(seed),
            );
        }
    }

    #[test]
    fn engines_match_under_crashes() {
        use ofa_scenario::VirtualTime;
        let plan = CrashPlan::new()
            .crash_at_step(ProcessId(1), 6)
            .crash_at_round(ProcessId(4), 2)
            .crash_at_time(ProcessId(2), VirtualTime::from_ticks(1_500));
        assert_engines_identical(
            Scenario::new(Partition::fig1_left(), Algorithm::LocalCoin)
                .proposals_split(4)
                .crashes(plan)
                .seed(9),
        );
    }

    #[test]
    fn engines_match_on_multivalued_bodies() {
        for (seed, algorithm) in [(1u64, Algorithm::LocalCoin), (2, Algorithm::CommonCoin)] {
            let part = Partition::fig1_right();
            let proposals = (0..part.n())
                .map(|i| payload(&format!("from-p{}", i + 1)))
                .collect();
            assert_engines_identical(
                Scenario::new(part, algorithm)
                    .multivalued(algorithm, proposals)
                    .seed(seed),
            );
        }
    }

    #[test]
    fn engines_match_on_replicated_log_bodies() {
        let part = Partition::even(6, 2);
        let queues = (0..6)
            .map(|i| vec![payload(&format!("cmd-{i}a")), payload(&format!("cmd-{i}b"))])
            .collect::<Vec<_>>();
        assert_engines_identical(
            Scenario::new(part, Algorithm::CommonCoin)
                .replicated_log(Algorithm::CommonCoin, 3, queues)
                .seed(7),
        );
    }

    #[test]
    fn round_crashes_fire_inside_replicated_log_bodies() {
        // Rounds are counted cumulatively across instances, so an
        // AtRound trigger is not a silent no-op for multivalued/SMR
        // workloads (it used to be: the old check looked for instance-0
        // rounds, which multi-instance bodies never run).
        let part = Partition::even(6, 2);
        let queues = (0..6)
            .map(|i| vec![payload(&format!("c{i}"))])
            .collect::<Vec<_>>();
        let scenario = Scenario::new(part, Algorithm::CommonCoin)
            .replicated_log(Algorithm::CommonCoin, 2, queues)
            .crashes(CrashPlan::new().crash_at_round(ProcessId(3), 2))
            .seed(5);
        let out = Sim.run(&scenario.clone().event_driven());
        assert!(
            out.crashed.contains(ProcessId(3)),
            "the round trigger must fire inside the log body"
        );
        assert!(out.all_correct_decided, "survivors keep committing");
        // And identically on the conductor.
        assert_engines_identical(scenario);
    }

    #[test]
    fn engines_match_on_multivalued_bodies_under_crashes() {
        let part = Partition::fig1_right();
        let proposals = (0..part.n()).map(|i| payload(&format!("v{i}"))).collect();
        let plan = CrashPlan::new()
            .crash_at_start(ProcessId(0))
            .crash_at_step(ProcessId(5), 25);
        assert_engines_identical(
            Scenario::new(part, Algorithm::CommonCoin)
                .multivalued(Algorithm::CommonCoin, proposals)
                .crashes(plan)
                .seed(3),
        );
    }

    #[test]
    fn headline_crash_pattern_on_the_event_engine() {
        // Fig 1 right, 6 of 7 crashed: the lone majority-cluster survivor
        // still decides.
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        let out = Sim.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(2)
                .crashes(plan)
                .seed(3)
                .event_driven(),
        );
        assert!(out.all_correct_decided);
        assert_eq!(out.deciders(), 1);
        assert_eq!(out.crashed.len(), 6);
    }

    #[test]
    fn observer_and_invariants_run_on_the_event_engine() {
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(Partition::even(10, 2), Algorithm::LocalCoin)
                .proposals_split(5)
                .observer(checker.clone())
                .seed(11)
                .event_driven(),
        );
        assert!(out.all_correct_decided);
        checker.assert_clean();
        assert_eq!(checker.decisions().len(), 10);
    }

    #[test]
    fn quick_scale_run_decides_in_round_one() {
        // A miniature of the escale workload: unanimous proposals,
        // constant delay, zero send cost (so broadcasts batch), hundreds
        // of processes in one fast single-threaded run.
        use ofa_scenario::CostModel;
        let n = 400;
        let out = Sim.run(
            &Scenario::new(Partition::even(n, 8), Algorithm::LocalCoin)
                .proposals_all(Bit::One)
                .delay(DelayModel::Constant(1_000))
                .costs(CostModel {
                    send_cost: 0,
                    recv_cost: 1,
                    sm_op_cost: 10,
                    coin_cost: 1,
                })
                .max_events(u64::MAX)
                .seed(7)
                .event_driven(),
        );
        assert!(out.all_correct_decided);
        assert_eq!(out.deciders(), n);
        assert_eq!(out.max_decision_round, 1, "unanimity decides in round 1");
        assert_eq!(
            out.counters.messages_sent,
            3 * (n as u64) * (n as u64),
            "two phase broadcasts plus one decide broadcast per process"
        );
    }
}
