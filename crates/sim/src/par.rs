//! The parallel event engine: the event-driven engine sharded by cluster.
//!
//! The single-threaded engine (`engine.rs`) dispatches machine steps off
//! one global heap; its ceiling is one core. This engine exploits the
//! paper's own structure to go wider: **clusters are natural shards**.
//! Intra-cluster traffic is shared memory (`MEM_x` never crosses a
//! cluster boundary) and every remaining interaction is a scheduled
//! message delivery — so each shard owns a subset of the clusters (their
//! machines, their `ClusterMemory`, and a local scheduler heap) and
//! shards only interact through cross-shard deliveries exchanged at
//! deterministic virtual-time **epoch barriers**.
//!
//! # Why the runs are bit-for-bit reproducible
//!
//! Everything order-sensitive in a run was made a *pure function of the
//! scenario* in this engine's companion refactor:
//!
//! * **Delays, loss, and duplication** come from the compiled
//!   [`ofa_scenario::NetworkModel`] ([`NetIndex`]), keyed by
//!   `(seed, sender, destination, sender-counter)` — no shared RNG
//!   stream to race on, and message fates resolve identically wherever
//!   they are evaluated.
//! * **Tie-breaks** come from the deterministic
//!   [`EventKey`](crate::conductor) total order — no registration
//!   sequence numbers.
//! * **The trace hash** is a multiset hash, so per-shard recorders merge
//!   into exactly the value one global recorder would produce.
//!
//! Each shard pops its local events in `(time, key)` order, which equals
//! the single-threaded engine's global dispatch order *restricted to the
//! shard*; since same-epoch events on different shards touch disjoint
//! state (machines and memories are shard-owned; the conservative
//! lookahead below keeps their messages out of the current epoch), the
//! parallel execution computes the identical run — same decisions,
//! halts, counters, event counts, end time, and shard-merged trace hash
//! — for any seed and **any worker count**. `tests/engine_equivalence.rs`
//! asserts this across the whole corpus.
//!
//! # The epoch barrier
//!
//! Every message takes at least [`NetIndex::min_delay`] ticks, so an
//! event processed at virtual time `t` can only schedule deliveries at
//! `t + min_delay` or later (send timestamps never precede the event
//! being dispatched). With the epoch `[T, T + min_delay)`, the event set
//! of the epoch is therefore *closed* at the barrier: nothing processed
//! inside it — on any shard — can add to it. The coordinator picks
//! `T` = earliest pending event anywhere, shards process their slice of
//! the epoch in parallel, cross-shard sends are routed at the barrier,
//! and the cycle repeats. Uniform broadcasts stay batched end to end:
//! one descriptor per *shard* (not per destination) crosses the barrier,
//! and each shard expands it lazily over its own members, preserving the
//! O(n)-heap-residency property of the single-threaded engine.
//!
//! The event budget (`Scenario::max_events`) keeps its exact sequential
//! semantics: when an epoch would overrun the budget, the shards report
//! their event keys and the coordinator cuts the epoch at the globally
//! `remaining`-th event in `(time, key)` order — the same prefix the
//! single-threaded engine would have processed.
//!
//! Observers are supported (they are `Send + Sync` by contract) and see
//! a deterministic event subsequence *per process*, but the global
//! interleaving of callbacks across shards is real-time concurrent —
//! the one observable this engine does not linearize. Order-sensitive
//! observers belong on a sequential engine; see the
//! [`Engine`](ofa_scenario::Engine) docs.

use crate::checkpoint::{CanonEvent, EngineSnap, ProcSnap};
use crate::conductor::{rejoin_coin_seed, EventKey, Keyed, RawOutcome, RunSpec, SendCounters};
use crate::engine::{Input, LegResult, Machine, ProcState};
use ofa_core::sm::{OutItem, Progress, SmTopology};
use ofa_core::{Bit, Decision, Halt, Msg, MsgKind};
use ofa_metrics::{CounterSnapshot, ServiceStats};
use ofa_scenario::{Body, CrashTrigger, Fate, NetIndex, TraceEvent, TraceRecorder, VirtualTime};
use ofa_sharedmem::MemoryBank;
use ofa_topology::ProcessId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{mpsc, Arc};

/// A cross-shard delivery descriptor, shipped at an epoch barrier. The
/// sending shard has already fixed the delivery time and ordering key
/// (both are sender-local computations); the receiving shard just
/// enqueues.
enum Shipped {
    /// One point-to-point delivery.
    One {
        from: u32,
        to: u32,
        k: u64,
        at: u64,
        msg: MsgKind,
    },
    /// A uniform broadcast: the receiving shard expands it over its own
    /// members (destination `g` holds sender-counter `k0 + g`).
    Broadcast {
        from: u32,
        k0: u64,
        at: u64,
        msg: MsgKind,
    },
}

/// What a shard-heap slot holds.
#[derive(Debug)]
enum SPending {
    Deliver { to: u32, from: u32, msg: MsgKind },
    Broadcast { from: u32, k0: u64, msg: MsgKind },
    Crash { pid: u32 },
    Rejoin { pid: u32 },
}

/// A shard-heap slot: the sequential scheduler's earliest-first
/// ordering ([`Keyed`]) over shard-local pending events.
type SEntry = Keyed<SPending>;

/// One empty barrier buffer per destination shard (`Shipped` is not
/// `Clone`, so `vec![...; n]` is unavailable).
fn fresh_buffers(shards: usize) -> Vec<Vec<Shipped>> {
    let mut v = Vec::with_capacity(shards);
    v.resize_with(shards, Vec::new);
    v
}

/// Commands the coordinator sends a shard, one epoch phase each.
enum Cmd {
    /// Enqueue barrier-routed deliveries, then pop every local event
    /// with `at < t_end` into the epoch batch; reply [`Reply::Prepared`].
    Prepare { incoming: Vec<Shipped>, t_end: u64 },
    /// Report the epoch batch's event keys (budget-cut epochs only).
    Keys,
    /// Process the first `limit` events of the epoch batch; reply
    /// [`Reply::Ran`].
    Run { limit: u64 },
    /// Halt stragglers and report results; reply [`Reply::Finished`].
    Finish,
    /// Capture the shard's full state for a pause-time checkpoint and
    /// terminate; reply [`Reply::Checkpointed`].
    Checkpoint,
}

/// One shard's post-step report: barrier-bound sends plus progress.
struct StepReport {
    shard: usize,
    /// Outgoing deliveries, indexed by destination shard.
    outgoing: Vec<Vec<Shipped>>,
    processed: u64,
    end_time: u64,
    /// Earliest event still pending on the local heap.
    next_at: Option<u64>,
}

/// A shard's final report.
struct ShardResult {
    /// `(global process index, result, final clock)` per member.
    results: Vec<(u32, Result<Decision, Halt>, u64)>,
    counters: Vec<(u32, CounterSnapshot)>,
    /// This shard's members' client-service statistics, pre-merged (the
    /// run-wide merge is order-independent, so shard totals compose).
    service: ServiceStats,
    trace: TraceRecorder,
}

/// One shard's contribution to a pause-time checkpoint: its slice of the
/// canonical [`EngineSnap`], keyed by global process index so the
/// coordinator can merge slices into the engine-independent whole.
struct ShardSnap {
    /// `(global index, machine snapshot)` per member; `Null` for
    /// finished processes.
    machines: Vec<(u32, serde::Value)>,
    /// `(global index, process accounting)` per member.
    procs: Vec<(u32, ProcSnap)>,
    /// This shard's per-sender counter vector. Only members' entries
    /// ever advance here, so merging shards element-wise by `max`
    /// reconstructs the global vector.
    counters: Vec<u64>,
    /// Pending deliveries on the local heap (timed crashes excluded;
    /// broadcast descriptors are per-shard copies the coordinator
    /// dedupes).
    events: Vec<CanonEvent>,
    /// The shard recorder's multiset hash and record count.
    trace_hash: u64,
    trace_count: u64,
}

enum Reply {
    Started(StepReport),
    Prepared {
        batch: u64,
    },
    Keys {
        shard: usize,
        keys: Vec<(u64, EventKey)>,
    },
    Ran(StepReport),
    Finished(Box<ShardResult>),
    Checkpointed(Box<ShardSnap>),
}

/// Everything one shard owns.
struct ShardState {
    id: usize,
    n: usize,
    /// This shard's processes, ascending global index.
    members: Vec<u32>,
    /// Global process index → owning shard.
    owner: Arc<Vec<u32>>,
    /// Global process index → local index within its owner.
    local_of: Arc<Vec<u32>>,
    machines: Vec<Machine>,
    procs: Vec<ProcState>,
    topo: Arc<SmTopology>,
    memory: MemoryBank,
    costs: ofa_scenario::CostModel,
    common_coin: Arc<dyn ofa_coins::CommonCoin>,
    observer: Option<Arc<dyn ofa_core::Observer>>,
    trace: TraceRecorder,
    heap: BinaryHeap<SEntry>,
    counters: SendCounters,
    net: NetIndex,
    seed: u64,
    // Rejoin inputs: a churned member restarts from its original
    // proposal with a freshly built machine.
    body: Body,
    proposals: Vec<Bit>,
    config: ofa_core::ProtocolConfig,
    /// The current epoch's events, in `(time, key)` order.
    epoch: Vec<SEntry>,
    /// Barrier-bound sends, indexed by destination shard.
    outgoing: Vec<Vec<Shipped>>,
    end_time: u64,
    /// `true` when restored from a checkpoint: machines already took
    /// their initial steps in the original leg, so `start` skips them.
    resumed: bool,
}

impl ShardState {
    /// Routes one outbox item: delays and keys are computed here, on the
    /// sender's shard (they are functions of the sender's local history),
    /// then the delivery goes to the local heap or a barrier buffer.
    fn route(&mut self, from: ProcessId, item: OutItem) {
        match item {
            OutItem::One(o) => {
                let k = self.counters.take(from, 1);
                match self.net.fate_of(self.seed, from, o.to, k) {
                    // Lost messages consume the counter but route nothing.
                    Fate::Lost => {}
                    fate => {
                        let at = o.sent_at + self.net.delay_of(self.seed, from, o.to, k);
                        self.route_one(from, o.to, k, at, o.msg);
                        if fate == Fate::Dup {
                            // The copy shares the key (same at2 on every
                            // engine: the extra delay is a fresh sample of
                            // the link class, so it is >= the lookahead).
                            let at2 = at + self.net.dup_extra_of(self.seed, from, o.to, k);
                            self.route_one(from, o.to, k, at2, o.msg);
                        }
                    }
                }
            }
            OutItem::Broadcast { msg, sent_at } => {
                if let Some(d) = self.net.constant_broadcast_delay() {
                    // Batched end to end: one local heap entry plus one
                    // descriptor per *other shard*. Per-destination fates
                    // resolve lazily wherever the descriptor expands.
                    let at = sent_at + d;
                    let k0 = self.counters.take(from, self.n as u64);
                    let from_u = from.index() as u32;
                    for (s, buf) in self.outgoing.iter_mut().enumerate() {
                        if s != self.id {
                            buf.push(Shipped::Broadcast {
                                from: from_u,
                                k0,
                                at,
                                msg,
                            });
                        }
                    }
                    self.heap.push(Keyed {
                        at,
                        key: EventKey::deliver(from, k0, ProcessId(0)),
                        ev: SPending::Broadcast {
                            from: from_u,
                            k0,
                            msg,
                        },
                    });
                } else {
                    for j in 0..self.n {
                        let to = ProcessId(j);
                        let k = self.counters.take(from, 1);
                        match self.net.fate_of(self.seed, from, to, k) {
                            Fate::Lost => {}
                            fate => {
                                let at = sent_at + self.net.delay_of(self.seed, from, to, k);
                                self.route_one(from, to, k, at, msg);
                                if fate == Fate::Dup {
                                    let at2 = at + self.net.dup_extra_of(self.seed, from, to, k);
                                    self.route_one(from, to, k, at2, msg);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// How many of this shard's members a batched broadcast actually
    /// reaches (its non-lost destinations here). With loss disabled this
    /// is every member, without sampling.
    fn shard_survivors(&self, from: u32, k0: u64) -> u64 {
        if self.net.loss_ppm() == 0 {
            return self.members.len() as u64;
        }
        let from = ProcessId(from as usize);
        self.members
            .iter()
            .filter(|&&g| {
                self.net
                    .fate_of(self.seed, from, ProcessId(g as usize), k0 + u64::from(g))
                    != Fate::Lost
            })
            .count() as u64
    }

    fn route_one(&mut self, from: ProcessId, to: ProcessId, k: u64, at: u64, msg: MsgKind) {
        let (from_u, to_u) = (from.index() as u32, to.index() as u32);
        let dest = self.owner[to.index()] as usize;
        if dest == self.id {
            self.heap.push(Keyed {
                at,
                key: EventKey::deliver(from, k, to),
                ev: SPending::Deliver {
                    to: to_u,
                    from: from_u,
                    msg,
                },
            });
        } else {
            self.outgoing[dest].push(Shipped::One {
                from: from_u,
                to: to_u,
                k,
                at,
                msg,
            });
        }
    }

    /// One machine step plus send routing — the shard-local version of
    /// the single-threaded engine's `dispatch`.
    fn dispatch(&mut self, li: usize, input: Input) {
        let me = ProcessId(self.members[li] as usize);
        let mut ctx = self.procs[li].ctx(
            me,
            self.costs,
            self.memory.memory_of(self.topo.partition(), me),
            self.common_coin.as_ref(),
            self.observer.as_deref(),
            &mut self.trace,
        );
        let sm = &mut self.machines[li];
        let progress = match input {
            Input::Start => sm.start(&mut ctx),
            Input::Deliver(msg) => sm.on_msg(msg, &mut ctx),
            Input::End(halt) => sm.halt(halt, &mut ctx),
        };
        match progress {
            Progress::NeedMsg => {}
            Progress::Sent(mut outbox) => {
                self.drain(me, &mut outbox);
                self.machines[li].recycle_outbox(outbox);
            }
            Progress::Decided(decision, mut outbox) => {
                self.drain(me, &mut outbox);
                self.finish(li, Ok(decision));
            }
            Progress::Halted(halt, mut outbox) => {
                self.drain(me, &mut outbox);
                self.finish(li, Err(halt));
            }
        }
    }

    fn drain(&mut self, from: ProcessId, outbox: &mut Vec<OutItem>) {
        for item in outbox.drain(..) {
            self.route(from, item);
        }
    }

    fn finish(&mut self, li: usize, result: Result<Decision, Halt>) {
        let who = ProcessId(self.members[li] as usize);
        self.procs[li].finish(who, result, &mut self.trace);
    }

    /// Delivers one event to a local process — identical accounting to
    /// the single-threaded engine's main loop.
    fn deliver(&mut self, to: u32, from: u32, msg: MsgKind, at: u64) {
        let li = self.local_of[to as usize] as usize;
        if self.procs[li].finished.is_some() {
            return; // dropped on the floor (still counted by the caller)
        }
        let (who, from) = (ProcessId(to as usize), ProcessId(from as usize));
        self.trace.record(
            VirtualTime::from_ticks(at),
            TraceEvent::Deliver { who, from, msg },
        );
        self.procs[li].on_delivered(at, self.costs.recv_cost);
        self.dispatch(li, Input::Deliver(Msg { from, kind: msg }));
    }

    fn crash(&mut self, pid: u32, at: u64) {
        let li = self.local_of[pid as usize] as usize;
        if self.procs[li].finished.is_some() {
            return;
        }
        let who = ProcessId(pid as usize);
        self.trace
            .record(VirtualTime::from_ticks(at), TraceEvent::Crash { who });
        self.procs[li].on_crash_event(at);
        self.dispatch(li, Input::End(Halt::Crashed));
    }

    /// Restarts a churned member — identical to the sequential engines:
    /// fresh machine (fresh mailbox, original proposal), reset runtime
    /// state, rejoin-domain coin stream; metric counters persist.
    fn rejoin(&mut self, pid: u32, at: u64) {
        let li = self.local_of[pid as usize] as usize;
        // A process that decided before its scheduled leave ignored the
        // leave; it ignores the rejoin too.
        if !matches!(self.procs[li].finished, Some((Err(Halt::Crashed), _))) {
            return;
        }
        let who = ProcessId(pid as usize);
        self.trace
            .record(VirtualTime::from_ticks(at), TraceEvent::Rejoin { who });
        // Only churn-planned processes rejoin; those never serve traffic.
        self.machines[li] = Machine::build(
            &self.body,
            pid as usize,
            &self.topo,
            &self.proposals,
            self.config,
            self.seed,
            false,
        );
        self.procs[li].rejoin(rejoin_coin_seed(self.seed), who, at);
        self.dispatch(li, Input::Start);
    }

    /// Initial steps for the shard's processes, ascending — the global
    /// start order restricted to this shard. A resumed shard skips the
    /// dispatches (they happened in the original leg) but still reports,
    /// so the coordinator learns the restored heap's earliest event.
    fn start(&mut self) -> StepReport {
        if !self.resumed {
            for li in 0..self.machines.len() {
                self.dispatch(li, Input::Start);
            }
        }
        self.report(0)
    }

    /// Pops every local event with `at < t_end` into the epoch batch;
    /// returns the batch's event count (broadcast entries count one per
    /// local member).
    fn collect(&mut self, t_end: u64) -> u64 {
        debug_assert!(self.epoch.is_empty(), "epoch batch must be consumed");
        let mut count = 0;
        while let Some(top) = self.heap.peek() {
            if top.at >= t_end {
                break;
            }
            let e = self.heap.pop().expect("peeked");
            count += match e.ev {
                // A batched broadcast delivers only to its non-lost
                // members — lost destinations are never events, matching
                // the sequential scheduler's survivor-only expansion.
                SPending::Broadcast { from, k0, .. } => self.shard_survivors(from, k0),
                _ => 1,
            };
            self.epoch.push(e);
        }
        count
    }

    /// The epoch batch's `(time, key)` pairs, in processing order — only
    /// materialized for the one epoch where the event budget binds.
    fn keys(&self) -> Vec<(u64, EventKey)> {
        let mut keys = Vec::new();
        for e in &self.epoch {
            match e.ev {
                SPending::Broadcast { from, k0, .. } => {
                    let from = ProcessId(from as usize);
                    keys.extend(self.members.iter().filter_map(|&g| {
                        let k = k0 + u64::from(g);
                        let to = ProcessId(g as usize);
                        // Lost destinations are not events; only the
                        // surviving expansions compete for the budget.
                        (self.net.fate_of(self.seed, from, to, k) != Fate::Lost)
                            .then(|| (e.at, EventKey::deliver(from, k, to)))
                    }));
                }
                _ => keys.push((e.at, e.key)),
            }
        }
        keys
    }

    /// Processes the first `limit` events of the epoch batch (count and
    /// `end_time` advance for every event, exactly like the sequential
    /// main loop — including deliveries to already-finished processes).
    fn run_epoch(&mut self, limit: u64) -> StepReport {
        let mut processed: u64 = 0;
        let epoch = std::mem::take(&mut self.epoch);
        'events: for e in epoch {
            match e.ev {
                SPending::Deliver { to, from, msg } => {
                    if processed == limit {
                        break 'events;
                    }
                    processed += 1;
                    self.end_time = self.end_time.max(e.at);
                    self.deliver(to, from, msg, e.at);
                }
                SPending::Crash { pid } => {
                    if processed == limit {
                        break 'events;
                    }
                    processed += 1;
                    self.end_time = self.end_time.max(e.at);
                    self.crash(pid, e.at);
                }
                SPending::Rejoin { pid } => {
                    if processed == limit {
                        break 'events;
                    }
                    processed += 1;
                    self.end_time = self.end_time.max(e.at);
                    self.rejoin(pid, e.at);
                }
                SPending::Broadcast { from, k0, msg } => {
                    let from_p = ProcessId(from as usize);
                    for mi in 0..self.members.len() {
                        let g = self.members[mi];
                        let k = k0 + u64::from(g);
                        let to = ProcessId(g as usize);
                        let fate = self.net.fate_of(self.seed, from_p, to, k);
                        if fate == Fate::Lost {
                            // Not an event: uncounted, no budget consumed.
                            continue;
                        }
                        if processed == limit {
                            break 'events;
                        }
                        processed += 1;
                        self.end_time = self.end_time.max(e.at);
                        if fate == Fate::Dup {
                            // Same copy the sequential scheduler pushes
                            // when it expands this destination: key
                            // reused, fresh link-class extra delay (>=
                            // the lookahead, so it lands in a later
                            // epoch's collection window).
                            let at2 = e.at + self.net.dup_extra_of(self.seed, from_p, to, k);
                            self.heap.push(Keyed {
                                at: at2,
                                key: EventKey::deliver(from_p, k, to),
                                ev: SPending::Deliver { to: g, from, msg },
                            });
                        }
                        self.deliver(g, from, msg, e.at);
                    }
                }
            }
        }
        self.report(processed)
    }

    fn report(&mut self, processed: u64) -> StepReport {
        let shards = self.outgoing.len();
        StepReport {
            shard: self.id,
            outgoing: std::mem::replace(&mut self.outgoing, fresh_buffers(shards)),
            processed,
            end_time: self.end_time,
            next_at: self.heap.peek().map(|e| e.at),
        }
    }

    fn accept(&mut self, incoming: Vec<Shipped>) {
        for s in incoming {
            match s {
                Shipped::One {
                    from,
                    to,
                    k,
                    at,
                    msg,
                } => self.heap.push(Keyed {
                    at,
                    key: EventKey::deliver(ProcessId(from as usize), k, ProcessId(to as usize)),
                    ev: SPending::Deliver { to, from, msg },
                }),
                Shipped::Broadcast { from, k0, at, msg } => self.heap.push(Keyed {
                    at,
                    key: EventKey::deliver(ProcessId(from as usize), k0, ProcessId(0)),
                    ev: SPending::Broadcast { from, k0, msg },
                }),
            }
        }
    }

    /// Captures this shard's slice of a pause-time checkpoint. The
    /// coordinator only asks at an epoch barrier, so the epoch batch and
    /// barrier buffers are empty and every pending event sits on the
    /// local heap.
    fn checkpoint(self) -> Box<ShardSnap> {
        debug_assert!(self.epoch.is_empty(), "checkpoint mid-epoch");
        debug_assert!(
            self.outgoing.iter().all(Vec::is_empty),
            "checkpoint with unrouted barrier sends"
        );
        let machines = self
            .members
            .iter()
            .zip(self.machines.iter().zip(self.procs.iter()))
            .map(|(&g, (m, p))| {
                let v = if p.finished.is_some() {
                    serde::Value::Null
                } else {
                    m.snapshot()
                };
                (g, v)
            })
            .collect();
        let procs = self
            .members
            .iter()
            .zip(self.procs.iter())
            .map(|(&g, p)| (g, p.snapshot()))
            .collect();
        let events = self
            .heap
            .iter()
            .filter_map(|e| match e.ev {
                SPending::Deliver { to, from, msg } => Some(CanonEvent::One {
                    at: e.at,
                    from,
                    k: e.key.k,
                    to,
                    msg,
                }),
                // A descriptor none of whose local members survive is
                // omitted: the sequential scheduler only enqueues (and so
                // only checkpoints) broadcasts with at least one
                // survivor, and some owning shard exports the rest.
                SPending::Broadcast { from, k0, msg } => (self.shard_survivors(from, k0) > 0)
                    .then_some(CanonEvent::Broadcast {
                        at: e.at,
                        from,
                        k0,
                        msg,
                    }),
                SPending::Crash { .. } | SPending::Rejoin { .. } => None,
            })
            .collect();
        Box::new(ShardSnap {
            machines,
            procs,
            counters: self.counters.values().to_vec(),
            events,
            trace_hash: self.trace.hash(),
            trace_count: self.trace.count(),
        })
    }

    /// Stops the stragglers (ascending member order — the global final
    /// baton round restricted to this shard) and packages the results.
    fn finish_run(mut self) -> Box<ShardResult> {
        for li in 0..self.machines.len() {
            if self.procs[li].finished.is_none() {
                self.dispatch(li, Input::End(Halt::Stopped));
            }
        }
        let results = self
            .members
            .iter()
            .zip(self.procs.iter_mut())
            .map(|(&g, p)| {
                let (res, clock) = p.finished.take().expect("all machines have terminated");
                (g, res, clock)
            })
            .collect();
        let counters = self
            .members
            .iter()
            .zip(self.procs.iter())
            .map(|(&g, p)| (g, p.counters))
            .collect();
        let mut service = ServiceStats::new();
        for p in &self.procs {
            service.merge(&p.service);
        }
        Box::new(ShardResult {
            results,
            counters,
            service,
            trace: self.trace,
        })
    }
}

/// The shard worker loop: one reply per command, in lockstep with the
/// coordinator's epoch phases.
fn shard_main(mut st: ShardState, rx: mpsc::Receiver<Cmd>, tx: mpsc::Sender<Reply>) {
    if tx.send(Reply::Started(st.start())).is_err() {
        return;
    }
    for cmd in rx {
        let reply = match cmd {
            Cmd::Prepare { incoming, t_end } => {
                st.accept(incoming);
                Reply::Prepared {
                    batch: st.collect(t_end),
                }
            }
            Cmd::Keys => Reply::Keys {
                shard: st.id,
                keys: st.keys(),
            },
            Cmd::Run { limit } => Reply::Ran(st.run_epoch(limit)),
            Cmd::Finish => {
                let _ = tx.send(Reply::Finished(st.finish_run()));
                return;
            }
            Cmd::Checkpoint => {
                let _ = tx.send(Reply::Checkpointed(st.checkpoint()));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// Deterministic balanced cluster→shard assignment: clusters sorted by
/// size (largest first, index as tie-break) go to the currently lightest
/// shard. Any clustering-respecting assignment yields the same run — the
/// balance only matters for wall-clock.
fn assign_clusters(sizes: &[usize], shards: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&c| (Reverse(sizes[c]), c));
    let mut shard_of = vec![0usize; sizes.len()];
    let mut load = vec![0usize; shards];
    for c in order {
        let s = (0..shards)
            .min_by_key(|&s| (load[s], s))
            .expect(">0 shards");
        shard_of[c] = s;
        load[s] += sizes[c];
    }
    shard_of
}

/// Runs a spec on the parallel event engine with `workers` shards.
///
/// The caller (the backend's engine resolution) guarantees a declarative
/// body, `workers >= 2` after capping by the cluster count, a non-zero
/// [`NetIndex::min_delay`] lookahead, and no trace retention.
pub(crate) fn conduct_parallel(spec: RunSpec, net: &NetIndex, workers: usize) -> RawOutcome {
    match conduct_parallel_leg(spec, net, workers, None, None) {
        LegResult::Done(out) => out,
        LegResult::Paused(_) => unreachable!("no cut was requested"),
    }
}

/// Runs one *leg* on the parallel engine: optionally restored from a
/// canonical checkpoint, optionally pausing at a virtual-time cut.
///
/// Pausing composes with the epoch barrier: the epoch window is clamped
/// to `[t0, min(t0 + lookahead, stop_at))`, so no shard ever processes
/// an event at or beyond the cut, and the pause lands on a barrier where
/// the epoch batches and barrier buffers are empty — every pending event
/// sits on some shard's heap, ready to export. The captured
/// [`EngineSnap`] is the same canonical form the sequential engine
/// writes, so legs can hop between engines and worker counts freely.
pub(crate) fn conduct_parallel_leg(
    spec: RunSpec,
    net: &NetIndex,
    workers: usize,
    resume: Option<&EngineSnap>,
    stop_at: Option<u64>,
) -> LegResult {
    let n = spec.partition.n();
    assert_eq!(
        spec.proposals.len(),
        n,
        "need one proposal per process (got {} for n={n})",
        spec.proposals.len()
    );
    let lookahead = net.min_delay();
    assert!(lookahead > 0, "parallel engine needs a positive lookahead");
    let shards = workers.clamp(1, spec.partition.m());

    // Shard layout: clusters → shards, then the per-shard member lists.
    let shard_of_cluster = assign_clusters(&spec.partition.sizes(), shards);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
    let mut owner = vec![0u32; n];
    let mut local_of = vec![0u32; n];
    for i in 0..n {
        let s = shard_of_cluster[spec.partition.cluster_of(ProcessId(i)).index()];
        owner[i] = s as u32;
        local_of[i] = members[s].len() as u32;
        members[s].push(i as u32);
    }
    let owner = Arc::new(owner);
    let local_of = Arc::new(local_of);
    let topo = Arc::new(SmTopology::new(spec.partition.clone()));
    // One bank shared by every shard: memories are per cluster and each
    // cluster belongs to exactly one shard, so there is no contention —
    // and the run-wide totals fall out at the end.
    let bank = match resume {
        None => MemoryBank::for_partition(topo.partition()),
        Some(snap) => MemoryBank::restore(&snap.memory),
    };

    let mut final_results: Vec<Option<(Result<Decision, Halt>, u64)>> = Vec::new();
    final_results.resize_with(n, || None);
    let mut final_counters = vec![CounterSnapshot::default(); n];
    let mut final_service = ServiceStats::new();
    let mut trace = match resume {
        None => TraceRecorder::new(false),
        Some(snap) => TraceRecorder::resume(snap.trace_hash, snap.trace_count),
    };
    let mut events_processed: u64 = resume.map_or(0, |s| s.events_processed);
    let mut end_time: u64 = resume.map_or(0, |s| s.end_time);
    let mut paused: Option<EngineSnap> = None;

    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let mut cmds: Vec<mpsc::Sender<Cmd>> = Vec::with_capacity(shards);
        let spec_ref = &spec;
        for (id, members) in members.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            cmds.push(cmd_tx);
            let reply_tx = reply_tx.clone();
            let (topo, owner, local_of) =
                (Arc::clone(&topo), Arc::clone(&owner), Arc::clone(&local_of));
            let (bank, net) = (bank.clone(), net.clone());
            scope.spawn(move || {
                let mut st = ShardState {
                    id,
                    n,
                    machines: members
                        .iter()
                        .map(|&g| {
                            let serves = spec_ref.churn.event(ProcessId(g as usize)).is_none();
                            match resume {
                                None => Machine::build(
                                    &spec_ref.body,
                                    g as usize,
                                    &topo,
                                    &spec_ref.proposals,
                                    spec_ref.config,
                                    spec_ref.seed,
                                    serves,
                                ),
                                Some(snap) => match &snap.machines[g as usize] {
                                    // Finished processes are never dispatched
                                    // again; a fresh machine is a placeholder.
                                    serde::Value::Null => Machine::build(
                                        &spec_ref.body,
                                        g as usize,
                                        &topo,
                                        &spec_ref.proposals,
                                        spec_ref.config,
                                        spec_ref.seed,
                                        serves,
                                    ),
                                    v => Machine::from_snapshot(
                                        &spec_ref.body,
                                        g as usize,
                                        &topo,
                                        spec_ref.config,
                                        spec_ref.seed,
                                        serves,
                                        v,
                                    )
                                    .expect("resume: machine snapshot decodes"),
                                },
                            }
                        })
                        .collect(),
                    procs: members
                        .iter()
                        .map(|&g| match resume {
                            None => ProcState::for_process(
                                spec_ref.seed,
                                ProcessId(g as usize),
                                &spec_ref.crash_plan,
                            ),
                            Some(snap) => ProcState::restore(
                                &snap.procs[g as usize],
                                ProcessId(g as usize),
                                &spec_ref.crash_plan,
                            ),
                        })
                        .collect(),
                    members,
                    owner,
                    local_of,
                    topo,
                    memory: bank,
                    costs: spec_ref.costs,
                    common_coin: Arc::clone(&spec_ref.common_coin),
                    observer: spec_ref.observer.clone(),
                    trace: TraceRecorder::new(false),
                    heap: BinaryHeap::new(),
                    counters: match resume {
                        None => SendCounters::default(),
                        // Every shard gets the full counter vector; only
                        // its members' entries advance here.
                        Some(snap) => SendCounters::from_values(snap.send_counters.clone()),
                    },
                    net,
                    seed: spec_ref.seed,
                    body: spec_ref.body.clone(),
                    proposals: spec_ref.proposals.clone(),
                    config: spec_ref.config,
                    epoch: Vec::new(),
                    outgoing: fresh_buffers(shards),
                    end_time: 0,
                    resumed: resume.is_some(),
                };
                if let Some(snap) = resume {
                    // Checkpointed deliveries re-enter under their
                    // captured keys and times: point-to-point events go
                    // to the destination's owner shard; each broadcast
                    // descriptor is replicated to every shard (each
                    // expands it over its own members, as during a run).
                    for ev in &snap.events {
                        match *ev {
                            CanonEvent::One {
                                at,
                                from,
                                k,
                                to,
                                msg,
                            } => {
                                if st.owner[to as usize] as usize == id {
                                    st.heap.push(Keyed {
                                        at,
                                        key: EventKey::deliver(
                                            ProcessId(from as usize),
                                            k,
                                            ProcessId(to as usize),
                                        ),
                                        ev: SPending::Deliver { to, from, msg },
                                    });
                                }
                            }
                            CanonEvent::Broadcast { at, from, k0, msg } => {
                                st.heap.push(Keyed {
                                    at,
                                    key: EventKey::deliver(
                                        ProcessId(from as usize),
                                        k0,
                                        ProcessId(0),
                                    ),
                                    ev: SPending::Broadcast { from, k0, msg },
                                });
                            }
                        }
                    }
                }
                // This shard's timed crashes go straight onto its heap;
                // on resume only the cut's future is re-seeded (from the
                // resume plan — a diverged tail swaps the pattern here).
                let seeded_from = resume.map_or(0, |s| s.at);
                for (pid, trig) in spec_ref.crash_plan.iter() {
                    if st.owner[pid.index()] as usize == id {
                        if let CrashTrigger::AtTime(t) = trig {
                            if t.ticks() >= seeded_from {
                                st.heap.push(Keyed {
                                    at: t.ticks(),
                                    key: EventKey::crash(pid),
                                    ev: SPending::Crash {
                                        pid: pid.index() as u32,
                                    },
                                });
                            }
                        }
                    }
                }
                // Churn leaves are crashes; rejoins restart the member.
                // Same re-seeding rule on resume — a rejoin after the
                // cut fires even when its leave is already history.
                for (pid, e) in spec_ref.churn.iter() {
                    if st.owner[pid.index()] as usize == id {
                        if e.leave.ticks() >= seeded_from {
                            st.heap.push(Keyed {
                                at: e.leave.ticks(),
                                key: EventKey::crash(pid),
                                ev: SPending::Crash {
                                    pid: pid.index() as u32,
                                },
                            });
                        }
                        if let Some(r) = e.rejoin {
                            if r.ticks() >= seeded_from {
                                st.heap.push(Keyed {
                                    at: r.ticks(),
                                    key: EventKey::rejoin(pid),
                                    ev: SPending::Rejoin {
                                        pid: pid.index() as u32,
                                    },
                                });
                            }
                        }
                    }
                }
                shard_main(st, cmd_rx, reply_tx);
            });
        }
        drop(reply_tx);

        // Per-shard coordinator state.
        let mut pending_in: Vec<Vec<Shipped>> = Vec::new();
        pending_in.resize_with(shards, Vec::new);
        let mut next_at: Vec<Option<u64>> = vec![None; shards];

        let absorb = |rep: StepReport,
                      pending_in: &mut Vec<Vec<Shipped>>,
                      next_at: &mut Vec<Option<u64>>,
                      events_processed: &mut u64,
                      end_time: &mut u64| {
            for (dest, batch) in rep.outgoing.into_iter().enumerate() {
                pending_in[dest].extend(batch);
            }
            next_at[rep.shard] = rep.next_at;
            *events_processed += rep.processed;
            *end_time = (*end_time).max(rep.end_time);
        };

        for _ in 0..shards {
            match reply_rx.recv().expect("shard alive") {
                Reply::Started(rep) => absorb(
                    rep,
                    &mut pending_in,
                    &mut next_at,
                    &mut events_processed,
                    &mut end_time,
                ),
                _ => unreachable!("first reply is Started"),
            }
        }

        // Epoch loop.
        while events_processed < spec.max_events {
            // Earliest pending event anywhere: local heaps or the
            // barrier buffers about to be routed.
            let t_next = next_at
                .iter()
                .flatten()
                .copied()
                .chain(pending_in.iter().flatten().map(|s| match s {
                    Shipped::One { at, .. } | Shipped::Broadcast { at, .. } => *at,
                }))
                .min();
            let Some(t0) = t_next else {
                break; // quiescent
            };
            if let Some(cutoff) = stop_at {
                if t0 >= cutoff {
                    // Pause at this barrier: every pending event is at
                    // `>= cutoff`, none has been processed. Route the
                    // barrier buffers onto the heaps (an empty epoch —
                    // `t_end: 0` collects nothing), then drain each
                    // shard's state into the canonical snapshot.
                    for (s, cmd) in cmds.iter().enumerate() {
                        let incoming = std::mem::take(&mut pending_in[s]);
                        cmd.send(Cmd::Prepare { incoming, t_end: 0 })
                            .expect("shard");
                    }
                    for _ in 0..shards {
                        match reply_rx.recv().expect("shard alive") {
                            Reply::Prepared { batch } => {
                                debug_assert_eq!(batch, 0, "pause epoch collects nothing")
                            }
                            _ => unreachable!("pause phase: Prepared"),
                        }
                    }
                    for cmd in &cmds {
                        cmd.send(Cmd::Checkpoint).expect("shard");
                    }
                    let mut machines: Vec<serde::Value> = vec![serde::Value::Null; n];
                    let mut procs: Vec<Option<ProcSnap>> = vec![None; n];
                    let mut send_counters = vec![0u64; n];
                    let mut events: Vec<CanonEvent> = Vec::new();
                    for _ in 0..shards {
                        match reply_rx.recv().expect("shard alive") {
                            Reply::Checkpointed(ss) => {
                                for (g, m) in ss.machines {
                                    machines[g as usize] = m;
                                }
                                for (g, p) in ss.procs {
                                    procs[g as usize] = Some(p);
                                }
                                // Each sender's counter advances only on
                                // its owner shard: element-wise max over
                                // the shards' vectors is the global one.
                                for (i, c) in ss.counters.into_iter().enumerate() {
                                    if i < n {
                                        send_counters[i] = send_counters[i].max(c);
                                    }
                                }
                                events.extend(ss.events);
                                trace.merge(TraceRecorder::resume(ss.trace_hash, ss.trace_count));
                            }
                            _ => unreachable!("pause phase: Checkpointed"),
                        }
                    }
                    paused = Some(EngineSnap {
                        at: cutoff,
                        events_processed,
                        end_time,
                        trace_hash: trace.hash(),
                        trace_count: trace.count(),
                        send_counters,
                        machines,
                        procs: procs
                            .into_iter()
                            .map(|p| p.expect("every process checkpointed"))
                            .collect(),
                        memory: bank.checkpoint(),
                        events,
                    });
                    return;
                }
            }
            let t_end = {
                let mut te = t0.saturating_add(lookahead);
                if let Some(cutoff) = stop_at {
                    // Never let a shard touch an event at or past the cut.
                    te = te.min(cutoff);
                }
                te
            };
            for (s, cmd) in cmds.iter().enumerate() {
                let incoming = std::mem::take(&mut pending_in[s]);
                cmd.send(Cmd::Prepare { incoming, t_end }).expect("shard");
            }
            let mut total: u64 = 0;
            for _ in 0..shards {
                match reply_rx.recv().expect("shard alive") {
                    Reply::Prepared { batch } => total += batch,
                    _ => unreachable!("epoch phase: Prepared"),
                }
            }
            let remaining = spec.max_events - events_processed;
            let limits: Vec<u64> = if total <= remaining {
                vec![u64::MAX; shards]
            } else {
                // The budget binds inside this epoch: cut it at the
                // globally `remaining`-th event in (time, key) order.
                for cmd in &cmds {
                    cmd.send(Cmd::Keys).expect("shard");
                }
                let mut all: Vec<(u64, EventKey, usize)> = Vec::with_capacity(total as usize);
                for _ in 0..shards {
                    match reply_rx.recv().expect("shard alive") {
                        Reply::Keys { shard, keys } => {
                            all.extend(keys.into_iter().map(|(at, key)| (at, key, shard)));
                        }
                        _ => unreachable!("epoch phase: Keys"),
                    }
                }
                all.sort_unstable();
                let mut limits = vec![0u64; shards];
                for &(_, _, s) in all.iter().take(remaining as usize) {
                    limits[s] += 1;
                }
                limits
            };
            for (s, cmd) in cmds.iter().enumerate() {
                cmd.send(Cmd::Run { limit: limits[s] }).expect("shard");
            }
            for _ in 0..shards {
                match reply_rx.recv().expect("shard alive") {
                    Reply::Ran(rep) => absorb(
                        rep,
                        &mut pending_in,
                        &mut next_at,
                        &mut events_processed,
                        &mut end_time,
                    ),
                    _ => unreachable!("epoch phase: Ran"),
                }
            }
        }

        // Quiescent or budget exhausted: stop the stragglers.
        for cmd in &cmds {
            cmd.send(Cmd::Finish).expect("shard");
        }
        for _ in 0..shards {
            match reply_rx.recv().expect("shard alive") {
                Reply::Finished(res) => {
                    for (g, result, clock) in res.results {
                        final_results[g as usize] = Some((result, clock));
                    }
                    for (g, c) in res.counters {
                        final_counters[g as usize] = c;
                    }
                    // Shard replies arrive in real-time order, but the
                    // service merge is commutative (sums and maxima), so
                    // the total is still deterministic.
                    final_service.merge(&res.service);
                    trace.merge(res.trace);
                }
                _ => unreachable!("final phase: Finished"),
            }
        }
    });

    if let Some(mut snap) = paused {
        snap.normalize();
        return LegResult::Paused(Box::new(snap));
    }

    let results: Vec<(Result<Decision, Halt>, u64)> = final_results
        .into_iter()
        .map(|r| r.expect("every process reported"))
        .collect();
    let end_time = end_time.max(results.iter().map(|(_, c)| *c).max().unwrap_or(0));
    LegResult::Done(RawOutcome {
        results,
        counters: final_counters,
        service: final_service,
        trace_hash: trace.hash(),
        trace_events: Vec::new(),
        events_processed,
        end_time,
        sm_objects: bank.total_objects(),
        sm_proposes: bank.total_proposes(),
    })
}

#[cfg(test)]
mod tests {
    use crate::Sim;
    use ofa_core::{Algorithm, Bit};
    use ofa_scenario::{Backend, CrashPlan, DelayModel, Engine, Outcome, Scenario};
    use ofa_topology::{Partition, ProcessId};

    /// The core-count guard is a perf heuristic; on a small CI box it
    /// would silently swap in the sequential engine and these
    /// equivalence tests would exercise nothing. Pin a big count —
    /// determinism never depends on the host's parallelism.
    fn unlock_cores() {
        crate::override_available_cores(64);
    }

    /// Every observable except `engine_used` (which legitimately records
    /// different engines / worker counts) must match.
    fn assert_same_run(a: &Outcome, b: &Outcome) {
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.halts, b.halts);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.per_process, b.per_process);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.latest_decision_time, b.latest_decision_time);
        assert_eq!(a.sm_proposes, b.sm_proposes);
        assert_eq!(a.sm_objects, b.sm_objects);
    }

    #[test]
    fn parallel_matches_event_driven_on_sampled_delays() {
        unlock_cores();
        for seed in 0..4 {
            let scenario = Scenario::new(Partition::even(12, 4), Algorithm::LocalCoin)
                .proposals_split(5)
                .seed(seed);
            let seq = Sim.run(&scenario.clone().event_driven());
            let par = Sim.run(&scenario.parallel(3));
            assert_eq!(par.engine_used, Some(Engine::ParallelEvent { workers: 3 }));
            assert_same_run(&seq, &par);
        }
    }

    #[test]
    fn parallel_matches_on_the_broadcast_batch_path() {
        unlock_cores();
        // Constant delay: broadcasts cross the barrier as one descriptor
        // per shard and expand per member — outcomes must still be
        // bit-identical to the sequential single-entry expansion.
        let scenario = Scenario::new(Partition::even(18, 6), Algorithm::CommonCoin)
            .proposals_split(7)
            .delay(DelayModel::Constant(800))
            .seed(2);
        let seq = Sim.run(&scenario.clone().event_driven());
        let par = Sim.run(&scenario.parallel(4));
        assert_eq!(par.engine_used, Some(Engine::ParallelEvent { workers: 4 }));
        assert_same_run(&seq, &par);
    }

    #[test]
    fn parallel_is_deterministic_across_worker_counts() {
        unlock_cores();
        let part = Partition::even(10, 5);
        let queues = (0..10)
            .map(|i| vec![ofa_core::Payload::from_bytes(format!("c{i}").as_bytes()).expect("fits")])
            .collect::<Vec<_>>();
        let scenario = Scenario::new(part, Algorithm::CommonCoin)
            .replicated_log(Algorithm::CommonCoin, 2, queues)
            .seed(11);
        let two = Sim.run(&scenario.clone().parallel(2));
        let five = Sim.run(&scenario.clone().parallel(5));
        let again = Sim.run(&scenario.parallel(5));
        assert_eq!(two.engine_used, Some(Engine::ParallelEvent { workers: 2 }));
        assert_eq!(five.engine_used, Some(Engine::ParallelEvent { workers: 5 }));
        assert_same_run(&two, &five);
        assert_same_run(&five, &again);
    }

    #[test]
    fn parallel_matches_under_crashes_and_budget_cut() {
        unlock_cores();
        use ofa_scenario::VirtualTime;
        let plan = CrashPlan::new()
            .crash_at_step(ProcessId(1), 6)
            .crash_at_round(ProcessId(4), 2)
            .crash_at_time(ProcessId(2), VirtualTime::from_ticks(1_500));
        // A tight event budget exercises the epoch-cut path: the
        // parallel engine must stop after exactly the same event prefix.
        for max_events in [50u64, 500, 5_000] {
            let scenario = Scenario::new(Partition::even(9, 3), Algorithm::LocalCoin)
                .proposals_split(4)
                .crashes(plan.clone())
                .max_events(max_events)
                .seed(9);
            let seq = Sim.run(&scenario.clone().event_driven());
            let par = Sim.run(&scenario.parallel(3));
            assert_same_run(&seq, &par);
        }
    }

    #[test]
    fn unparallelizable_scenarios_fall_back_observably() {
        unlock_cores();
        // One cluster => one shard: nothing to parallelize.
        let single = Sim.run(
            &Scenario::new(Partition::single_cluster(6), Algorithm::LocalCoin)
                .proposals_split(3)
                .parallel(4),
        );
        assert_eq!(single.engine_used, Some(Engine::EventDriven));
        // Zero minimum delay: no conservative lookahead window.
        let zero = Sim.run(
            &Scenario::new(Partition::even(6, 3), Algorithm::LocalCoin)
                .proposals_split(3)
                .delay(DelayModel::Uniform { lo: 0, hi: 40 })
                .parallel(4),
        );
        assert_eq!(zero.engine_used, Some(Engine::EventDriven));
        // Trace retention: only the sequential engines reproduce order.
        let trace = Sim.run(
            &Scenario::new(Partition::even(6, 3), Algorithm::LocalCoin)
                .proposals_split(3)
                .keep_trace()
                .parallel(4),
        );
        assert_eq!(trace.engine_used, Some(Engine::EventDriven));
        assert!(trace.events.is_some());
    }

    #[test]
    fn headline_crash_pattern_on_the_parallel_engine() {
        unlock_cores();
        // Fig 1 right, 6 of 7 crashed: the lone majority-cluster
        // survivor still decides — across shards.
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        let scenario = Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
            .proposals_split(2)
            .crashes(plan)
            .seed(3);
        let seq = Sim.run(&scenario.clone().event_driven());
        let par = Sim.run(&scenario.parallel(3));
        assert_eq!(par.engine_used, Some(Engine::ParallelEvent { workers: 3 }));
        assert!(par.all_correct_decided);
        assert_eq!(par.deciders(), 1);
        assert_eq!(par.crashed.len(), 6);
        assert_same_run(&seq, &par);
    }

    #[test]
    fn observers_fire_on_the_parallel_engine() {
        unlock_cores();
        use ofa_core::InvariantChecker;
        use std::sync::Arc;
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(Partition::even(10, 2), Algorithm::LocalCoin)
                .proposals_split(5)
                .observer(checker.clone())
                .seed(11)
                .parallel(2),
        );
        assert_eq!(out.engine_used, Some(Engine::ParallelEvent { workers: 2 }));
        assert!(out.all_correct_decided);
        checker.assert_clean();
        assert_eq!(checker.decisions().len(), 10);
    }

    #[test]
    fn proposal_bit_column_must_match_n() {
        unlock_cores();
        // Same contract as the other engines.
        let scenario = Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin)
            .proposals(vec![Bit::One; 4])
            .parallel(2);
        assert!(Sim.run(&scenario).all_correct_decided);
    }
}
