//! # `ofa-sim` — deterministic simulator for hybrid-model consensus
//!
//! Runs the protocol under a deterministic discrete-event scheduler. It
//! is one of the execution substrates behind the unified
//! [`ofa_scenario::Scenario`] API: describe a run once, execute it here
//! via the [`Sim`] backend (or on real threads via `ofa_runtime::Threads`)
//! and get back the same [`ofa_scenario::Outcome`] shape either way.
//!
//! The simulator itself has **three interchangeable engines**, selected
//! by [`ofa_scenario::Scenario::engine`]:
//!
//! * [`Engine::Threads`] — the reference: each process runs the *actual*
//!   blocking `ofa-core` algorithm on its own OS thread, serialized by a
//!   conductor baton (exercises the real concurrent `ofa-sharedmem`
//!   objects);
//! * [`Engine::EventDriven`] — each process is a resumable
//!   `ofa_core::sm::ConsensusSm` state machine stepped on a single
//!   thread straight off the event heap — no threads, no baton — which
//!   lifts the process-count ceiling from thousands to tens of
//!   thousands (the `escale` experiment runs `n = 10 000+`);
//! * [`Engine::ParallelEvent`] — the event engine sharded by *cluster*
//!   over a worker pool, exchanging cross-shard deliveries at
//!   deterministic virtual-time epoch barriers; pushes the replicated
//!   SMR workload past `n = 10⁴` (the `parscale` experiment).
//!
//! All engines produce identical outcomes — decisions, counters, event
//! counts, trace hashes — for any declarative scenario, and the
//! parallel engine additionally for any worker count.
//!
//! What this backend adds over the shared scenario vocabulary:
//!
//! * **virtual time** — tunable per-operation costs
//!   ([`ofa_scenario::CostModel`]) and message delays
//!   ([`ofa_scenario::DelayModel`]), so the paper's
//!   efficiency/scalability tradeoff (cheap intra-cluster memory vs slow
//!   asynchronous messages) becomes measurable (experiment E7);
//! * **crash injection** — [`ofa_scenario::CrashPlan`] supports crashes at
//!   a step index (which lands *inside* a broadcast, reproducing the
//!   paper's non-reliable broadcast macro-operation), at a virtual time,
//!   or at round entry;
//! * **reproducibility** — every run folds its event stream into
//!   [`ofa_scenario::Outcome::trace_hash`]; the same scenario replays
//!   bit-for-bit, even after a serde round-trip;
//! * **schedule exploration** — [`Explorer`] enumerates message-delivery
//!   orders exhaustively (within a budget) for small configurations and
//!   checks agreement/validity plus the WA1/WA2 predicates on every
//!   schedule.
//!
//! # Examples
//!
//! ```
//! use ofa_core::{Algorithm, Bit};
//! use ofa_scenario::{Backend, CrashPlan, Scenario};
//! use ofa_sim::Sim;
//! use ofa_topology::{Partition, ProcessId};
//!
//! // The paper's headline scenario: Figure 1 (right), all processes
//! // crash except p3 in the majority cluster — consensus still terminates.
//! let mut plan = CrashPlan::new();
//! for i in [0, 1, 3, 4, 5, 6] {
//!     plan = plan.crash_at_start(ProcessId(i));
//! }
//! let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(4)
//!     .crashes(plan)
//!     .seed(1);
//! let out = Sim.run(&scenario);
//! assert!(out.all_correct_decided);
//! assert_eq!(out.deciders(), 1);
//! ```

#![warn(missing_docs)]

mod backend;
mod checkpoint;
mod conductor;
mod engine;
mod explorer;
mod par;

#[doc(hidden)]
pub use backend::override_available_cores;
pub use backend::{RunOutcome, Sim};
pub use explorer::{ExploreReport, Explorer};

// The substrate-neutral scenario vocabulary used to live in this crate;
// it now lives in `ofa-scenario` and is re-exported here so existing
// `ofa_sim::{CrashPlan, …}` imports keep working.
pub use ofa_scenario::{
    Backend, Body, ChurnEvent, ChurnPlan, CoinSpec, CostModel, CrashPlan, CrashTrigger, DelayModel,
    Engine, Fate, LatencyDist, LinkClasses, LinkOverride, NetIndex, NetworkModel, Outcome,
    ProcessBody, Scenario, Sweep, SweepReport, SweepRun, SweepView, TimedEvent, TraceEvent,
    TraceRecorder, VirtualTime,
};
