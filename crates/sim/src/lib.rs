//! # `ofa-sim` — deterministic simulator for hybrid-model consensus
//!
//! Runs the *actual* protocol code of `ofa-core` (ordinary blocking
//! functions over the `Env` trait) under a deterministic discrete-event
//! conductor:
//!
//! * **virtual time** — tunable per-operation costs ([`CostModel`]) and
//!   message delays ([`DelayModel`]), so the paper's efficiency/scalability
//!   tradeoff (cheap intra-cluster memory vs slow asynchronous messages)
//!   becomes measurable (experiment E7);
//! * **crash injection** — [`CrashPlan`] supports crashes at a step index
//!   (which lands *inside* a broadcast, reproducing the paper's
//!   non-reliable broadcast macro-operation), at a virtual time, or at
//!   round entry;
//! * **reproducibility** — every run folds its event stream into a
//!   [`SimOutcome::trace_hash`]; the same seed replays bit-for-bit;
//! * **schedule exploration** — [`Explorer`] enumerates message-delivery
//!   orders exhaustively (within a budget) for small configurations and
//!   checks agreement/validity plus the WA1/WA2 predicates on every
//!   schedule.
//!
//! # Examples
//!
//! ```
//! use ofa_core::{Algorithm, Bit};
//! use ofa_sim::{CrashPlan, SimBuilder};
//! use ofa_topology::{Partition, ProcessId};
//!
//! // The paper's headline scenario: Figure 1 (right), all processes
//! // crash except p3 in the majority cluster — consensus still terminates.
//! let mut plan = CrashPlan::new();
//! for i in [0, 1, 3, 4, 5, 6] {
//!     plan = plan.crash_at_start(ProcessId(i));
//! }
//! let out = SimBuilder::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(4)
//!     .crashes(plan)
//!     .seed(1)
//!     .run();
//! assert!(out.all_correct_decided);
//! assert_eq!(out.deciders(), 1);
//! ```

#![warn(missing_docs)]

mod builder;
mod conductor;
mod crash;
mod delay;
mod explorer;
mod time;
mod trace;

pub use builder::{SimBuilder, SimOutcome};
pub use crash::{CrashPlan, CrashTrigger};
pub use delay::{CostModel, DelayModel};
pub use explorer::{ExploreReport, Explorer};
pub use time::VirtualTime;
pub use trace::{TimedEvent, TraceEvent, TraceRecorder};

/// A custom protocol body, run once per simulated process in place of one
/// of the paper's algorithms (see [`SimBuilder::custom_body`]).
///
/// Implementors receive the process's [`ofa_core::Env`] plus its binary
/// proposal and return a decision or halt like the built-in algorithms.
/// `ofa-mm` uses this to run the m&m comparator under the deterministic
/// conductor; `ofa-smr` uses it for multivalued/replicated protocols.
pub trait ProcessBody: Send + Sync {
    /// Executes the protocol on behalf of `env.me()`.
    ///
    /// # Errors
    ///
    /// Returns the [`ofa_core::Halt`] that interrupted the process.
    fn run(
        &self,
        env: &mut dyn ofa_core::Env,
        proposal: ofa_core::Bit,
        config: &ofa_core::ProtocolConfig,
    ) -> Result<ofa_core::Decision, ofa_core::Halt>;
}
