//! Bounded exhaustive schedule exploration (stateless model checking).
//!
//! The simulator's timed scheduler samples one asynchronous schedule per
//! seed. For *small* configurations we can do better: enumerate **every**
//! message-delivery order up to a budget and check agreement, validity,
//! and the WA1/WA2 predicates on each. This is a replay-based DFS: a
//! schedule is the sequence of indices chosen among the pending deliveries
//! at each scheduling point; running a prefix deterministically reproduces
//! the execution up to its first unexplored branch.
//!
//! Coins stay seeded (fixed per run), so the exploration quantifies over
//! *asynchrony only* — exactly the adversary of the paper's model (the
//! adversary controls scheduling, not the coins).

use crate::conductor::{conduct, RunSpec, SchedEvent, Scheduler};
use crate::CrashPlan;
use ofa_coins::SeededCommonCoin;
use ofa_core::{Algorithm, Bit, Halt, InvariantChecker, ProtocolConfig};
use ofa_topology::{Partition, ProcessId};
use std::sync::Arc;

/// A scheduler driven by an explicit choice script: at each scheduling
/// point with `k` pending deliveries, consume the next script entry
/// (default 0) as the index to release. Records the branching factor of
/// every point so the DFS can enumerate siblings.
struct ChoiceScheduler {
    pending: Vec<SchedEvent>,
    script: Vec<usize>,
    cursor: usize,
    /// `(chosen_index, branching_factor)` per scheduling point.
    log: Vec<(usize, usize)>,
    clock: u64,
}

impl ChoiceScheduler {
    fn new(script: Vec<usize>) -> Self {
        ChoiceScheduler {
            pending: Vec::new(),
            script,
            cursor: 0,
            log: Vec::new(),
            clock: 0,
        }
    }
}

impl Scheduler for ChoiceScheduler {
    fn push_send(&mut self, from: ProcessId, to: ProcessId, msg: ofa_core::MsgKind, _sent_at: u64) {
        // Times are just sequence numbers in exploration mode.
        self.pending.push(SchedEvent::Deliver {
            to,
            from,
            msg,
            at: 0,
        });
    }

    fn push_crash(&mut self, _pid: ProcessId, _at: u64) {
        panic!("the explorer does not support time-triggered crashes; use AtStep/AtRound");
    }

    fn pop(&mut self) -> Option<SchedEvent> {
        if self.pending.is_empty() {
            return None;
        }
        let k = self.pending.len();
        let choice = self
            .script
            .get(self.cursor)
            .copied()
            .unwrap_or(0)
            .min(k - 1);
        self.cursor += 1;
        self.log.push((choice, k));
        self.clock += 1;
        let ev = self.pending.remove(choice);
        Some(match ev {
            SchedEvent::Deliver { to, from, msg, .. } => SchedEvent::Deliver {
                to,
                from,
                msg,
                at: self.clock,
            },
            other => other,
        })
    }
}

/// Exhaustive (within budget) exploration of delivery schedules.
///
/// # Examples
///
/// ```
/// use ofa_core::Algorithm;
/// use ofa_sim::Explorer;
/// use ofa_topology::Partition;
///
/// // Every delivery order of a 3-process, 2-cluster system, 2 rounds deep:
/// let report = Explorer::new(Partition::from_sizes(&[2, 1]).unwrap(), Algorithm::CommonCoin)
///     .proposals_split(1)
///     .max_rounds(2)
///     .max_schedules(200)
///     .run();
/// assert_eq!(report.agreement_failures, 0);
/// assert_eq!(report.invariant_violations, 0);
/// assert!(report.schedules_run > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    partition: Partition,
    algorithm: Algorithm,
    config: ProtocolConfig,
    proposals: Vec<Bit>,
    crash_plan: CrashPlan,
    seed: u64,
    max_schedules: u64,
}

impl Explorer {
    /// Starts an explorer with alternating proposals, no crashes, a
    /// 2-round budget, and a 10 000-schedule budget.
    pub fn new(partition: Partition, algorithm: Algorithm) -> Self {
        let n = partition.n();
        Explorer {
            partition,
            algorithm,
            config: ProtocolConfig::paper().with_max_rounds(2),
            proposals: (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
            crash_plan: CrashPlan::new(),
            seed: 0,
            max_schedules: 10_000,
        }
    }

    /// Sets the protocol configuration (keep `max_rounds` small!).
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Bounds the protocol rounds per process (depth of the exploration).
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config = self.config.with_max_rounds(rounds);
        self
    }

    /// Sets every process's proposal.
    pub fn proposals(mut self, proposals: Vec<Bit>) -> Self {
        self.proposals = proposals;
        self
    }

    /// First `ones` processes propose 1, the rest 0.
    pub fn proposals_split(mut self, ones: usize) -> Self {
        let n = self.partition.n();
        self.proposals = (0..n).map(|i| Bit::from(i < ones)).collect();
        self
    }

    /// Sets the failure pattern (AtStep / AtRound / at-start only).
    ///
    /// # Panics
    ///
    /// Panics (on `run`) if the plan contains an `AtTime` trigger.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Seeds the (fixed-per-run) coins.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of schedules explored.
    pub fn max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = max;
        self
    }

    fn run_one(&self, script: Vec<usize>) -> (RunResult, Vec<(usize, usize)>) {
        let checker = Arc::new(InvariantChecker::new());
        let spec = RunSpec {
            partition: self.partition.clone(),
            body: crate::Body::Algo(self.algorithm),
            config: self.config,
            proposals: self.proposals.clone(),
            seed: self.seed,
            costs: crate::CostModel::default(),
            crash_plan: self.crash_plan.clone(),
            churn: crate::ChurnPlan::new(),
            common_coin: Arc::new(SeededCommonCoin::new(self.seed)),
            observer: Some(checker.clone()),
            keep_trace: false,
            max_events: 200_000,
        };
        let mut scheduler = ChoiceScheduler::new(script);
        let raw = conduct(spec, &mut scheduler);

        let mut decided: Vec<Bit> = Vec::new();
        let mut undecided_correct = 0u64;
        for (res, _) in &raw.results {
            match res {
                Ok(d) => decided.push(d.value),
                Err(Halt::Stopped) => undecided_correct += 1,
                Err(Halt::Crashed) => {}
            }
        }
        let agreement = decided.windows(2).all(|w| w[0] == w[1]);
        let validity = decided.iter().all(|v| self.proposals.contains(v));
        (
            RunResult {
                agreement,
                validity,
                violations: checker.violations(),
                undecided_correct,
                decided_values: decided,
            },
            scheduler.log,
        )
    }

    /// Runs the DFS and aggregates what it found.
    pub fn run(self) -> ExploreReport {
        let mut report = ExploreReport::default();
        // DFS over schedule prefixes. Each run extends its prefix with
        // default-0 choices; siblings are enumerated from the log.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if report.schedules_run >= self.max_schedules {
                report.exhausted = false;
                return report;
            }
            let prefix_len = prefix.len();
            let (result, log) = self.run_one(prefix.clone());
            report.absorb(&result);
            // Enumerate unexplored siblings of every default choice made
            // beyond the prefix. Pushing deepest-first means the stack
            // pops the *shallowest* sibling next, so under a budget the
            // exploration diversifies early scheduling decisions (where
            // executions actually diverge) before tail permutations.
            for i in (prefix_len..log.len()).rev() {
                let (chosen, branching) = log[i];
                debug_assert_eq!(chosen, 0, "beyond the prefix all choices default to 0");
                for alt in (1..branching).rev() {
                    let mut sibling: Vec<usize> = log[..i].iter().map(|&(c, _)| c).collect();
                    sibling.push(alt);
                    stack.push(sibling);
                }
            }
        }
        report.exhausted = true;
        report
    }
}

#[derive(Debug)]
struct RunResult {
    agreement: bool,
    validity: bool,
    violations: Vec<String>,
    undecided_correct: u64,
    decided_values: Vec<Bit>,
}

/// Aggregate result of a schedule exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Number of complete schedules executed.
    pub schedules_run: u64,
    /// `true` iff the DFS finished within the schedule budget.
    pub exhausted: bool,
    /// Schedules on which two processes decided differently.
    pub agreement_failures: u64,
    /// Schedules on which a non-proposed value was decided.
    pub validity_failures: u64,
    /// Total WA1/WA2 (and derived) violations reported by the checker.
    pub invariant_violations: u64,
    /// Schedules on which some correct process ran out of rounds
    /// undecided (legal for randomized consensus under a round cap).
    pub schedules_with_undecided: u64,
    /// Whether 0 / 1 was decided on some schedule (both may be true
    /// across different schedules with mixed inputs — that is not an
    /// agreement failure).
    pub values_decided: [bool; 2],
    /// A few sample violation messages (capped at 10).
    pub sample_violations: Vec<String>,
}

impl ExploreReport {
    fn absorb(&mut self, r: &RunResult) {
        self.schedules_run += 1;
        if !r.agreement {
            self.agreement_failures += 1;
        }
        if !r.validity {
            self.validity_failures += 1;
        }
        self.invariant_violations += r.violations.len() as u64;
        if r.undecided_correct > 0 {
            self.schedules_with_undecided += 1;
        }
        for v in &r.decided_values {
            self.values_decided[v.as_bool() as usize] = true;
        }
        for v in r
            .violations
            .iter()
            .take(10 - self.sample_violations.len().min(10))
        {
            if self.sample_violations.len() < 10 {
                self.sample_violations.push(v.clone());
            }
        }
    }

    /// `true` iff no safety property was ever violated.
    pub fn is_safe(&self) -> bool {
        self.agreement_failures == 0
            && self.validity_failures == 0
            && self.invariant_violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_unanimous_system_is_safe_on_all_schedules() {
        let report = Explorer::new(Partition::from_sizes(&[2]).unwrap(), Algorithm::CommonCoin)
            .proposals(vec![Bit::One, Bit::One])
            .max_rounds(1)
            .max_schedules(60_000)
            .run();
        assert!(report.is_safe());
        assert!(report.schedules_run >= 1);
        assert!(report.values_decided[1]);
        assert!(!report.values_decided[0], "validity: 0 was never proposed");
    }

    #[test]
    fn mixed_inputs_explore_many_schedules_safely() {
        let report = Explorer::new(
            Partition::from_sizes(&[2, 1]).unwrap(),
            Algorithm::LocalCoin,
        )
        .proposals_split(1)
        .max_rounds(1)
        .max_schedules(3_000)
        .run();
        assert!(report.schedules_run > 10, "should branch: {report:?}");
        assert!(report.is_safe(), "{report:?}");
    }

    #[test]
    fn budget_caps_exploration() {
        let report = Explorer::new(
            Partition::from_sizes(&[2, 2]).unwrap(),
            Algorithm::LocalCoin,
        )
        .max_rounds(2)
        .max_schedules(50)
        .run();
        assert_eq!(report.schedules_run, 50);
        assert!(!report.exhausted);
        assert!(report.is_safe());
    }

    #[test]
    fn crash_at_start_is_explored_safely() {
        let report = Explorer::new(
            Partition::from_sizes(&[2, 1]).unwrap(),
            Algorithm::CommonCoin,
        )
        .crashes(CrashPlan::new().crash_at_start(ProcessId(2)))
        .max_rounds(2)
        .max_schedules(2_000)
        .run();
        assert!(report.is_safe(), "{report:?}");
        assert!(report.schedules_run > 0);
    }

    #[test]
    #[should_panic(expected = "time-triggered")]
    fn at_time_crash_rejected() {
        let _ = Explorer::new(Partition::from_sizes(&[2]).unwrap(), Algorithm::LocalCoin)
            .crashes(
                CrashPlan::new().crash_at_time(ProcessId(0), crate::VirtualTime::from_ticks(5)),
            )
            .max_schedules(10)
            .run();
    }

    #[test]
    fn trigger_enum_is_public() {
        // AtStep(0) crashes are the explorer-friendly form.
        let t = crate::CrashTrigger::AtStep(0);
        assert_eq!(format!("{t:?}"), "AtStep(0)");
    }
}
