//! The deterministic conductor: real threads, one at a time.
//!
//! Each simulated process runs the *actual* protocol code (`ofa-core`
//! algorithms are ordinary blocking functions) on its own OS thread, but a
//! single-threaded conductor hands out an execution baton so that exactly
//! one process thread runs at any moment. A process runs a **burst** —
//! from wake-up until it blocks in `recv` or returns — then control goes
//! back to the conductor, which picks the next event (message delivery or
//! timed crash) from a [`Scheduler`].
//!
//! Because every shared-state mutation happens while holding the baton and
//! every scheduling choice is a function of the seeded RNG, whole
//! executions are bit-for-bit reproducible (asserted via trace hashes)
//! while still exercising the real concurrent data structures
//! (`ofa-sharedmem` consensus objects).

use crate::{
    Body, ChurnPlan, CostModel, CrashPlan, CrashTrigger, Fate, NetIndex, TraceEvent, TraceRecorder,
    VirtualTime,
};
use ofa_coins::{CommonCoin, LocalCoin, SeededLocalCoin};
use ofa_core::{Bit, Decision, Env, Halt, Msg, MsgKind, ObsEvent, Observer, ProtocolConfig};
use ofa_metrics::{Counters, ServiceStats};
use ofa_sharedmem::{MemoryBank, Slot};
use ofa_topology::{Partition, ProcessId};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// An event the scheduler can release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SchedEvent {
    /// Deliver a message.
    Deliver {
        /// Receiver.
        to: ProcessId,
        /// Original sender.
        from: ProcessId,
        /// Payload.
        msg: MsgKind,
        /// Delivery time (ticks).
        at: u64,
    },
    /// Fire a timed crash.
    Crash {
        /// The victim.
        pid: ProcessId,
        /// Crash time (ticks).
        at: u64,
    },
    /// Restart a churned process with fresh state.
    Rejoin {
        /// The returning process.
        pid: ProcessId,
        /// Rejoin time (ticks).
        at: u64,
    },
}

/// Orders pending deliveries and timed crashes. The production scheduler
/// is [`TimedScheduler`]; the explorer substitutes a choice-driven one.
pub(crate) trait Scheduler {
    /// Registers a sent message (called in send order while draining the
    /// outbox — the only place delay randomness is consumed).
    fn push_send(&mut self, from: ProcessId, to: ProcessId, msg: MsgKind, sent_at: u64);
    /// Registers one broadcast: `msg` to every process `p_0 … p_{n-1}` in
    /// index order, all handed to the network at `sent_at`. Semantically
    /// identical to `n` [`Scheduler::push_send`] calls (the default does
    /// exactly that); schedulers may store it more compactly.
    fn push_broadcast(&mut self, from: ProcessId, msg: MsgKind, sent_at: u64, n: usize) {
        for j in 0..n {
            self.push_send(from, ProcessId(j), msg, sent_at);
        }
    }
    /// Registers a timed crash.
    fn push_crash(&mut self, pid: ProcessId, at: u64);
    /// Registers a churn rejoin. Only schedulers driving churn-capable
    /// engines need this; the default rejects it loudly.
    fn push_rejoin(&mut self, pid: ProcessId, at: u64) {
        let _ = at;
        panic!("this scheduler does not support churn rejoins (process {pid})");
    }
    /// Releases the next event, or `None` when quiescent.
    fn pop(&mut self) -> Option<SchedEvent>;
}

/// Deterministic total-order tie-break for events that share a delivery
/// time. The key is *locally computable by the sender* — `(class, sender,
/// sender's send-op counter, destination)` — rather than a global
/// registration sequence number, so every engine (and every shard of the
/// parallel engine) derives the identical dispatch order for the same
/// logical sends, no matter in which real-time order they were pushed.
///
/// Field order is the comparison order (derived lexicographic `Ord`):
/// crashes (`class` 0) sort before deliveries (`class` 1) at equal times;
/// a sender's messages sort by its own counter `k` (broadcasts occupy `n`
/// consecutive counter values, one per destination in index order, so a
/// batched entry expands in exactly the order `n` individual entries
/// would have had — nothing from the same sender can interleave, and
/// other senders order entirely before or after by `from`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    /// 0 = crash, 1 = delivery.
    pub(crate) class: u8,
    /// The sender (the victim, for crashes).
    pub(crate) from: u32,
    /// The sender's send-op counter value for this message.
    pub(crate) k: u64,
    /// The destination (the victim, for crashes).
    pub(crate) to: u32,
}

impl EventKey {
    pub(crate) fn deliver(from: ProcessId, k: u64, to: ProcessId) -> Self {
        EventKey {
            class: 1,
            from: from.index() as u32,
            k,
            to: to.index() as u32,
        }
    }

    pub(crate) fn crash(pid: ProcessId) -> Self {
        EventKey {
            class: 0,
            from: pid.index() as u32,
            k: 0,
            to: pid.index() as u32,
        }
    }

    /// Rejoins share the crash class (they are lifecycle events of one
    /// process, ordered before deliveries at the same instant) but use
    /// `k = 1`: a process's rejoin is strictly later than its own leave,
    /// and `k` keeps the key distinct from any crash key.
    pub(crate) fn rejoin(pid: ProcessId) -> Self {
        EventKey {
            class: 0,
            from: pid.index() as u32,
            k: 1,
            to: pid.index() as u32,
        }
    }
}

/// What a heap slot holds: one event, or a whole uniform broadcast kept
/// as a single entry (constant-delay fast path for the event-driven
/// engines — O(n) instead of O(n²) heap residency per all-to-all round).
#[derive(Debug)]
enum Pending {
    One(SchedEvent),
    /// `msg` from `from` delivered to `p_0 … p_{n-1}`, all at `at`. The
    /// entry's key carries the *first* of `n` consecutive sender-counter
    /// values (destination `j` conceptually holds `k + j`), so expanding
    /// destination-by-destination reproduces exactly the order `n`
    /// individual entries would have had (see [`EventKey`]).
    Broadcast {
        from: ProcessId,
        msg: MsgKind,
        at: u64,
        n: u32,
    },
}

/// A heap slot ordered **earliest-first** by `(at, key)` — `BinaryHeap`
/// is a max-heap, so the comparison is inverted. One definition shared
/// by the sequential scheduler and the parallel engine's per-shard
/// heaps, so their pop orders can never diverge.
#[derive(Debug)]
pub(crate) struct Keyed<E> {
    pub(crate) at: u64,
    pub(crate) key: EventKey,
    pub(crate) ev: E,
}

impl<E> PartialEq for Keyed<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key) == (other.at, other.key)
    }
}
impl<E> Eq for Keyed<E> {}
impl<E> PartialOrd for Keyed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Keyed<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

type HeapEntry = Keyed<Pending>;

/// A popped [`Pending::Broadcast`] being expanded destination by
/// destination. Invariant under loss: `next` always indexes a
/// destination whose send-time fate is *not* [`Fate::Lost`] (lost
/// destinations are skipped eagerly when the drain advances), so
/// [`TimedScheduler::next_at`] never promises an event the next
/// [`Scheduler::pop`] would not release.
#[derive(Debug)]
struct Draining {
    from: ProcessId,
    msg: MsgKind,
    at: u64,
    /// The sender's counter for destination 0 (destination `j` holds
    /// `k0 + j`), needed to evaluate per-destination fates mid-drain.
    k0: u64,
    next: u32,
    n: u32,
}

/// Per-sender send-op counters: the `k` component of [`EventKey`] and the
/// per-message input of [`DelayModel::delay_of`]. Kept as a lazily-grown
/// vector so schedulers need no up-front `n`.
#[derive(Debug, Default)]
pub(crate) struct SendCounters(Vec<u64>);

impl SendCounters {
    /// Returns the sender's current counter and advances it by `by`.
    pub(crate) fn take(&mut self, from: ProcessId, by: u64) -> u64 {
        let i = from.index();
        if i >= self.0.len() {
            self.0.resize(i + 1, 0);
        }
        let k = self.0[i];
        self.0[i] += by;
        k
    }

    /// The raw per-sender counters (index = process), for checkpointing.
    pub(crate) fn values(&self) -> &[u64] {
        &self.0
    }

    /// Rebuilds counters from a checkpointed [`SendCounters::values`].
    pub(crate) fn from_values(values: Vec<u64>) -> Self {
        SendCounters(values)
    }
}

/// The production scheduler: delivery time = send time + the keyed delay
/// of the compiled [`NetIndex`]; ties broken by [`EventKey`]. Loss,
/// duplication, and delay are all pure functions of the sender's local
/// history, which is what makes the single-threaded engines and the
/// sharded parallel engine agree on one global event order.
pub(crate) struct TimedScheduler {
    heap: BinaryHeap<HeapEntry>,
    seed: u64,
    net: NetIndex,
    counters: SendCounters,
    draining: Option<Draining>,
}

impl TimedScheduler {
    pub(crate) fn new(seed: u64, net: NetIndex) -> Self {
        TimedScheduler {
            heap: BinaryHeap::new(),
            seed,
            net,
            counters: SendCounters::default(),
            draining: None,
        }
    }

    /// First destination `>= start` of a batched broadcast whose
    /// send-time fate is not [`Fate::Lost`]. With loss disabled (the
    /// common case) this returns `Some(start)` without sampling.
    fn next_survivor(&self, from: ProcessId, k0: u64, start: u32, n: u32) -> Option<u32> {
        (start..n).find(|&j| {
            self.net
                .fate_of(self.seed, from, ProcessId(j as usize), k0 + u64::from(j))
                != Fate::Lost
        })
    }

    /// If `(from, to, k)` was fated [`Fate::Dup`], schedules the second
    /// copy. The extra delay is a fresh link-class sample, so it is at
    /// least the class floor — which keeps duplicates at or beyond the
    /// parallel engine's `min_delay` lookahead horizon.
    fn maybe_push_dup(&mut self, from: ProcessId, to: ProcessId, k: u64, msg: MsgKind, at: u64) {
        if self.net.fate_of(self.seed, from, to, k) == Fate::Dup {
            let at2 = at + self.net.dup_extra_of(self.seed, from, to, k);
            self.heap.push(HeapEntry {
                at: at2,
                key: EventKey::deliver(from, k, to),
                ev: Pending::One(SchedEvent::Deliver {
                    to,
                    from,
                    msg,
                    at: at2,
                }),
            });
        }
    }

    /// The timestamp of the next event [`Scheduler::pop`] would release,
    /// without releasing it. Used to pause a run at a virtual-time cut:
    /// a mid-expansion broadcast reports the shared delivery time of its
    /// remaining destinations.
    pub(crate) fn next_at(&self) -> Option<u64> {
        if let Some(b) = &self.draining {
            return Some(b.at);
        }
        self.heap.peek().map(|e| e.at)
    }

    /// The per-sender send counters, for checkpointing.
    pub(crate) fn counter_values(&self) -> &[u64] {
        self.counters.values()
    }

    /// Exports every pending delivery in the canonical engine-independent
    /// checkpoint form (unsorted — the checkpoint codec sorts). Timed
    /// crashes and churn rejoins are *excluded*: they are re-derived
    /// from the resume scenario's crash and churn plans, which is what
    /// lets a divergent replay swap the failure pattern of the tail.
    ///
    /// # Panics
    ///
    /// Panics if a broadcast is mid-expansion — checkpoint cuts land on
    /// time boundaries, and every destination of a broadcast shares one
    /// delivery time, so an active drain means the caller cut mid-time.
    pub(crate) fn checkpoint_events(&self) -> Vec<crate::checkpoint::CanonEvent> {
        assert!(
            self.draining.is_none(),
            "checkpoint cut mid-broadcast (cuts must land on time boundaries)"
        );
        self.heap
            .iter()
            .filter_map(|entry| match &entry.ev {
                Pending::One(SchedEvent::Deliver { to, from, msg, at }) => {
                    Some(crate::checkpoint::CanonEvent::One {
                        at: *at,
                        from: from.index() as u32,
                        k: entry.key.k,
                        to: to.index() as u32,
                        msg: *msg,
                    })
                }
                Pending::One(SchedEvent::Crash { .. })
                | Pending::One(SchedEvent::Rejoin { .. }) => None,
                Pending::Broadcast { from, msg, at, .. } => {
                    Some(crate::checkpoint::CanonEvent::Broadcast {
                        at: *at,
                        from: from.index() as u32,
                        k0: entry.key.k,
                        msg: *msg,
                    })
                }
            })
            .collect()
    }

    /// Restores checkpointed state: pending deliveries re-enter the heap
    /// under their original keys and timestamps (no delay randomness is
    /// re-drawn), and the send counters resume mid-stream. Broadcasts
    /// fan back out to all `n` processes, like the entry they were
    /// captured from.
    pub(crate) fn restore(
        &mut self,
        events: &[crate::checkpoint::CanonEvent],
        counters: Vec<u64>,
        n: u32,
    ) {
        self.counters = SendCounters::from_values(counters);
        for ev in events {
            match *ev {
                crate::checkpoint::CanonEvent::One {
                    at,
                    from,
                    k,
                    to,
                    msg,
                } => {
                    let (from, to) = (ProcessId(from as usize), ProcessId(to as usize));
                    self.heap.push(HeapEntry {
                        at,
                        key: EventKey::deliver(from, k, to),
                        ev: Pending::One(SchedEvent::Deliver { to, from, msg, at }),
                    });
                }
                crate::checkpoint::CanonEvent::Broadcast { at, from, k0, msg } => {
                    let from = ProcessId(from as usize);
                    // Re-check survivorship under the restoring seed: a
                    // divergent resume may change per-destination fates,
                    // and the heap invariant is that every enqueued
                    // broadcast delivers to at least one destination.
                    if self.next_survivor(from, k0, 0, n).is_none() {
                        continue;
                    }
                    self.heap.push(HeapEntry {
                        at,
                        key: EventKey::deliver(from, k0, ProcessId(0)),
                        ev: Pending::Broadcast { from, msg, at, n },
                    });
                }
            }
        }
    }
}

impl Scheduler for TimedScheduler {
    fn push_send(&mut self, from: ProcessId, to: ProcessId, msg: MsgKind, sent_at: u64) {
        let k = self.counters.take(from, 1);
        match self.net.fate_of(self.seed, from, to, k) {
            // Lost messages still consume the counter (the fate is part
            // of the message's identity) but schedule nothing.
            Fate::Lost => {}
            fate => {
                let at = sent_at + self.net.delay_of(self.seed, from, to, k);
                self.heap.push(HeapEntry {
                    at,
                    key: EventKey::deliver(from, k, to),
                    ev: Pending::One(SchedEvent::Deliver { to, from, msg, at }),
                });
                if fate == Fate::Dup {
                    self.maybe_push_dup(from, to, k, msg, at);
                }
            }
        }
    }

    fn push_broadcast(&mut self, from: ProcessId, msg: MsgKind, sent_at: u64, n: usize) {
        if n == 0 {
            return;
        }
        if let Some(d) = self.net.constant_broadcast_delay() {
            // Every destination shares one delivery time, so the whole
            // broadcast is a single heap entry occupying `n` consecutive
            // sender-counter values (see `Pending::Broadcast` for why the
            // expansion order is exact). Under loss, a broadcast whose
            // every destination is fated lost is never enqueued at all —
            // that keeps `next_at` honest (the heap never holds an entry
            // that would release no event).
            let at = sent_at + d;
            let k = self.counters.take(from, n as u64);
            if self.next_survivor(from, k, 0, n as u32).is_none() {
                return;
            }
            self.heap.push(HeapEntry {
                at,
                key: EventKey::deliver(from, k, ProcessId(0)),
                ev: Pending::Broadcast {
                    from,
                    msg,
                    at,
                    n: n as u32,
                },
            });
        } else {
            // Varying delays: fall back to per-destination entries; the
            // keyed delay derivation makes the order of these pushes
            // irrelevant.
            for j in 0..n {
                self.push_send(from, ProcessId(j), msg, sent_at);
            }
        }
    }

    fn push_crash(&mut self, pid: ProcessId, at: u64) {
        self.heap.push(HeapEntry {
            at,
            key: EventKey::crash(pid),
            ev: Pending::One(SchedEvent::Crash { pid, at }),
        });
    }

    fn push_rejoin(&mut self, pid: ProcessId, at: u64) {
        self.heap.push(HeapEntry {
            at,
            key: EventKey::rejoin(pid),
            ev: Pending::One(SchedEvent::Rejoin { pid, at }),
        });
    }

    fn pop(&mut self) -> Option<SchedEvent> {
        if let Some(b) = &self.draining {
            let (from, msg, at, k0, j, n) = (b.from, b.msg, b.at, b.k0, b.next, b.n);
            let to = ProcessId(j as usize);
            let k = k0 + u64::from(j);
            // Advance to the next *surviving* destination (or finish),
            // preserving the `Draining` invariant for `next_at`.
            match self.next_survivor(from, k0, j + 1, n) {
                Some(nj) => self.draining.as_mut().expect("drain active").next = nj,
                None => self.draining = None,
            }
            self.maybe_push_dup(from, to, k, msg, at);
            return Some(SchedEvent::Deliver { to, from, msg, at });
        }
        let entry = self.heap.pop()?;
        match entry.ev {
            Pending::One(ev) => Some(ev),
            Pending::Broadcast { from, msg, at, n } => {
                let k0 = entry.key.k;
                let first = self
                    .next_survivor(from, k0, 0, n)
                    .expect("broadcasts with no surviving destination are never enqueued");
                if let Some(nj) = self.next_survivor(from, k0, first + 1, n) {
                    self.draining = Some(Draining {
                        from,
                        msg,
                        at,
                        k0,
                        next: nj,
                        n,
                    });
                }
                let to = ProcessId(first as usize);
                self.maybe_push_dup(from, to, k0 + u64::from(first), msg, at);
                Some(SchedEvent::Deliver { to, from, msg, at })
            }
        }
    }
}

/// A message queued for the conductor to turn into a scheduled delivery.
struct OutMsg {
    from: ProcessId,
    to: ProcessId,
    msg: MsgKind,
    sent_at: u64,
}

/// State shared between the conductor and all process envs. Mutation only
/// happens while holding the baton, so plain mutexes never contend.
pub(crate) struct Shared {
    partition: Partition,
    costs: CostModel,
    queues: Vec<Mutex<VecDeque<Msg>>>,
    outbox: Mutex<Vec<OutMsg>>,
    crashed: Vec<AtomicBool>,
    stopped: AtomicBool,
    wake_time: Vec<AtomicU64>,
    memory: MemoryBank,
    counters: Vec<Arc<Counters>>,
    /// Per-process client-service statistics, merged in by each body
    /// incarnation's terminal [`Env::service_stats`] emission. Like
    /// `counters`, persists across churn rejoins (fresh seats share it).
    service: Vec<Mutex<ServiceStats>>,
    /// The run's master seed, surfaced via [`Env::seed`] for
    /// workload-level PRFs. Rejoined incarnations see the *master* seed
    /// (their local-coin stream uses [`rejoin_coin_seed`] separately).
    seed: u64,
    common_coin: Arc<dyn CommonCoin>,
    observer: Option<Arc<dyn Observer>>,
    trace: Mutex<TraceRecorder>,
    crash_plan: CrashPlan,
    /// `true` per process iff it appears in the churn plan — surfaced as
    /// `!`[`Env::serves_traffic`]: churn-planned replicas propose empty
    /// filler slots in both incarnations (a restarted proposer could not
    /// re-broadcast its clock-dependent batches identically, which the
    /// multivalued reduction's agreement requires).
    churn_planned: Vec<bool>,
}

/// What a process thread reports when it hands the baton back.
enum YieldMsg {
    /// Blocked in `recv` with an empty queue.
    Blocked,
    /// The protocol returned (decision or halt) at the given local clock.
    Finished {
        result: Result<Decision, Halt>,
        clock: u64,
    },
}

/// The per-process environment handed to the protocol code.
struct SimEnv {
    me: ProcessId,
    shared: Arc<Shared>,
    go_rx: mpsc::Receiver<()>,
    yield_tx: mpsc::Sender<YieldMsg>,
    clock: u64,
    steps: u64,
    crashed_self: bool,
    local_coin: SeededLocalCoin,
}

impl SimEnv {
    /// Counts an environment call and fires step-indexed crashes.
    fn step(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if let Some(CrashTrigger::AtStep(k)) = self.shared.crash_plan.trigger(self.me) {
            if self.steps > k {
                self.crashed_self = true;
            }
        }
        self.check_crash()
    }

    fn check_crash(&mut self) -> Result<(), Halt> {
        if self.crashed_self || self.shared.crashed[self.me.index()].load(Ordering::SeqCst) {
            self.crashed_self = true;
            return Err(Halt::Crashed);
        }
        Ok(())
    }

    /// Hands the baton back as Blocked; waits for the next grant.
    fn yield_blocked(&mut self) -> Result<(), Halt> {
        if self.yield_tx.send(YieldMsg::Blocked).is_err() {
            return Err(Halt::Stopped); // conductor is gone
        }
        if self.go_rx.recv().is_err() {
            return Err(Halt::Stopped); // conductor is gone
        }
        let wake = self.shared.wake_time[self.me.index()].load(Ordering::SeqCst);
        self.clock = self.clock.max(wake);
        Ok(())
    }

    fn trace(&self, event: TraceEvent) {
        self.shared
            .trace
            .lock()
            .record(VirtualTime::from_ticks(self.clock), event);
    }

    fn counters(&self) -> &Counters {
        &self.shared.counters[self.me.index()]
    }
}

impl Env for SimEnv {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn partition(&self) -> &Partition {
        &self.shared.partition
    }

    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
        self.step()?;
        self.clock += self.shared.costs.send_cost;
        self.counters().inc_messages_sent(1);
        self.trace(TraceEvent::Send {
            who: self.me,
            to,
            msg,
        });
        self.shared.outbox.lock().push(OutMsg {
            from: self.me,
            to,
            msg,
            sent_at: self.clock,
        });
        Ok(())
    }

    fn broadcast(&mut self, msg: MsgKind) -> Result<(), Halt> {
        self.counters().inc_broadcasts(1);
        let n = self.shared.partition.n();
        for j in 0..n {
            self.send(ProcessId(j), msg)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, Halt> {
        self.step()?;
        loop {
            let popped = self.shared.queues[self.me.index()].lock().pop_front();
            if let Some(msg) = popped {
                self.clock += self.shared.costs.recv_cost;
                self.counters().inc_messages_delivered(1);
                return Ok(msg);
            }
            if self.shared.stopped.load(Ordering::SeqCst) {
                return Err(Halt::Stopped);
            }
            self.yield_blocked()?;
            self.check_crash()?;
        }
    }

    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
        self.step()?;
        self.clock += self.shared.costs.sm_op_cost;
        let mem = self
            .shared
            .memory
            .memory_of(&self.shared.partition, self.me);
        let decided = mem.propose_raw(slot, enc);
        self.counters().inc_cluster_proposes(1);
        self.trace(TraceEvent::ClusterPropose {
            who: self.me,
            round: slot.round,
            phase: slot.phase,
            proposed: enc,
            decided,
        });
        Ok(decided)
    }

    fn local_coin(&mut self) -> Result<Bit, Halt> {
        self.step()?;
        self.clock += self.shared.costs.coin_cost;
        let bit = Bit::from(self.local_coin.flip());
        self.counters().inc_local_coin_flips(1);
        self.trace(TraceEvent::Coin {
            who: self.me,
            common: false,
            value: bit.as_bool(),
        });
        Ok(bit)
    }

    fn common_coin(&mut self, round: u64) -> Result<Bit, Halt> {
        self.step()?;
        self.clock += self.shared.costs.coin_cost;
        let bit = Bit::from(self.shared.common_coin.bit(round));
        self.counters().inc_common_coin_queries(1);
        self.trace(TraceEvent::Coin {
            who: self.me,
            common: true,
            value: bit.as_bool(),
        });
        Ok(bit)
    }

    fn observe(&mut self, event: ObsEvent) {
        match event {
            ObsEvent::RoundStart { round, .. } => {
                self.counters().inc_rounds_started(1);
                self.trace(TraceEvent::RoundStart {
                    who: self.me,
                    round,
                });
                // Round-indexed crashes count rounds cumulatively across
                // instances (multivalued stages, log slots), so they
                // fire inside multi-instance bodies too.
                if let Some(CrashTrigger::AtRound(r)) = self.shared.crash_plan.trigger(self.me) {
                    if self.counters().rounds_started() >= r {
                        self.crashed_self = true;
                    }
                }
            }
            ObsEvent::Deciding { relayed, .. } => {
                if relayed {
                    self.counters().inc_decide_relays(1);
                } else {
                    self.counters().inc_decisions(1);
                }
            }
            ObsEvent::MailboxStats { stale_dropped } => {
                self.counters().inc_stale_dropped(stale_dropped);
            }
            _ => {}
        }
        if let Some(obs) = &self.shared.observer {
            obs.on_event(self.me, &event);
        }
    }

    fn now(&self) -> u64 {
        self.clock
    }

    fn seed(&self) -> u64 {
        self.shared.seed
    }

    fn service_stats(&mut self, stats: &ServiceStats) {
        self.shared.service[self.me.index()].lock().merge(stats);
    }

    fn serves_traffic(&self) -> bool {
        !self.shared.churn_planned[self.me.index()]
    }
}

/// Per-process conductor-side handle.
struct Seat {
    go_tx: mpsc::SyncSender<()>,
    yield_rx: mpsc::Receiver<YieldMsg>,
    join: Option<std::thread::JoinHandle<()>>,
    finished: Option<(Result<Decision, Halt>, u64)>,
}

/// Domain separator folded into the master seed for the local-coin
/// stream of a rejoined process: a second incarnation must not replay
/// its first incarnation's coin flips. Shared by all engines.
const REJOIN_COIN_DOMAIN: u64 = 0x8E01_12EC_015E_ED01;

/// The local-coin seed used by every engine for rejoined incarnations.
pub(crate) fn rejoin_coin_seed(seed: u64) -> u64 {
    seed ^ REJOIN_COIN_DOMAIN
}

/// Spawns one process thread, parked until its first baton. `init_clock`
/// is 0 at run start; a rejoined incarnation starts at the rejoin time
/// (or the clock its first incarnation crashed at, whichever is later),
/// exactly like the event-driven engines.
fn spawn_seat(
    i: usize,
    init_clock: u64,
    coin_seed: u64,
    shared: &Arc<Shared>,
    body: &Body,
    config: ProtocolConfig,
    proposal: Bit,
) -> Seat {
    let (go_tx, go_rx) = mpsc::sync_channel::<()>(0);
    let (yield_tx, yield_rx) = mpsc::channel::<YieldMsg>();
    let shared_cl = Arc::clone(shared);
    let body = body.clone();
    let join = std::thread::Builder::new()
        .name(format!("sim-p{}", i + 1))
        .spawn(move || {
            let mut env = SimEnv {
                me: ProcessId(i),
                shared: shared_cl,
                go_rx,
                yield_tx,
                clock: init_clock,
                steps: 0,
                crashed_self: false,
                local_coin: SeededLocalCoin::for_process(coin_seed, ProcessId(i)),
            };
            // Wait for the first baton; if the conductor vanished, exit.
            if env.go_rx.recv().is_err() {
                return;
            }
            let result = body.run(&mut env, proposal, &config);
            let clock = env.clock;
            let _ = env.yield_tx.send(YieldMsg::Finished { result, clock });
        })
        .expect("spawn simulated process thread");
    Seat {
        go_tx,
        yield_rx,
        join: Some(join),
        finished: None,
    }
}

/// Everything needed to run one simulated execution.
pub(crate) struct RunSpec {
    pub partition: Partition,
    pub body: Body,
    pub config: ProtocolConfig,
    pub proposals: Vec<Bit>,
    pub seed: u64,
    pub costs: CostModel,
    pub crash_plan: CrashPlan,
    pub churn: ChurnPlan,
    pub common_coin: Arc<dyn CommonCoin>,
    pub observer: Option<Arc<dyn Observer>>,
    pub keep_trace: bool,
    pub max_events: u64,
}

/// Raw result of a conducted run, before the backend shapes it into the
/// unified [`ofa_scenario::Outcome`].
pub(crate) struct RawOutcome {
    pub results: Vec<(Result<Decision, Halt>, u64)>,
    pub counters: Vec<ofa_metrics::CounterSnapshot>,
    /// Run-wide client-service statistics (traffic-driven replicated
    /// logs only; empty otherwise), merged over processes in index order.
    pub service: ServiceStats,
    pub trace_hash: u64,
    pub trace_events: Vec<crate::TimedEvent>,
    pub events_processed: u64,
    pub end_time: u64,
    pub sm_objects: usize,
    pub sm_proposes: u64,
}

/// Runs a spec under the given scheduler. The scheduler is borrowed so
/// callers (the explorer) can read back what it recorded.
pub(crate) fn conduct<S: Scheduler>(spec: RunSpec, scheduler: &mut S) -> RawOutcome {
    let n = spec.partition.n();
    assert_eq!(
        spec.proposals.len(),
        n,
        "need one proposal per process (got {} for n={n})",
        spec.proposals.len()
    );

    let shared = Arc::new(Shared {
        partition: spec.partition.clone(),
        costs: spec.costs,
        queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
        outbox: Mutex::new(Vec::new()),
        crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        stopped: AtomicBool::new(false),
        wake_time: (0..n).map(|_| AtomicU64::new(0)).collect(),
        memory: MemoryBank::for_partition(&spec.partition),
        counters: (0..n).map(|_| Arc::new(Counters::new())).collect(),
        service: (0..n).map(|_| Mutex::new(ServiceStats::new())).collect(),
        seed: spec.seed,
        common_coin: Arc::clone(&spec.common_coin),
        observer: spec.observer.clone(),
        trace: Mutex::new(TraceRecorder::new(spec.keep_trace)),
        crash_plan: spec.crash_plan.clone(),
        churn_planned: (0..n)
            .map(|i| spec.churn.event(ProcessId(i)).is_some())
            .collect(),
    });

    // Schedule the timed crashes up front.
    for (pid, trig) in spec.crash_plan.iter() {
        if let CrashTrigger::AtTime(t) = trig {
            scheduler.push_crash(pid, t.ticks());
        }
    }
    // Churn leaves are crashes (identical semantics to the peers);
    // rejoins restart the process with a fresh seat.
    for (pid, e) in spec.churn.iter() {
        scheduler.push_crash(pid, e.leave.ticks());
        if let Some(r) = e.rejoin {
            scheduler.push_rejoin(pid, r.ticks());
        }
    }

    // Spawn one thread per process; each waits for its first baton.
    let mut seats: Vec<Seat> = Vec::with_capacity(n);
    for i in 0..n {
        seats.push(spawn_seat(
            i,
            0,
            spec.seed,
            &shared,
            &spec.body,
            spec.config,
            spec.proposals[i],
        ));
    }

    let run_burst = |seats: &mut Vec<Seat>, shared: &Arc<Shared>, pid: usize| {
        if seats[pid].finished.is_some() {
            return;
        }
        seats[pid]
            .go_tx
            .send(())
            .expect("process thread exited without yielding");
        match seats[pid].yield_rx.recv() {
            Ok(YieldMsg::Blocked) => {}
            Ok(YieldMsg::Finished { result, clock }) => {
                let event = match &result {
                    Ok(d) => TraceEvent::Decided {
                        who: ProcessId(pid),
                        decision: *d,
                    },
                    Err(h) => TraceEvent::Halted {
                        who: ProcessId(pid),
                        halt: *h,
                    },
                };
                shared
                    .trace
                    .lock()
                    .record(VirtualTime::from_ticks(clock), event);
                seats[pid].finished = Some((result, clock));
                if let Some(j) = seats[pid].join.take() {
                    j.join().expect("simulated process panicked");
                }
            }
            Err(_) => {
                // Thread died without a final message: propagate its panic.
                if let Some(j) = seats[pid].join.take() {
                    if let Err(payload) = j.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                panic!("simulated process p{} exited abnormally", pid + 1);
            }
        }
    };

    let drain_outbox = |shared: &Arc<Shared>, scheduler: &mut S| {
        let msgs: Vec<OutMsg> = std::mem::take(&mut *shared.outbox.lock());
        for m in msgs {
            scheduler.push_send(m.from, m.to, m.msg, m.sent_at);
        }
    };

    // Initial bursts, in process order.
    for pid in 0..n {
        run_burst(&mut seats, &shared, pid);
        drain_outbox(&shared, scheduler);
    }

    // Main event loop.
    let mut events_processed: u64 = 0;
    let mut end_time: u64 = 0;
    while events_processed < spec.max_events {
        let Some(ev) = scheduler.pop() else { break };
        events_processed += 1;
        match ev {
            SchedEvent::Deliver { to, from, msg, at } => {
                end_time = end_time.max(at);
                let i = to.index();
                if seats[i].finished.is_some() || shared.crashed[i].load(Ordering::SeqCst) {
                    continue; // dropped on the floor
                }
                shared.trace.lock().record(
                    VirtualTime::from_ticks(at),
                    TraceEvent::Deliver { who: to, from, msg },
                );
                shared.queues[i].lock().push_back(Msg { from, kind: msg });
                shared.wake_time[i].fetch_max(at, Ordering::SeqCst);
                run_burst(&mut seats, &shared, i);
                drain_outbox(&shared, scheduler);
            }
            SchedEvent::Crash { pid, at } => {
                end_time = end_time.max(at);
                let i = pid.index();
                if seats[i].finished.is_some() {
                    continue;
                }
                shared.crashed[i].store(true, Ordering::SeqCst);
                shared
                    .trace
                    .lock()
                    .record(VirtualTime::from_ticks(at), TraceEvent::Crash { who: pid });
                shared.wake_time[i].fetch_max(at, Ordering::SeqCst);
                run_burst(&mut seats, &shared, i);
                drain_outbox(&shared, scheduler);
            }
            SchedEvent::Rejoin { pid, at } => {
                end_time = end_time.max(at);
                let i = pid.index();
                // A process that decided before its scheduled leave
                // ignored the leave; it ignores the rejoin too.
                if !matches!(seats[i].finished, Some((Err(Halt::Crashed), _))) {
                    continue;
                }
                shared
                    .trace
                    .lock()
                    .record(VirtualTime::from_ticks(at), TraceEvent::Rejoin { who: pid });
                let crash_clock = seats[i].finished.as_ref().map(|(_, c)| *c).unwrap_or(0);
                let clock = crash_clock.max(at);
                shared.crashed[i].store(false, Ordering::SeqCst);
                shared.queues[i].lock().clear();
                shared.wake_time[i].store(clock, Ordering::SeqCst);
                // Fresh seat: new mailbox, rejoin-domain coin stream,
                // original proposal; metric counters (Arc) persist.
                seats[i] = spawn_seat(
                    i,
                    clock,
                    rejoin_coin_seed(spec.seed),
                    &shared,
                    &spec.body,
                    spec.config,
                    spec.proposals[i],
                );
                run_burst(&mut seats, &shared, i);
                drain_outbox(&shared, scheduler);
            }
        }
    }

    // Quiescent or budget exhausted: stop the stragglers.
    shared.stopped.store(true, Ordering::SeqCst);
    for pid in 0..n {
        run_burst(&mut seats, &shared, pid);
    }

    let results: Vec<(Result<Decision, Halt>, u64)> = seats
        .iter_mut()
        .map(|s| s.finished.take().expect("all processes have yielded"))
        .collect();
    for s in seats.iter_mut() {
        if let Some(j) = s.join.take() {
            j.join().expect("simulated process panicked");
        }
    }

    let counters = shared.counters.iter().map(|c| c.snapshot()).collect();
    let mut service = ServiceStats::new();
    for s in &shared.service {
        service.merge(&s.lock());
    }
    let trace = std::mem::replace(&mut *shared.trace.lock(), TraceRecorder::new(false));
    let trace_hash = trace.hash();
    let end_time = end_time.max(results.iter().map(|(_, c)| *c).max().unwrap_or(0));
    RawOutcome {
        results,
        counters,
        service,
        trace_hash,
        trace_events: trace.into_events(),
        events_processed,
        end_time,
        sm_objects: shared.memory.total_objects(),
        sm_proposes: shared.memory.total_proposes(),
    }
}
