//! Multivalued consensus from binary consensus.
//!
//! The paper's algorithms decide a *bit*. Replicated services need to
//! agree on arbitrary values, so we implement the classic reduction from
//! multivalued to binary consensus (in the style of Mostéfaoui–Raynal),
//! adapted to the hybrid model's primitives:
//!
//! 1. **Dissemination with eager relay.** Every process broadcasts its
//!    proposal as an `APP` message. On *first* receipt of a proposal, a
//!    process re-broadcasts it before using it — so if any process ever
//!    *uses* the fact "I hold `p_k`'s proposal" (by voting 1 below), that
//!    process has already completed a relay broadcast, and reliable
//!    channels deliver the proposal everywhere.
//! 2. **Stage loop.** Stages `s = 1, 2, …` consider proposer
//!    `k = (s-1) mod n` and run one *binary* hybrid consensus instance on
//!    the question "shall we adopt `p_k`'s proposal?", each process voting
//!    1 iff it holds that proposal. The first stage that decides 1 fixes
//!    the outcome: everyone waits (if needed) for the relayed proposal and
//!    decides it.
//!
//! Termination: eventually all correct processes hold all correct
//! proposals (eager relay), so a stage naming a correct proposer gets
//! unanimous 1-votes, and binary validity decides 1. Agreement and
//! validity follow from binary agreement plus the relay argument above.
//! The binary instances inherit the hybrid model's fault tolerance — with
//! a majority cluster, multivalued consensus also survives `n - 1`
//! crashes.

use ofa_core::{
    ben_or_hybrid_instance, common_coin_hybrid_instance, Algorithm, Bit, Env, Halt, Mailbox,
    MsgKind, Payload, ProtocolConfig,
};
use ofa_topology::ProcessId;
use std::collections::HashMap;

/// Binary-instance ids used by one multivalued instance `j`:
/// `j * INSTANCE_STRIDE + s` for stage `s >= 1`; the `APP` dissemination
/// uses instance `j * INSTANCE_STRIDE` itself.
pub const INSTANCE_STRIDE: u64 = 1 << 20;

/// Outcome of a multivalued consensus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvDecision {
    /// The decided proposal.
    pub payload: Payload,
    /// The proposer whose value was adopted.
    pub proposer: ProcessId,
    /// How many binary stages were needed.
    pub stages: u64,
}

/// Runs multivalued consensus instance `mv_index` proposing `proposal`.
///
/// All processes of the run must use the same `mv_index` and `algorithm`,
/// execute their multivalued instances in increasing `mv_index` order, and
/// share `mailbox` across them.
///
/// # Errors
///
/// Propagates the binary layer's [`Halt`] (crash, round/stage budget).
pub fn multivalued_propose(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    mv_index: u64,
    proposal: Payload,
    algorithm: Algorithm,
    cfg: &ProtocolConfig,
) -> Result<MvDecision, Halt> {
    let n = env.partition().n();
    let me = env.me();
    let base = mv_index * INSTANCE_STRIDE;

    // Known proposals, by proposer. Own proposal is known immediately;
    // everything known has already been (re)broadcast — the eager-relay
    // invariant.
    let mut have: HashMap<ProcessId, Payload> = HashMap::new();
    env.broadcast(MsgKind::App {
        instance: base,
        seq: me.index() as u64,
        payload: proposal,
    })?;
    have.insert(me, proposal);

    let mut stage: u64 = 0;
    loop {
        stage += 1;
        if let Some(max) = cfg.max_rounds {
            // Interpret the round budget also as a stage budget so a
            // doomed run terminates.
            if stage > max.max(4 * n as u64) {
                return Err(Halt::Stopped);
            }
        }
        // Absorb any proposals that arrived during earlier stages,
        // relaying each new one (eager relay) before it can influence a
        // vote.
        absorb_apps(env, mailbox, base, &mut have)?;

        let k = ProcessId(((stage - 1) as usize) % n);
        let vote = Bit::from(have.contains_key(&k));
        let instance = base + stage;
        let decision = match algorithm {
            Algorithm::LocalCoin => ben_or_hybrid_instance(env, mailbox, instance, vote, cfg)?,
            Algorithm::CommonCoin => {
                common_coin_hybrid_instance(env, mailbox, instance, vote, cfg)?
            }
        };
        if decision.value == Bit::One {
            // Someone voted 1, so they completed a relay of p_k's proposal
            // before voting: it is on the wire to us. Wait for it.
            while !have.contains_key(&k) {
                mailbox.pump(env)?;
                absorb_apps(env, mailbox, base, &mut have)?;
            }
            return Ok(MvDecision {
                payload: have[&k],
                proposer: k,
                stages: stage,
            });
        }
    }
}

/// Moves stashed APP messages of this multivalued instance into `have`,
/// re-broadcasting first-seen proposals (the eager relay).
fn absorb_apps(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    base: u64,
    have: &mut HashMap<ProcessId, Payload>,
) -> Result<(), Halt> {
    let apps = mailbox.take_apps();
    for app in apps {
        if app.instance != base {
            // A proposal of another multivalued instance: re-stash it by
            // pretending it was never taken (instances are processed in
            // order, so it belongs to a future instance).
            // Note: take_apps drained the stash, so push it back through
            // the public surface by keeping it in `leftover`.
            // (handled below)
            continue_later(mailbox, app);
            continue;
        }
        let proposer = ProcessId(app.seq as usize);
        if let std::collections::hash_map::Entry::Vacant(slot) = have.entry(proposer) {
            // Relay before recording: the eager-relay invariant.
            env.broadcast(MsgKind::App {
                instance: app.instance,
                seq: app.seq,
                payload: app.payload,
            })?;
            slot.insert(app.payload);
        }
    }
    Ok(())
}

/// Puts an APP message of a different multivalued instance back into the
/// mailbox stash.
fn continue_later(mailbox: &mut Mailbox, app: ofa_core::AppMsg) {
    mailbox.stash_app(app);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_leaves_room_for_a_million_stages() {
        const { assert!(INSTANCE_STRIDE >= 1 << 20) }
    }
}
