//! # `ofa-smr` — replicated services on hybrid-model consensus
//!
//! The paper closes by inviting "the scalability benefits of the hybrid
//! communication model for other distributed computing problems". This
//! crate takes the invitation for the canonical one — state machine
//! replication:
//!
//! * [`multivalued_propose`] (re-exported from `ofa-core`, which also
//!   hosts the resumable [`ofa_core::sm::MultivaluedSm`] /
//!   [`ofa_core::sm::LogSm`] machines) — multivalued consensus from the
//!   paper's *binary* algorithms (reduction with relay-on-first-use; see
//!   its module docs for the liveness argument),
//! * [`Command`] / [`KvState`] — a deterministic key-value state machine
//!   with compact payload encoding,
//! * [`LogCollector`] / [`run_replicated_kv`] — replicated logs as
//!   serializable [`ofa_scenario::Body::ReplicatedLog`] scenarios: slot
//!   `j` is multivalued instance `j`; identical logs yield identical
//!   states, verified by state digests. Runs on either execution engine;
//!   the event-driven default scales to thousands of replicas (the
//!   `smrscale` experiment).
//!
//! Everything inherits the hybrid model's fault tolerance: with a majority
//! cluster, the replicated KV store keeps committing despite `n - 1`
//! crashes concentrated outside one surviving process of that cluster.
//!
//! # Examples
//!
//! ```
//! use ofa_core::Algorithm;
//! use ofa_sim::CrashPlan;
//! use ofa_smr::{run_replicated_kv, Command};
//! use ofa_topology::Partition;
//!
//! let commands = vec![
//!     vec![Command::put("a", "1")],
//!     vec![Command::put("b", "2")],
//!     vec![Command::put("c", "3")],
//! ];
//! let (reports, out) = run_replicated_kv(
//!     Partition::from_sizes(&[2, 1]).unwrap(),
//!     commands,
//!     2,
//!     Algorithm::CommonCoin,
//!     7,
//!     CrashPlan::new(),
//! );
//! assert!(out.all_correct_decided);
//! let digest = reports[0].as_ref().unwrap().digest;
//! assert!(reports.iter().flatten().all(|r| r.digest == digest));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kv;
mod replica;

pub use kv::{Command, EncodeError, KvState};
pub use ofa_core::{multivalued_propose, MvDecision, INSTANCE_STRIDE};
pub use replica::{encode_queues, run_replicated_kv, LogCollector, ReplicaReport};
