//! A replicated key-value state machine.
//!
//! Commands are the unit of agreement: every replica applies the *decided*
//! command sequence to its local [`KvState`], so identical logs yield
//! identical states (the standard state-machine-replication argument).

use ofa_core::Payload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A key-value command.
///
/// # Examples
///
/// ```
/// use ofa_smr::Command;
///
/// let cmd = Command::put("user", "ada");
/// let payload = cmd.encode().unwrap();
/// assert_eq!(Command::decode(&payload).unwrap(), cmd);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Bind `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: String,
    },
    /// Do nothing (useful as a heartbeat / filler proposal).
    Noop,
}

impl Command {
    /// Convenience constructor for [`Command::Put`].
    pub fn put(key: &str, value: &str) -> Self {
        Command::Put {
            key: key.to_string(),
            value: value.to_string(),
        }
    }

    /// Convenience constructor for [`Command::Del`].
    pub fn del(key: &str) -> Self {
        Command::Del {
            key: key.to_string(),
        }
    }

    /// Encodes into a consensus [`Payload`] (compact, non-JSON framing to
    /// fit the 31-byte inline limit).
    ///
    /// # Errors
    ///
    /// [`EncodeError::TooLong`] if the framed command exceeds the payload
    /// capacity, [`EncodeError::BadChar`] if a key/value contains the `\x1f`
    /// separator.
    pub fn encode(&self) -> Result<Payload, EncodeError> {
        const SEP: char = '\x1f';
        let framed = match self {
            Command::Put { key, value } => {
                if key.contains(SEP) || value.contains(SEP) {
                    return Err(EncodeError::BadChar);
                }
                format!("P{SEP}{key}{SEP}{value}")
            }
            Command::Del { key } => {
                if key.contains(SEP) {
                    return Err(EncodeError::BadChar);
                }
                format!("D{SEP}{key}")
            }
            Command::Noop => "N".to_string(),
        };
        Payload::from_bytes(framed.as_bytes()).ok_or(EncodeError::TooLong)
    }

    /// Decodes a payload produced by [`Command::encode`].
    ///
    /// # Errors
    ///
    /// [`EncodeError::Malformed`] if the payload does not parse.
    pub fn decode(payload: &Payload) -> Result<Command, EncodeError> {
        let text = std::str::from_utf8(payload.as_bytes()).map_err(|_| EncodeError::Malformed)?;
        let mut parts = text.split('\x1f');
        match parts.next() {
            Some("P") => {
                let key = parts.next().ok_or(EncodeError::Malformed)?;
                let value = parts.next().ok_or(EncodeError::Malformed)?;
                Ok(Command::put(key, value))
            }
            Some("D") => {
                let key = parts.next().ok_or(EncodeError::Malformed)?;
                Ok(Command::del(key))
            }
            Some("N") => Ok(Command::Noop),
            _ => Err(EncodeError::Malformed),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Put { key, value } => write!(f, "put {key}={value}"),
            Command::Del { key } => write!(f, "del {key}"),
            Command::Noop => write!(f, "noop"),
        }
    }
}

/// Command encoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The framed command exceeds the 31-byte payload capacity.
    TooLong,
    /// A key or value contains the reserved separator byte.
    BadChar,
    /// The payload does not decode to a command.
    Malformed,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLong => write!(f, "command exceeds payload capacity"),
            EncodeError::BadChar => write!(f, "command contains a reserved separator"),
            EncodeError::Malformed => write!(f, "payload is not a valid command"),
        }
    }
}

impl Error for EncodeError {}

/// The deterministic key-value state machine.
///
/// # Examples
///
/// ```
/// use ofa_smr::{Command, KvState};
///
/// let mut kv = KvState::new();
/// kv.apply(&Command::put("a", "1"));
/// kv.apply(&Command::put("a", "2"));
/// assert_eq!(kv.get("a"), Some("2"));
/// kv.apply(&Command::del("a"));
/// assert_eq!(kv.get("a"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvState {
    entries: BTreeMap<String, String>,
    applied: u64,
}

impl KvState {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one command.
    pub fn apply(&mut self, cmd: &Command) {
        self.applied += 1;
        match cmd {
            Command::Put { key, value } => {
                self.entries.insert(key.clone(), value.clone());
            }
            Command::Del { key } => {
                self.entries.remove(key);
            }
            Command::Noop => {}
        }
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no key is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of commands applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// A deterministic digest of the state (for cross-replica comparison).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (k, v) in &self.entries {
            fold(k.as_bytes());
            fold(&[0xFF]);
            fold(v.as_bytes());
            fold(&[0xFE]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        for cmd in [
            Command::put("k", "v"),
            Command::put("", ""),
            Command::del("key-9"),
            Command::Noop,
        ] {
            let p = cmd.encode().unwrap();
            assert_eq!(Command::decode(&p).unwrap(), cmd);
        }
    }

    #[test]
    fn oversized_command_rejected() {
        let cmd = Command::put("a-rather-long-key", "a-rather-long-value");
        assert_eq!(cmd.encode(), Err(EncodeError::TooLong));
    }

    #[test]
    fn reserved_separator_rejected() {
        let cmd = Command::put("a\x1fb", "v");
        assert_eq!(cmd.encode(), Err(EncodeError::BadChar));
    }

    #[test]
    fn malformed_payload_rejected() {
        let p = Payload::from_bytes(b"garbage").unwrap();
        assert_eq!(Command::decode(&p), Err(EncodeError::Malformed));
        let p = Payload::from_bytes(b"P\x1fonly-key").unwrap();
        assert_eq!(Command::decode(&p), Err(EncodeError::Malformed));
    }

    #[test]
    fn state_machine_is_deterministic() {
        let script = [
            Command::put("x", "1"),
            Command::put("y", "2"),
            Command::del("x"),
            Command::Noop,
            Command::put("y", "3"),
        ];
        let mut a = KvState::new();
        let mut b = KvState::new();
        for c in &script {
            a.apply(c);
            b.apply(c);
        }
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.get("y"), Some("3"));
        assert_eq!(a.get("x"), None);
        assert_eq!(a.len(), 1);
        assert_eq!(a.applied(), 5);
    }

    #[test]
    fn digest_differs_on_different_states() {
        let mut a = KvState::new();
        a.apply(&Command::put("k", "1"));
        let mut b = KvState::new();
        b.apply(&Command::put("k", "2"));
        assert_ne!(a.digest(), b.digest());
    }
}
