//! Replicated-log replicas: repeated multivalued consensus driving the
//! key-value state machine.
//!
//! Slot `j` of the log is multivalued consensus instance `j`. Each replica
//! proposes its next pending command for every slot; the decided command
//! (some replica's proposal) is appended and applied. Identical logs ⇒
//! identical states.
//!
//! The execution itself is the serializable
//! [`ofa_scenario::Body::ReplicatedLog`] workload — the engine-agnostic
//! replica loop lives in `ofa-core` ([`ofa_core::run_replicated_log`]
//! blocking, [`ofa_core::sm::LogSm`] event-driven), so full replicated-KV
//! runs execute on any backend and *scale on the event-driven engine*
//! (`n >= 5 000`, the `smrscale` experiment). This module adds the KV
//! interpretation: command encoding on the way in, and a
//! [`LogCollector`] observer that reconstructs each replica's committed
//! log, state, and digest from the [`ofa_core::ObsEvent::MvDecided`]
//! stream on the way out.

use crate::{Command, KvState};
use ofa_core::{Algorithm, MvDecision, ObsEvent, Observer, Payload};
use ofa_scenario::{Backend, Outcome, Scenario};
use ofa_topology::{Partition, ProcessId};
use parking_lot::Mutex;
use std::sync::Arc;

/// The outcome of one replica's run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaReport {
    /// The decided log (one command per slot).
    pub log: Vec<Command>,
    /// The proposer adopted in each slot.
    pub proposers: Vec<ProcessId>,
    /// Binary stages used per slot.
    pub stages: Vec<u64>,
    /// The final state digest.
    pub digest: u64,
    /// The final state.
    pub state: KvState,
}

/// An [`Observer`] that reconstructs per-replica committed logs from the
/// [`ObsEvent::MvDecided`] stream — works identically on the simulator
/// (either engine) and on the real-thread runtime, since all of them
/// route protocol observations through the same hook.
///
/// # Examples
///
/// See [`run_replicated_kv`], which wires a collector into a
/// [`Body::ReplicatedLog`](ofa_scenario::Body::ReplicatedLog) scenario.
#[derive(Debug)]
pub struct LogCollector {
    slots: Mutex<Vec<Vec<MvDecision>>>,
}

impl LogCollector {
    /// A collector for `n` replicas.
    pub fn new(n: usize) -> Self {
        LogCollector {
            slots: Mutex::new(vec![Vec::new(); n]),
        }
    }

    /// The committed slots observed for replica `i`, in slot order.
    pub fn committed(&self, i: ProcessId) -> Vec<MvDecision> {
        self.slots.lock()[i.index()].clone()
    }

    /// Builds replica `i`'s report, provided it committed all `slots`
    /// slots (crashed/stopped replicas yield `None`).
    pub fn report(&self, i: ProcessId, slots: u64) -> Option<ReplicaReport> {
        let committed = self.committed(i);
        if committed.len() as u64 != slots {
            return None;
        }
        let mut state = KvState::new();
        let mut log = Vec::with_capacity(committed.len());
        let mut proposers = Vec::with_capacity(committed.len());
        let mut stages = Vec::with_capacity(committed.len());
        for mv in &committed {
            let cmd = Command::decode(&mv.payload).expect("committed payload is a valid command");
            state.apply(&cmd);
            log.push(cmd);
            proposers.push(mv.proposer);
            stages.push(mv.stages);
        }
        Some(ReplicaReport {
            log,
            proposers,
            stages,
            digest: state.digest(),
            state,
        })
    }
}

impl Observer for LogCollector {
    fn on_event(&self, who: ProcessId, event: &ObsEvent) {
        if let ObsEvent::MvDecided {
            mv_index,
            proposer,
            payload,
            stages,
        } = *event
        {
            let mut slots = self.slots.lock();
            let mine = &mut slots[who.index()];
            debug_assert_eq!(
                mine.len() as u64,
                mv_index,
                "slots commit in order at each replica"
            );
            mine.push(MvDecision {
                payload,
                proposer,
                stages,
            });
        }
    }
}

/// Encodes per-replica command queues into the payload queues of a
/// [`Body::ReplicatedLog`](ofa_scenario::Body::ReplicatedLog) workload.
/// Empty queues propose [`Command::Noop`] so decoded logs stay
/// well-formed.
///
/// # Panics
///
/// Panics if a command exceeds the payload limit (see
/// [`Command::encode`]).
pub fn encode_queues(commands: &[Vec<Command>]) -> Vec<Vec<Payload>> {
    commands
        .iter()
        .map(|queue| {
            if queue.is_empty() {
                vec![Command::Noop
                    .encode()
                    .expect("Noop always fits the payload limit")]
            } else {
                queue
                    .iter()
                    .map(|c| {
                        c.encode()
                            .expect("replica commands must fit the payload limit")
                    })
                    .collect()
            }
        })
        .collect()
}

/// Convenience: run a replicated KV fleet on the simulator (on the
/// scenario's default engine — event-driven) and collect the per-replica
/// reports.
///
/// Returns the per-process reports (crashed/stopped processes yield
/// `None`) and the unified outcome.
pub fn run_replicated_kv(
    partition: Partition,
    commands: Vec<Vec<Command>>,
    slots: usize,
    algorithm: Algorithm,
    seed: u64,
    crashes: ofa_scenario::CrashPlan,
) -> (Vec<Option<ReplicaReport>>, Outcome) {
    assert_eq!(
        partition.n(),
        commands.len(),
        "one command queue per process"
    );
    let n = partition.n();
    let collector = Arc::new(LogCollector::new(n));
    let outcome = ofa_sim::Sim.run(
        &Scenario::new(partition, algorithm)
            .replicated_log(algorithm, slots as u64, encode_queues(&commands))
            .crashes(crashes)
            .seed(seed)
            .observer(Arc::clone(&collector) as Arc<dyn Observer>),
    );
    let reports = (0..n)
        .map(|i| collector.report(ProcessId(i), slots as u64))
        .collect();
    (reports, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_scenario::{CrashPlan, Engine};

    fn demo_commands(n: usize) -> Vec<Vec<Command>> {
        (0..n)
            .map(|i| {
                vec![
                    Command::put(&format!("k{i}"), &format!("v{i}")),
                    Command::put("shared", &format!("from-p{}", i + 1)),
                ]
            })
            .collect()
    }

    #[test]
    fn replicas_agree_on_log_and_state() {
        let part = Partition::fig1_right();
        let (reports, out) = run_replicated_kv(
            part,
            demo_commands(7),
            4,
            Algorithm::CommonCoin,
            11,
            CrashPlan::new(),
        );
        assert!(out.all_correct_decided);
        assert_eq!(
            out.engine_used,
            Some(Engine::EventDriven),
            "replicated KV runs on the scalable engine by default"
        );
        let first = reports[0].as_ref().expect("p1 completed");
        assert_eq!(first.log.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            let r = r
                .as_ref()
                .unwrap_or_else(|| panic!("p{} incomplete", i + 1));
            assert_eq!(r.log, first.log, "p{} log diverged", i + 1);
            assert_eq!(r.digest, first.digest, "p{} state diverged", i + 1);
            assert_eq!(r.proposers, first.proposers);
        }
        // Validity: every decided command was someone's proposal.
        let all_proposals: Vec<Command> = demo_commands(7).concat();
        for cmd in &first.log {
            assert!(all_proposals.contains(cmd), "foreign command {cmd}");
        }
    }

    #[test]
    fn survives_crashes_outside_majority_cluster() {
        // Fig 1 right: crash p1 and p6; P[2] keeps everyone alive.
        let part = Partition::fig1_right();
        let crashes = CrashPlan::new()
            .crash_at_start(ProcessId(0))
            .crash_at_start(ProcessId(5));
        let (reports, out) =
            run_replicated_kv(part, demo_commands(7), 3, Algorithm::LocalCoin, 5, crashes);
        assert!(out.all_correct_decided);
        let survivors: Vec<&ReplicaReport> = reports
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0usize, 5].contains(i))
            .map(|(_, r)| r.as_ref().expect("survivor completed"))
            .collect();
        let first = survivors[0];
        for r in &survivors {
            assert_eq!(r.log, first.log);
            assert_eq!(r.digest, first.digest);
        }
    }

    #[test]
    fn empty_queues_commit_noops() {
        let part = Partition::even(4, 2);
        let (reports, out) = run_replicated_kv(
            part,
            vec![Vec::new(); 4],
            2,
            Algorithm::CommonCoin,
            3,
            CrashPlan::new(),
        );
        assert!(out.all_correct_decided);
        let r = reports[0].as_ref().unwrap();
        assert!(r.log.iter().all(|c| *c == Command::Noop));
        assert!(r.state.is_empty());
    }

    #[test]
    fn reports_match_on_both_engines() {
        // The collector sees the same MvDecided stream from the blocking
        // bodies (conductor) and the state machines (event engine).
        let part = Partition::even(5, 2);
        let queues = encode_queues(&demo_commands(5));
        let base = Scenario::new(part, Algorithm::LocalCoin)
            .replicated_log(Algorithm::LocalCoin, 3, queues)
            .seed(21);
        let mut outputs = Vec::new();
        for engine in [Engine::Threads, Engine::EventDriven] {
            let collector = Arc::new(LogCollector::new(5));
            let out = ofa_sim::Sim.run(
                &base
                    .clone()
                    .engine(engine)
                    .observer(Arc::clone(&collector) as Arc<dyn Observer>),
            );
            assert!(out.all_correct_decided);
            assert_eq!(out.engine_used, Some(engine));
            outputs.push((
                out.trace_hash,
                (0..5)
                    .map(|i| collector.report(ProcessId(i), 3))
                    .collect::<Vec<_>>(),
            ));
        }
        assert_eq!(outputs[0], outputs[1]);
    }
}
