//! A replicated-log replica: repeated multivalued consensus driving the
//! key-value state machine.
//!
//! Slot `j` of the log is multivalued consensus instance `j`. Each replica
//! proposes its next pending command for every slot; the decided command
//! (some replica's proposal) is appended and applied. Identical logs ⇒
//! identical states.
//!
//! The replica runs as an [`ofa_scenario::ProcessBody`], so full
//! replicated-log executions run on any backend — and enjoy the
//! simulator's determinism, crash injection, and trace hashing there.

use crate::{multivalued_propose, Command, KvState, MvDecision};
use ofa_core::{Algorithm, Bit, Decision, Env, Halt, Mailbox, Payload, ProtocolConfig};
use ofa_scenario::ProcessBody;
use ofa_topology::ProcessId;
use parking_lot::Mutex;
use std::sync::Arc;

/// The outcome of one replica's run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaReport {
    /// The decided log (one command per slot).
    pub log: Vec<Command>,
    /// The proposer adopted in each slot.
    pub proposers: Vec<ProcessId>,
    /// Binary stages used per slot.
    pub stages: Vec<u64>,
    /// The final state digest.
    pub digest: u64,
    /// The final state.
    pub state: KvState,
}

/// A fleet of replicas for one simulated run: per-process command queues
/// in, per-process reports out.
///
/// # Examples
///
/// See `ofa-smr`'s integration tests and the `geo_replicated_kv` example;
/// the replica needs a simulator run to do anything.
#[derive(Debug)]
pub struct ReplicaGroup {
    commands: Vec<Vec<Command>>,
    slots: usize,
    algorithm: Algorithm,
    reports: Mutex<Vec<Option<ReplicaReport>>>,
}

impl ReplicaGroup {
    /// Creates a group where process `i` wants to commit `commands[i]`
    /// (cycled if shorter than `slots`), agreeing on `slots` log slots.
    pub fn new(commands: Vec<Vec<Command>>, slots: usize, algorithm: Algorithm) -> Self {
        let n = commands.len();
        ReplicaGroup {
            commands,
            slots,
            algorithm,
            reports: Mutex::new(vec![None; n]),
        }
    }

    /// The report of process `i`, if it completed.
    pub fn report(&self, i: ProcessId) -> Option<ReplicaReport> {
        self.reports.lock()[i.index()].clone()
    }

    /// All completed reports.
    pub fn reports(&self) -> Vec<Option<ReplicaReport>> {
        self.reports.lock().clone()
    }

    /// The command process `i` proposes for `slot`.
    fn proposal_for(&self, i: ProcessId, slot: usize) -> Command {
        let mine = &self.commands[i.index()];
        if mine.is_empty() {
            Command::Noop
        } else {
            mine[slot % mine.len()].clone()
        }
    }
}

impl ProcessBody for ReplicaGroup {
    fn run(
        &self,
        env: &mut dyn Env,
        _proposal: Bit,
        cfg: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        let me = env.me();
        let mut mailbox = Mailbox::new();
        let mut state = KvState::new();
        let mut log = Vec::with_capacity(self.slots);
        let mut proposers = Vec::with_capacity(self.slots);
        let mut stages = Vec::with_capacity(self.slots);
        for slot in 0..self.slots {
            let cmd = self.proposal_for(me, slot);
            let payload: Payload = cmd
                .encode()
                .expect("replica commands must fit the payload limit");
            let MvDecision {
                payload: decided,
                proposer,
                stages: used,
            } = multivalued_propose(env, &mut mailbox, slot as u64, payload, self.algorithm, cfg)?;
            let decided_cmd =
                Command::decode(&decided).expect("decided payload is a valid command");
            state.apply(&decided_cmd);
            log.push(decided_cmd);
            proposers.push(proposer);
            stages.push(used);
        }
        self.reports.lock()[me.index()] = Some(ReplicaReport {
            log,
            proposers,
            stages,
            digest: state.digest(),
            state,
        });
        // The ProcessBody contract wants a binary decision; report the
        // digest's low bit so outcomes still carry a cross-checkable value.
        Ok(Decision {
            value: Bit::from(self.reports.lock()[me.index()].as_ref().unwrap().digest & 1 == 1),
            round: self.slots as u64,
            relayed: false,
        })
    }
}

/// Convenience: run a replicated KV fleet on the simulator.
///
/// Returns the per-process reports (crashed/stopped processes yield
/// `None`) and the simulator outcome.
pub fn run_replicated_kv(
    partition: ofa_topology::Partition,
    commands: Vec<Vec<Command>>,
    slots: usize,
    algorithm: Algorithm,
    seed: u64,
    crashes: ofa_scenario::CrashPlan,
) -> (Vec<Option<ReplicaReport>>, ofa_scenario::Outcome) {
    use ofa_scenario::Backend;
    assert_eq!(
        partition.n(),
        commands.len(),
        "one command queue per process"
    );
    let group = Arc::new(ReplicaGroup::new(commands, slots, algorithm));
    let outcome = ofa_sim::Sim.run(
        &ofa_scenario::Scenario::new(partition, algorithm)
            .custom_body(Arc::clone(&group) as Arc<dyn ProcessBody>)
            .crashes(crashes)
            .seed(seed),
    );
    (group.reports(), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_sim::CrashPlan;
    use ofa_topology::Partition;

    fn demo_commands(n: usize) -> Vec<Vec<Command>> {
        (0..n)
            .map(|i| {
                vec![
                    Command::put(&format!("k{i}"), &format!("v{i}")),
                    Command::put("shared", &format!("from-p{}", i + 1)),
                ]
            })
            .collect()
    }

    #[test]
    fn replicas_agree_on_log_and_state() {
        let part = Partition::fig1_right();
        let (reports, out) = run_replicated_kv(
            part,
            demo_commands(7),
            4,
            Algorithm::CommonCoin,
            11,
            CrashPlan::new(),
        );
        assert!(out.all_correct_decided);
        let first = reports[0].as_ref().expect("p1 completed");
        assert_eq!(first.log.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            let r = r
                .as_ref()
                .unwrap_or_else(|| panic!("p{} incomplete", i + 1));
            assert_eq!(r.log, first.log, "p{} log diverged", i + 1);
            assert_eq!(r.digest, first.digest, "p{} state diverged", i + 1);
            assert_eq!(r.proposers, first.proposers);
        }
        // Validity: every decided command was someone's proposal.
        let all_proposals: Vec<Command> = demo_commands(7).concat();
        for cmd in &first.log {
            assert!(all_proposals.contains(cmd), "foreign command {cmd}");
        }
    }

    #[test]
    fn survives_crashes_outside_majority_cluster() {
        // Fig 1 right: crash p1 and p6; P[2] keeps everyone alive.
        let part = Partition::fig1_right();
        let crashes = CrashPlan::new()
            .crash_at_start(ProcessId(0))
            .crash_at_start(ProcessId(5));
        let (reports, out) =
            run_replicated_kv(part, demo_commands(7), 3, Algorithm::LocalCoin, 5, crashes);
        assert!(out.all_correct_decided);
        let survivors: Vec<&ReplicaReport> = reports
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0usize, 5].contains(i))
            .map(|(_, r)| r.as_ref().expect("survivor completed"))
            .collect();
        let first = survivors[0];
        for r in &survivors {
            assert_eq!(r.log, first.log);
            assert_eq!(r.digest, first.digest);
        }
    }

    #[test]
    fn empty_queues_commit_noops() {
        let part = Partition::even(4, 2);
        let (reports, out) = run_replicated_kv(
            part,
            vec![Vec::new(); 4],
            2,
            Algorithm::CommonCoin,
            3,
            CrashPlan::new(),
        );
        assert!(out.all_correct_decided);
        let r = reports[0].as_ref().unwrap();
        assert!(r.log.iter().all(|c| *c == Command::Noop));
        assert!(r.state.is_empty());
    }
}
