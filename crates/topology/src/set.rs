//! A compact bitset over process indices.
//!
//! The `msg_exchange` communication pattern (Algorithm 1 of the paper)
//! maintains `supporters[v]` sets and repeatedly unions whole clusters into
//! them ("one for all"). [`ProcessSet`] makes those unions word-wise `OR`s.

use crate::ProcessId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of process indices backed by a `u64` bitmap.
///
/// All sets produced by one [`crate::Partition`] share the same universe
/// size `n`; set operations between sets of different universes panic in
/// debug builds and behave as if the smaller universe were padded with
/// zeros in release builds.
///
/// # Examples
///
/// ```
/// use ofa_topology::{ProcessId, ProcessSet};
///
/// let mut s = ProcessSet::empty(7);
/// s.insert(ProcessId(1));
/// s.insert(ProcessId(4));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId(4)));
/// assert!(!s.is_majority_of(7)); // needs at least 4 of 7
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProcessSet {
    n: usize,
    words: Vec<u64>,
}

impl ProcessSet {
    /// Creates an empty set over a universe of `n` processes.
    pub fn empty(n: usize) -> Self {
        let nwords = n.div_ceil(WORD_BITS);
        ProcessSet {
            n,
            words: vec![0; nwords.max(1)],
        }
    }

    /// Creates the full set `{p_1, …, p_n}` (0-based `{0, …, n-1}`).
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(ProcessId(i));
        }
        s
    }

    /// Creates a singleton set `{p}`.
    pub fn singleton(n: usize, p: ProcessId) -> Self {
        let mut s = Self::empty(n);
        s.insert(p);
        s
    }

    /// Builds a set from 0-based indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= n`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, iter: I) -> Self {
        let mut s = Self::empty(n);
        for i in iter {
            s.insert(ProcessId(i));
        }
        s
    }

    /// The universe size this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `p`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= universe()`.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(p.index() < self.n, "{p} out of universe of size {}", self.n);
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= self.n {
            return false;
        }
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        if p.index() >= self.n {
            return false;
        }
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Strict-majority test: `|self| > total / 2` (the paper's `> n/2`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ofa_topology::ProcessSet;
    /// assert!(ProcessSet::from_indices(4, [0, 1, 2]).is_majority_of(4));
    /// assert!(!ProcessSet::from_indices(4, [0, 1]).is_majority_of(4));
    /// ```
    #[inline]
    pub fn is_majority_of(&self, total: usize) -> bool {
        2 * self.len() > total
    }

    /// In-place union (`self ∪= other`). This is the "one for all"
    /// amplification step: adding a whole cluster at once.
    pub fn union_with(&mut self, other: &ProcessSet) {
        debug_assert_eq!(self.n, other.n, "universe mismatch in union");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// In-place intersection (`self ∩= other`).
    pub fn intersect_with(&mut self, other: &ProcessSet) {
        debug_assert_eq!(self.n, other.n, "universe mismatch in intersection");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        for w in self.words.iter_mut().skip(other.words.len()) {
            *w = 0;
        }
    }

    /// In-place difference (`self \= other`).
    pub fn subtract(&mut self, other: &ProcessSet) {
        debug_assert_eq!(self.n, other.n, "universe mismatch in difference");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.subtract(&other.clone());
        out
    }

    /// The complement within the universe.
    pub fn complement(&self) -> ProcessSet {
        let mut out = ProcessSet::full(self.n);
        out.subtract(self);
        out
    }

    /// `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &ProcessSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &ProcessSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter().chain(std::iter::repeat(&0)))
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<ProcessId> {
        self.iter().next()
    }
}

/// Iterator over the members of a [`ProcessSet`] (produced by
/// [`ProcessSet::iter`]).
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a ProcessSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(ProcessId(self.word * WORD_BITS + b));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<T: IntoIterator<Item = ProcessId>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

/// Serialized as `{"n": universe, "members": [indices…]}`.
impl serde::Serialize for ProcessSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("n".to_string(), serde::Value::U64(self.n as u64)),
            (
                "members".to_string(),
                serde::Value::Seq(
                    self.iter()
                        .map(|p| serde::Value::U64(p.index() as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for ProcessSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let n: usize = serde::Deserialize::from_value(
            v.get("n")
                .ok_or_else(|| serde::Error::msg("ProcessSet: missing \"n\""))?,
        )?;
        let members: Vec<usize> = serde::Deserialize::from_value(
            v.get("members")
                .ok_or_else(|| serde::Error::msg("ProcessSet: missing \"members\""))?,
        )?;
        if let Some(&i) = members.iter().find(|&&i| i >= n) {
            return Err(serde::Error::msg(format!(
                "ProcessSet: member {i} out of universe {n}"
            )));
        }
        Ok(ProcessSet::from_indices(n, members))
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = ProcessSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = ProcessSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(ProcessId(69)));
        assert!(!f.contains(ProcessId(70)));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::empty(100);
        assert!(s.insert(ProcessId(99)));
        assert!(!s.insert(ProcessId(99)));
        assert!(s.contains(ProcessId(99)));
        assert!(s.remove(ProcessId(99)));
        assert!(!s.remove(ProcessId(99)));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        ProcessSet::empty(4).insert(ProcessId(4));
    }

    #[test]
    fn union_amplification_shape() {
        // Receiving from p2 of cluster {p2,p3,p4,p5} credits the whole cluster.
        let mut sup = ProcessSet::singleton(7, ProcessId(0));
        let cluster = ProcessSet::from_indices(7, [1, 2, 3, 4]);
        sup.union_with(&cluster);
        assert_eq!(sup.len(), 5);
        assert!(sup.is_majority_of(7));
    }

    #[test]
    fn strict_majority_boundary() {
        // n = 6: 3 is NOT a majority, 4 is.
        assert!(!ProcessSet::from_indices(6, [0, 1, 2]).is_majority_of(6));
        assert!(ProcessSet::from_indices(6, [0, 1, 2, 3]).is_majority_of(6));
        // n = 7: 4 is a majority.
        assert!(ProcessSet::from_indices(7, [0, 1, 2, 3]).is_majority_of(7));
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_indices(10, [0, 1, 2, 3]);
        let b = ProcessSet::from_indices(10, [2, 3, 4, 5]);
        assert_eq!(a.intersection(&b), ProcessSet::from_indices(10, [2, 3]));
        assert_eq!(
            a.union(&b),
            ProcessSet::from_indices(10, [0, 1, 2, 3, 4, 5])
        );
        assert_eq!(a.difference(&b), ProcessSet::from_indices(10, [0, 1]));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn complement_partitions_universe() {
        let a = ProcessSet::from_indices(9, [0, 4, 8]);
        let c = a.complement();
        assert!(a.is_disjoint(&c));
        assert_eq!(a.union(&c), ProcessSet::full(9));
    }

    #[test]
    fn iteration_in_order_across_words() {
        let s = ProcessSet::from_indices(130, [0, 63, 64, 129]);
        let got: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 129]);
        assert_eq!(s.first(), Some(ProcessId(0)));
    }

    #[test]
    fn display_matches_paper_style() {
        let s = ProcessSet::from_indices(7, [1, 2, 3, 4]);
        assert_eq!(s.to_string(), "{p2,p3,p4,p5}");
    }

    #[test]
    fn two_majorities_always_intersect() {
        // The intersection property the paper's WA1/WA2 arguments rely on.
        for n in 1..=64usize {
            for _ in 0..20 {
                // deterministic pseudo-random subsets via a simple LCG
                let mut x = (n as u64) * 2654435761 + 12345;
                let mut nxt = || {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x
                };
                let mut a = ProcessSet::empty(n);
                let mut b = ProcessSet::empty(n);
                for i in 0..n {
                    if nxt() % 2 == 0 {
                        a.insert(ProcessId(i));
                    }
                    if nxt() % 2 == 0 {
                        b.insert(ProcessId(i));
                    }
                }
                if a.is_majority_of(n) && b.is_majority_of(n) {
                    assert!(!a.is_disjoint(&b), "majorities must intersect (n={n})");
                }
            }
        }
    }
}
