//! Topology of the hybrid communication model (Raynal & Cao, ICDCS 2019).
//!
//! The paper partitions `n` asynchronous crash-prone processes into `m`
//! non-empty clusters. Inside a cluster, processes share a memory enriched
//! with `compare&swap`; across the whole system, any pair of processes can
//! exchange messages. This crate provides:
//!
//! * [`ProcessId`] / [`ClusterId`] — strongly-typed indices rendered in the
//!   paper's 1-based style (`p3`, `P[2]`),
//! * [`ProcessSet`] — a bitset tuned for the "one for all" cluster
//!   amplification of the `msg_exchange` pattern,
//! * [`Partition`] — validated cluster decompositions, including both
//!   decompositions of the paper's Figure 1,
//! * [`predicate`] — the main scalability/fault-tolerance property of
//!   §III-B (when does a failure pattern guarantee termination?), the
//!   fault-tolerance frontier, and witness crash sets,
//! * [`MmGraph`] — the uniform shared-memory domains of the m&m comparison
//!   model (§III-C and the appendix, including Figure 2).
//!
//! # Quick example
//!
//! ```
//! use ofa_topology::{predicate, Partition, ProcessSet};
//!
//! // Figure 1 (right): {p1} {p2,p3,p4,p5} {p6,p7}.
//! let part = Partition::fig1_right();
//!
//! // Crash 6 of the 7 processes, keeping only p4 in the majority cluster.
//! let mut crashed = ProcessSet::full(part.n());
//! crashed.remove(ofa_topology::ProcessId(3));
//!
//! // The predicate says consensus still terminates — "one for all".
//! assert!(predicate::guarantees_termination(&part, &crashed));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod ids;
mod mm_graph;
mod partition;
pub mod predicate;
mod set;

pub use error::TopologyError;
pub use ids::{ClusterId, ProcessId};
pub use mm_graph::MmGraph;
pub use partition::Partition;
pub use set::{Iter, ProcessSet};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProcessId>();
        assert_send_sync::<ClusterId>();
        assert_send_sync::<ProcessSet>();
        assert_send_sync::<Partition>();
        assert_send_sync::<MmGraph>();
        assert_send_sync::<TopologyError>();
    }
}
