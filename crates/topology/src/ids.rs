//! Strongly-typed identifiers for processes and clusters.
//!
//! The paper names processes `p1 … pn` (1-based). This crate uses 0-based
//! indices internally; the [`std::fmt::Display`] impls render the paper's
//! 1-based names so traces and tables read like the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a process (`p_i` in the paper), 0-based.
///
/// # Examples
///
/// ```
/// use ofa_topology::ProcessId;
/// let p = ProcessId(0);
/// assert_eq!(p.to_string(), "p1"); // paper-style 1-based rendering
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The underlying 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `ProcessId` from the paper's 1-based numbering.
    ///
    /// # Panics
    ///
    /// Panics if `one_based == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ofa_topology::ProcessId;
    /// assert_eq!(ProcessId::from_paper(1), ProcessId(0));
    /// ```
    pub fn from_paper(one_based: usize) -> Self {
        assert!(one_based >= 1, "paper process numbering starts at 1");
        ProcessId(one_based - 1)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Index of a cluster (`P[x]` in the paper), 0-based.
///
/// # Examples
///
/// ```
/// use ofa_topology::ClusterId;
/// assert_eq!(ClusterId(1).to_string(), "P[2]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub usize);

impl ClusterId {
    /// The underlying 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `ClusterId` from the paper's 1-based numbering.
    ///
    /// # Panics
    ///
    /// Panics if `one_based == 0`.
    pub fn from_paper(one_based: usize) -> Self {
        assert!(one_based >= 1, "paper cluster numbering starts at 1");
        ClusterId(one_based - 1)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P[{}]", self.0 + 1)
    }
}

impl From<usize> for ClusterId {
    fn from(i: usize) -> Self {
        ClusterId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_display_is_one_based() {
        assert_eq!(ProcessId(0).to_string(), "p1");
        assert_eq!(ProcessId(6).to_string(), "p7");
    }

    #[test]
    fn cluster_display_is_one_based() {
        assert_eq!(ClusterId(0).to_string(), "P[1]");
        assert_eq!(ClusterId(2).to_string(), "P[3]");
    }

    #[test]
    fn paper_numbering_round_trips() {
        assert_eq!(ProcessId::from_paper(3).index(), 2);
        assert_eq!(ClusterId::from_paper(1).index(), 0);
    }

    #[test]
    #[should_panic(expected = "starts at 1")]
    fn paper_numbering_rejects_zero() {
        let _ = ProcessId::from_paper(0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(ClusterId(0) < ClusterId(1));
    }
}
