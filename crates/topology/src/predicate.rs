//! The paper's "main scalability and fault-tolerance property" (§III-B).
//!
//! Algorithm 2 (and Algorithm 3, which inherits the property through the
//! same lines 4–5) terminates in every execution in which there is a set of
//! clusters `P[x1] … P[xk]` such that
//!
//! * `|P[x1]| + … + |P[xk]| > n/2`, and
//! * each `P[xj]` contains at least one process that does not crash.
//!
//! This module evaluates the predicate for a concrete crash set, computes
//! the *fault-tolerance frontier* (the maximum number of crashes any
//! failure pattern can contain while still guaranteeing termination for
//! some / all patterns of that size), and produces witness crash sets used
//! by the experiment harness.

use crate::{ClusterId, Partition, ProcessSet};

/// Evaluation of the termination predicate for one failure pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateReport {
    /// Total size of the clusters that still contain a correct process
    /// (their full sizes count — "one for all").
    pub live_weight: usize,
    /// Clusters with at least one correct process.
    pub live_clusters: Vec<ClusterId>,
    /// `true` iff `2 * live_weight > n`, i.e. the pattern guarantees
    /// termination.
    pub holds: bool,
}

/// Evaluates the termination predicate for `crashed` under `partition`.
///
/// A cluster contributes its **entire size** to the live weight as soon as
/// one member is correct: the surviving process "acts as if all the
/// processes of its cluster were alive".
///
/// # Examples
///
/// ```
/// use ofa_topology::{predicate, Partition, ProcessSet};
///
/// let part = Partition::fig1_right(); // {p1} {p2..p5} {p6,p7}
/// // Crash everything except p3 (a member of the majority cluster P[2]).
/// let crashed = ProcessSet::from_indices(7, [0, 1, 3, 4, 5, 6]);
/// let report = predicate::evaluate(&part, &crashed);
/// assert!(report.holds); // 4 > 7/2 — consensus survives 6 of 7 crashes
/// assert_eq!(report.live_weight, 4);
/// ```
pub fn evaluate(partition: &Partition, crashed: &ProcessSet) -> PredicateReport {
    let mut live_weight = 0usize;
    let mut live_clusters = Vec::new();
    for (x, members) in partition.clusters() {
        let all_crashed = members.is_subset(crashed);
        if !all_crashed {
            live_weight += members.len();
            live_clusters.push(x);
        }
    }
    PredicateReport {
        live_weight,
        live_clusters,
        holds: 2 * live_weight > partition.n(),
    }
}

/// Shorthand for [`evaluate`]`(..).holds`.
pub fn guarantees_termination(partition: &Partition, crashed: &ProcessSet) -> bool {
    evaluate(partition, crashed).holds
}

/// Fault-tolerance frontier of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// Minimum number of surviving processes over all terminating failure
    /// patterns (one survivor per cluster of a minimum majority cover).
    pub min_survivors: usize,
    /// `n - min_survivors`: the largest crash count for which **some**
    /// failure pattern of that size still guarantees termination.
    pub max_tolerated_crashes: usize,
    /// The clusters of a minimum-cardinality cover whose total size exceeds
    /// `n/2` (largest clusters first).
    pub cover: Vec<ClusterId>,
    /// The classical pure message-passing bound `⌊(n-1)/2⌋` for comparison
    /// (the majority-of-correct-processes requirement).
    pub message_passing_bound: usize,
}

/// Computes the fault-tolerance frontier of `partition`.
///
/// The best failure pattern keeps exactly one process in each cluster of a
/// minimum set of clusters whose sizes sum past `n/2` — picking clusters in
/// decreasing size order minimizes how many survivors are needed.
///
/// # Examples
///
/// ```
/// use ofa_topology::{predicate, Partition};
///
/// let f = predicate::frontier(&Partition::fig1_right());
/// // Keeping one survivor in the majority cluster P[2] tolerates 6 crashes.
/// assert_eq!(f.min_survivors, 1);
/// assert_eq!(f.max_tolerated_crashes, 6);
/// assert_eq!(f.message_passing_bound, 3);
/// ```
pub fn frontier(partition: &Partition) -> Frontier {
    let n = partition.n();
    let mut by_size: Vec<(ClusterId, usize)> =
        partition.clusters().map(|(x, s)| (x, s.len())).collect();
    // Largest first; tie-break on id for determinism.
    by_size.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
    let mut cover = Vec::new();
    let mut weight = 0usize;
    for (x, sz) in by_size {
        if 2 * weight > n {
            break;
        }
        cover.push(x);
        weight += sz;
    }
    debug_assert!(2 * weight > n, "whole system always exceeds n/2");
    let min_survivors = cover.len();
    Frontier {
        min_survivors,
        max_tolerated_crashes: n - min_survivors,
        cover,
        message_passing_bound: (n - 1) / 2,
    }
}

/// Builds the frontier's witness crash set: everyone crashes except one
/// (the smallest-index) member of each cover cluster.
///
/// [`evaluate`] holds on the result, and the result has exactly
/// [`Frontier::max_tolerated_crashes`] members.
pub fn witness_crash_set(partition: &Partition) -> ProcessSet {
    let f = frontier(partition);
    let mut survivors = ProcessSet::empty(partition.n());
    for x in &f.cover {
        let keeper = partition
            .cluster(*x)
            .first()
            .expect("clusters are non-empty");
        survivors.insert(keeper);
    }
    survivors.complement()
}

/// Enumerates, for each crash-count `c` in `0..=n-1`, whether **every**
/// pattern of `c` crashes guarantees termination (`all`) and whether
/// **some** pattern does (`some`).
///
/// `some` flips to `false` exactly above [`Frontier::max_tolerated_crashes`].
/// `all` holds up to the worst-case bound: the largest `c` such that no
/// `c`-subset can silence clusters covering `n/2` or more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToleranceRow {
    /// Number of crashes.
    pub crashes: usize,
    /// Every pattern with this many crashes terminates.
    pub all_patterns: bool,
    /// At least one pattern with this many crashes terminates.
    pub some_pattern: bool,
}

/// Computes [`ToleranceRow`]s for every crash count.
///
/// The "all patterns" column uses the adversary's best strategy: with a
/// budget of `c` crashes, silence a set of whole clusters whose total size
/// is as large as possible but at most `c` (crashes inside a cluster that
/// keeps one survivor remove no weight). That is a subset-sum maximization
/// over the cluster sizes, solved here with a bitset DP.
pub fn tolerance_table(partition: &Partition) -> Vec<ToleranceRow> {
    let n = partition.n();
    let f = frontier(partition);
    // reachable[s] = true iff some subset of clusters has total size s.
    let mut reachable = vec![false; n + 1];
    reachable[0] = true;
    for s in partition.sizes() {
        for t in (s..=n).rev() {
            if reachable[t - s] {
                reachable[t] = true;
            }
        }
    }
    (0..n)
        .map(|c| {
            let dead_weight = (0..=c).rev().find(|&t| reachable[t]).unwrap_or(0);
            let live_weight = n - dead_weight;
            ToleranceRow {
                crashes: c,
                all_patterns: 2 * live_weight > n,
                some_pattern: c <= f.max_tolerated_crashes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn headline_example_survives_six_of_seven_crashes() {
        // Paper §I / §V: majority cluster P[2] of Fig. 1 (right); any number
        // of crashes except one process of P[2].
        let part = Partition::fig1_right();
        for survivor in [1usize, 2, 3, 4] {
            let mut crashed = ProcessSet::full(7);
            crashed.remove(ProcessId(survivor));
            let rep = evaluate(&part, &crashed);
            assert!(rep.holds, "one survivor in P[2] must suffice");
            assert_eq!(rep.live_weight, 4);
            assert_eq!(rep.live_clusters, vec![ClusterId(1)]);
        }
    }

    #[test]
    fn survivor_outside_majority_cluster_is_not_enough() {
        let part = Partition::fig1_right();
        // keep only p1 ({p1} cluster, weight 1): 1 <= 7/2.
        let mut crashed = ProcessSet::full(7);
        crashed.remove(ProcessId(0));
        assert!(!evaluate(&part, &crashed).holds);
        // keep p1 and p6: weight 1 + 2 = 3 <= 7/2.
        crashed.remove(ProcessId(5));
        assert!(!evaluate(&part, &crashed).holds);
        // additionally keep p2: weight 1 + 2 + 4 = 7 > 7/2.
        crashed.remove(ProcessId(1));
        assert!(evaluate(&part, &crashed).holds);
    }

    #[test]
    fn no_crashes_always_holds() {
        for part in [
            Partition::fig1_left(),
            Partition::fig1_right(),
            Partition::singletons(4),
            Partition::single_cluster(9),
        ] {
            let none = ProcessSet::empty(part.n());
            assert!(evaluate(&part, &none).holds);
        }
    }

    #[test]
    fn singleton_partition_matches_classical_majority() {
        // m = n: live weight = number of correct processes, so the predicate
        // degenerates to "a majority of processes is correct".
        let part = Partition::singletons(7);
        let crashed3 = ProcessSet::from_indices(7, [0, 1, 2]);
        assert!(evaluate(&part, &crashed3).holds);
        let crashed4 = ProcessSet::from_indices(7, [0, 1, 2, 3]);
        assert!(!evaluate(&part, &crashed4).holds);
    }

    #[test]
    fn single_cluster_tolerates_all_but_one() {
        let part = Partition::single_cluster(9);
        let mut crashed = ProcessSet::full(9);
        crashed.remove(ProcessId(8));
        assert!(evaluate(&part, &crashed).holds);
        assert_eq!(frontier(&part).max_tolerated_crashes, 8);
    }

    #[test]
    fn frontier_fig1() {
        let right = frontier(&Partition::fig1_right());
        assert_eq!(right.min_survivors, 1);
        assert_eq!(right.max_tolerated_crashes, 6);
        assert_eq!(right.cover, vec![ClusterId(1)]);
        assert_eq!(right.message_passing_bound, 3);

        // Left: sizes 3,2,2 — need 3 + 2 = 5 > 3.5, i.e. two clusters.
        let left = frontier(&Partition::fig1_left());
        assert_eq!(left.min_survivors, 2);
        assert_eq!(left.max_tolerated_crashes, 5);
        assert_eq!(left.cover, vec![ClusterId(0), ClusterId(1)]);
    }

    #[test]
    fn witness_crash_set_is_maximal_and_terminating() {
        for part in [
            Partition::fig1_left(),
            Partition::fig1_right(),
            Partition::even(12, 4),
            Partition::singletons(5),
        ] {
            let f = frontier(&part);
            let crashed = witness_crash_set(&part);
            assert_eq!(crashed.len(), f.max_tolerated_crashes);
            assert!(evaluate(&part, &crashed).holds);
        }
    }

    #[test]
    fn tolerance_table_monotone_and_consistent() {
        for part in [
            Partition::fig1_left(),
            Partition::fig1_right(),
            Partition::even(10, 5),
            Partition::from_sizes(&[6, 1, 1, 1, 1]).unwrap(),
        ] {
            let rows = tolerance_table(&part);
            assert_eq!(rows.len(), part.n());
            // all ⇒ some, and both columns are monotone (true then false)
            let mut prev_all = true;
            let mut prev_some = true;
            for row in &rows {
                assert!(!row.all_patterns || row.some_pattern);
                assert!(prev_all || !row.all_patterns, "all must be monotone");
                assert!(prev_some || !row.some_pattern, "some must be monotone");
                prev_all = row.all_patterns;
                prev_some = row.some_pattern;
            }
            // zero crashes is always fine
            assert!(rows[0].all_patterns && rows[0].some_pattern);
        }
    }

    #[test]
    fn tolerance_table_pure_mp_matches_theory() {
        // m = n = 7: both columns should flip exactly past floor((n-1)/2) = 3.
        let rows = tolerance_table(&Partition::singletons(7));
        for row in &rows {
            assert_eq!(row.all_patterns, row.crashes <= 3);
            assert_eq!(row.some_pattern, row.crashes <= 3);
        }
    }

    #[test]
    fn majority_cluster_all_vs_some_gap() {
        // Sizes [4,1,1,1] (n = 7): SOME pattern tolerates 6 crashes (survivor
        // in the big cluster) but ALL patterns only survive 0 crashes is
        // false — killing the three singletons (3 crashes) leaves weight 4 > 3.5,
        // while 4 crashes can kill the big cluster entirely (weight 3 < 3.5).
        let part = Partition::from_sizes(&[4, 1, 1, 1]).unwrap();
        let rows = tolerance_table(&part);
        assert_eq!(frontier(&part).max_tolerated_crashes, 6);
        assert!(rows[3].all_patterns);
        assert!(!rows[4].all_patterns);
        assert!(rows[6].some_pattern);
    }
}
