//! Cluster partitions of the process set (§II-A of the paper).
//!
//! The `n` processes are partitioned into `m` non-empty clusters
//! `P[1] … P[m]`; each cluster owns one shared memory `MEM_x`. A process
//! knows the whole partition; the paper's `cluster(i)` function is
//! [`Partition::cluster_members_of`].

use crate::{ClusterId, ProcessId, ProcessSet, TopologyError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated partition of `{p_1, …, p_n}` into `m` non-empty clusters.
///
/// # Examples
///
/// ```
/// use ofa_topology::{ClusterId, Partition, ProcessId};
///
/// // The right-hand decomposition of Figure 1: {p1} {p2..p5} {p6,p7}.
/// let part = Partition::fig1_right();
/// assert_eq!(part.n(), 7);
/// assert_eq!(part.m(), 3);
/// assert_eq!(part.cluster_of(ProcessId(3)), ClusterId(1));
/// assert!(part.cluster(ClusterId(1)).is_majority_of(part.n()));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    clusters: Vec<ProcessSet>,
    cluster_of: Vec<ClusterId>,
}

impl Partition {
    /// Builds a partition from explicit member lists (0-based indices).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if a cluster is empty, a process is
    /// duplicated or missing, or an index is out of range.
    pub fn from_sets<I, J>(n: usize, sets: I) -> Result<Self, TopologyError>
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = usize>,
    {
        if n == 0 {
            return Err(TopologyError::NoProcesses);
        }
        let mut clusters = Vec::new();
        let mut cluster_of: Vec<Option<ClusterId>> = vec![None; n];
        for (x, members) in sets.into_iter().enumerate() {
            let mut set = ProcessSet::empty(n);
            let mut any = false;
            for i in members {
                if i >= n {
                    return Err(TopologyError::OutOfRange { process: i, n });
                }
                if cluster_of[i].is_some() {
                    return Err(TopologyError::Overlap { process: i });
                }
                cluster_of[i] = Some(ClusterId(x));
                set.insert(ProcessId(i));
                any = true;
            }
            if !any {
                return Err(TopologyError::EmptyCluster { cluster: x });
            }
            clusters.push(set);
        }
        let mut assignment = Vec::with_capacity(n);
        for (i, c) in cluster_of.into_iter().enumerate() {
            match c {
                Some(c) => assignment.push(c),
                None => return Err(TopologyError::Uncovered { process: i }),
            }
        }
        if clusters.is_empty() {
            return Err(TopologyError::NoProcesses);
        }
        Ok(Partition {
            n,
            clusters,
            cluster_of: assignment,
        })
    }

    /// Builds a partition from a per-process cluster assignment.
    ///
    /// `assignment[i]` is the 0-based cluster of process `i`; cluster ids
    /// must form a contiguous range `0..m`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyCluster`] if some id in `0..m` has no
    /// member, or [`TopologyError::NoProcesses`] for an empty assignment.
    pub fn from_assignment(assignment: &[usize]) -> Result<Self, TopologyError> {
        if assignment.is_empty() {
            return Err(TopologyError::NoProcesses);
        }
        let n = assignment.len();
        let m = assignment.iter().copied().max().unwrap() + 1;
        let mut sets: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &x) in assignment.iter().enumerate() {
            sets[x].push(i);
        }
        Self::from_sets(n, sets)
    }

    /// Contiguous blocks with the given sizes: `sizes = [3, 2, 2]` yields
    /// `{p1,p2,p3} {p4,p5} {p6,p7}`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyCluster`] on a zero size and
    /// [`TopologyError::NoProcesses`] on an empty list.
    pub fn from_sizes(sizes: &[usize]) -> Result<Self, TopologyError> {
        if sizes.is_empty() {
            return Err(TopologyError::NoProcesses);
        }
        if let Some(x) = sizes.iter().position(|&s| s == 0) {
            return Err(TopologyError::EmptyCluster { cluster: x });
        }
        let n: usize = sizes.iter().sum();
        let mut start = 0usize;
        let mut sets = Vec::with_capacity(sizes.len());
        for &s in sizes {
            sets.push((start..start + s).collect::<Vec<_>>());
            start += s;
        }
        Self::from_sets(n, sets)
    }

    /// One cluster per process (`m = n`): the classical message-passing
    /// model (§II-A "extreme configurations").
    pub fn singletons(n: usize) -> Self {
        Self::from_sizes(&vec![1; n]).expect("n >= 1 required")
    }

    /// A single cluster (`m = 1`): the classical shared-memory model.
    pub fn single_cluster(n: usize) -> Self {
        Self::from_sizes(&[n]).expect("n >= 1 required")
    }

    /// `m` contiguous clusters of near-even size (first `n % m` clusters get
    /// one extra process).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > n`.
    pub fn even(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= n, "need 1 <= m <= n (got m={m}, n={n})");
        let base = n / m;
        let extra = n % m;
        let sizes: Vec<usize> = (0..m).map(|x| base + usize::from(x < extra)).collect();
        Self::from_sizes(&sizes).expect("sizes are positive")
    }

    /// The left-hand decomposition of the paper's Figure 1
    /// (`n = 7`, `m = 3`): `{p1,p2,p3} {p4,p5} {p6,p7}`.
    pub fn fig1_left() -> Self {
        Self::from_sizes(&[3, 2, 2]).expect("static sizes")
    }

    /// The right-hand decomposition of the paper's Figure 1
    /// (`n = 7`, `m = 3`): `{p1} {p2,p3,p4,p5} {p6,p7}` — the conclusion's
    /// majority-cluster example (`P[2]` holds 4 of 7 processes).
    pub fn fig1_right() -> Self {
        Self::from_sizes(&[1, 4, 2]).expect("static sizes")
    }

    /// Random assignment of `n` processes to `m` clusters, guaranteed
    /// non-empty (the first `m` processes seed one cluster each, the rest
    /// are assigned uniformly).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > n`.
    pub fn random<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(m >= 1 && m <= n, "need 1 <= m <= n (got m={m}, n={n})");
        let mut assignment = vec![0usize; n];
        // Seed every cluster with one process so none is empty, then place
        // the remaining processes uniformly at random.
        let mut seeds: Vec<usize> = (0..n).collect();
        for x in 0..m {
            let k = rng.gen_range(x..n);
            seeds.swap(x, k);
            assignment[seeds[x]] = x;
        }
        for &i in seeds.iter().skip(m) {
            assignment[i] = rng.gen_range(0..m);
        }
        Self::from_assignment(&assignment).expect("assignment covers 0..m")
    }

    /// Number of processes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of clusters `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.clusters.len()
    }

    /// The member set of cluster `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.index() >= m`.
    #[inline]
    pub fn cluster(&self, x: ClusterId) -> &ProcessSet {
        &self.clusters[x.index()]
    }

    /// The cluster that process `i` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `i.index() >= n`.
    #[inline]
    pub fn cluster_of(&self, i: ProcessId) -> ClusterId {
        self.cluster_of[i.index()]
    }

    /// The paper's `cluster(i)` function: the set of processes composing
    /// the cluster to which `p_i` belongs (including `p_i` itself).
    #[inline]
    pub fn cluster_members_of(&self, i: ProcessId) -> &ProcessSet {
        &self.clusters[self.cluster_of(i).index()]
    }

    /// Iterates over `(ClusterId, members)` pairs.
    pub fn clusters(&self) -> impl Iterator<Item = (ClusterId, &ProcessSet)> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(x, s)| (ClusterId(x), s))
    }

    /// Iterates over all process ids `p_1 … p_n`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.n).map(ProcessId)
    }

    /// Cluster sizes, in cluster order.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|s| s.len()).collect()
    }

    /// The id of a largest cluster.
    pub fn largest_cluster(&self) -> ClusterId {
        let (x, _) = self
            .clusters
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .expect("partition is non-empty");
        ClusterId(x)
    }

    /// `true` if some single cluster holds a strict majority of processes.
    pub fn has_majority_cluster(&self) -> bool {
        self.clusters.iter().any(|s| s.is_majority_of(self.n))
    }

    /// Strict-majority test over the whole system (`|set| > n/2`).
    #[inline]
    pub fn is_majority(&self, set: &ProcessSet) -> bool {
        set.is_majority_of(self.n)
    }

    /// `true` for the `m = n` extreme (pure message-passing model).
    pub fn is_pure_message_passing(&self) -> bool {
        self.m() == self.n
    }

    /// `true` for the `m = 1` extreme (pure shared-memory model).
    pub fn is_pure_shared_memory(&self) -> bool {
        self.m() == 1
    }
}

/// Serialized as the per-process cluster assignment `[c_1, …, c_n]`
/// (0-based cluster ids), the most compact lossless encoding.
impl Serialize for Partition {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.cluster_of
                .iter()
                .map(|c| serde::Value::U64(c.index() as u64))
                .collect(),
        )
    }
}

impl Deserialize for Partition {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let assignment: Vec<usize> = Deserialize::from_value(v)?;
        Partition::from_assignment(&assignment)
            .map_err(|e| serde::Error::msg(format!("invalid partition: {e}")))
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition(n={}, m={}, ", self.n, self.m())?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, s) in self.clusters.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_right_matches_paper() {
        let p = Partition::fig1_right();
        assert_eq!(p.n(), 7);
        assert_eq!(p.m(), 3);
        // Conclusion: "the cluster P[2] = {p2, p3, p4, p5}".
        assert_eq!(
            p.cluster(ClusterId(1)),
            &ProcessSet::from_indices(7, [1, 2, 3, 4])
        );
        assert!(p.has_majority_cluster());
        assert_eq!(p.largest_cluster(), ClusterId(1));
    }

    #[test]
    fn fig1_left_shape() {
        let p = Partition::fig1_left();
        assert_eq!(p.sizes(), vec![3, 2, 2]);
        assert!(!p.has_majority_cluster());
    }

    #[test]
    fn cluster_of_and_members() {
        let p = Partition::fig1_right();
        assert_eq!(p.cluster_of(ProcessId(0)), ClusterId(0));
        assert_eq!(p.cluster_of(ProcessId(4)), ClusterId(1));
        assert_eq!(p.cluster_of(ProcessId(6)), ClusterId(2));
        assert!(p.cluster_members_of(ProcessId(4)).contains(ProcessId(1)));
        assert_eq!(p.cluster_members_of(ProcessId(0)).len(), 1);
    }

    #[test]
    fn extremes() {
        let mp = Partition::singletons(5);
        assert!(mp.is_pure_message_passing());
        assert_eq!(mp.m(), 5);
        let sm = Partition::single_cluster(5);
        assert!(sm.is_pure_shared_memory());
        assert_eq!(sm.cluster(ClusterId(0)).len(), 5);
    }

    #[test]
    fn even_split_distributes_remainder() {
        let p = Partition::even(10, 4);
        assert_eq!(p.sizes(), vec![3, 3, 2, 2]);
        let q = Partition::even(9, 3);
        assert_eq!(q.sizes(), vec![3, 3, 3]);
    }

    #[test]
    fn from_assignment_round_trip() {
        let p = Partition::from_assignment(&[0, 1, 1, 2, 0]).unwrap();
        assert_eq!(p.m(), 3);
        assert_eq!(
            p.cluster(ClusterId(0)),
            &ProcessSet::from_indices(5, [0, 4])
        );
    }

    #[test]
    fn rejects_empty_cluster() {
        assert_eq!(
            Partition::from_sets(3, vec![vec![0, 1, 2], vec![]]),
            Err(TopologyError::EmptyCluster { cluster: 1 })
        );
        assert_eq!(
            Partition::from_sizes(&[2, 0]),
            Err(TopologyError::EmptyCluster { cluster: 1 })
        );
    }

    #[test]
    fn rejects_overlap_uncovered_out_of_range() {
        assert_eq!(
            Partition::from_sets(3, vec![vec![0, 1], vec![1, 2]]),
            Err(TopologyError::Overlap { process: 1 })
        );
        assert_eq!(
            Partition::from_sets(3, vec![vec![0, 1]]),
            Err(TopologyError::Uncovered { process: 2 })
        );
        assert_eq!(
            Partition::from_sets(2, vec![vec![0, 5]]),
            Err(TopologyError::OutOfRange { process: 5, n: 2 })
        );
        assert_eq!(
            Partition::from_sets(0, Vec::<Vec<usize>>::new()),
            Err(TopologyError::NoProcesses)
        );
    }

    #[test]
    fn random_partitions_are_valid_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(1..40);
            let m = rng.gen_range(1..=n);
            let p = Partition::random(n, m, &mut rng);
            assert_eq!(p.n(), n);
            assert_eq!(p.m(), m);
            assert!(p.sizes().iter().all(|&s| s >= 1));
            assert_eq!(p.sizes().iter().sum::<usize>(), n);
            // every process maps into its reported cluster
            for i in p.processes() {
                assert!(p.cluster(p.cluster_of(i)).contains(i));
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let p = Partition::fig1_right();
        assert_eq!(p.to_string(), "{p1} {p2,p3,p4,p5} {p6,p7}");
    }
}
