//! Error type for topology construction.

use std::error::Error;
use std::fmt;

/// Error building a [`crate::Partition`] or [`crate::MmGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A cluster was empty; the paper requires non-empty clusters.
    EmptyCluster {
        /// 0-based index of the offending cluster.
        cluster: usize,
    },
    /// A process appears in two clusters.
    Overlap {
        /// 0-based index of the duplicated process.
        process: usize,
    },
    /// Some process in `0..n` belongs to no cluster.
    Uncovered {
        /// 0-based index of the missing process.
        process: usize,
    },
    /// A process index is `>= n`.
    OutOfRange {
        /// The offending index.
        process: usize,
        /// The universe size.
        n: usize,
    },
    /// The system must contain at least one process.
    NoProcesses,
    /// An edge endpoint is out of range or a self-loop was supplied.
    BadEdge {
        /// Edge endpoints as supplied.
        a: usize,
        /// Edge endpoints as supplied.
        b: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyCluster { cluster } => {
                write!(f, "cluster P[{}] is empty", cluster + 1)
            }
            TopologyError::Overlap { process } => {
                write!(f, "process p{} belongs to two clusters", process + 1)
            }
            TopologyError::Uncovered { process } => {
                write!(f, "process p{} belongs to no cluster", process + 1)
            }
            TopologyError::OutOfRange { process, n } => {
                write!(f, "process index {process} out of range for n={n}")
            }
            TopologyError::NoProcesses => write!(f, "system has no processes"),
            TopologyError::BadEdge { a, b } => {
                write!(f, "invalid edge ({a}, {b})")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_paper_one_based() {
        assert_eq!(
            TopologyError::EmptyCluster { cluster: 0 }.to_string(),
            "cluster P[1] is empty"
        );
        assert_eq!(
            TopologyError::Overlap { process: 2 }.to_string(),
            "process p3 belongs to two clusters"
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(TopologyError::NoProcesses);
    }
}
