//! Uniform shared-memory domains of the m&m model (paper §III-C and
//! appendix; Aguilera et al., PODC 2018).
//!
//! In the *uniform* m&m model the shared-memory domain is induced by an
//! undirected graph `G = (V, E)`: process `p_i` shares registers with its
//! neighbors, giving one "`p_i`-centered" memory per process, accessible by
//! the closed neighborhood `N[i] = {i} ∪ N(i)`. This module builds such
//! graphs, computes the domain family `S = {S_i}`, and provides the graph
//! families used by experiment E6 plus the paper's Figure 2 example.

use crate::{ProcessId, ProcessSet, TopologyError};
use rand::Rng;
use std::fmt;

/// An undirected graph over process indices, defining a uniform m&m
/// shared-memory domain.
///
/// # Examples
///
/// ```
/// use ofa_topology::{MmGraph, ProcessId};
///
/// let g = MmGraph::fig2();
/// assert_eq!(g.n(), 5);
/// // S3 = {p2, p3, p4, p5} in the paper's 1-based naming:
/// let s3 = g.domain(ProcessId(2));
/// assert_eq!(s3.to_string(), "{p2,p3,p4,p5}");
/// // p3 has degree 3, so in the m&m model it would touch 4 consensus
/// // objects per phase; a hybrid-model process always touches 1.
/// assert_eq!(g.degree(ProcessId(2)), 3);
/// assert_eq!(g.invocations_per_phase(ProcessId(2)), 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct MmGraph {
    n: usize,
    adj: Vec<ProcessSet>,
    edges: Vec<(ProcessId, ProcessId)>,
}

impl MmGraph {
    /// Builds a graph from an edge list (0-based endpoints, no self-loops).
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadEdge`] on a self-loop or out-of-range
    /// endpoint, [`TopologyError::NoProcesses`] if `n == 0`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::NoProcesses);
        }
        let mut adj = vec![ProcessSet::empty(n); n];
        let mut kept = Vec::new();
        for (a, b) in edges {
            if a == b || a >= n || b >= n {
                return Err(TopologyError::BadEdge { a, b });
            }
            let (lo, hi) = (a.min(b), a.max(b));
            if !adj[lo].contains(ProcessId(hi)) {
                adj[lo].insert(ProcessId(hi));
                adj[hi].insert(ProcessId(lo));
                kept.push((ProcessId(lo), ProcessId(hi)));
            }
        }
        Ok(MmGraph {
            n,
            adj,
            edges: kept,
        })
    }

    /// The example of the paper's Figure 2 (`n = 5`):
    /// edges `p1–p2, p2–p3, p3–p4, p3–p5, p4–p5`, giving domains
    /// `S1={p1,p2} S2={p1,p2,p3} S3={p2,p3,p4,p5} S4=S5={p3,p4,p5}`.
    pub fn fig2() -> Self {
        Self::from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4), (3, 4)]).expect("static edge list")
    }

    /// A cycle `p1–p2–…–pn–p1` (each process shares memory with two
    /// neighbors). Requires `n >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 vertices");
        Self::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("ring edges valid")
    }

    /// A star centered at `p1`. Requires `n >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 vertices");
        Self::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges valid")
    }

    /// A simple path `p1–p2–…–pn`. Requires `n >= 1`.
    pub fn path(n: usize) -> Self {
        Self::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges valid")
    }

    /// The complete graph (everyone shares memory with everyone — the m&m
    /// counterpart of a single cluster, but with `n` distinct memories).
    pub fn complete(n: usize) -> Self {
        Self::from_edges(n, (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))))
            .expect("complete edges valid")
    }

    /// A `rows × cols` grid with 4-neighborhoods.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols == 0`.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows * cols > 0, "grid must be non-empty");
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Self::from_edges(rows * cols, edges).expect("grid edges valid")
    }

    /// Erdős–Rényi `G(n, p)` with a spanning path added so the graph is
    /// connected (disconnected memories would make the comparison vacuous).
    pub fn random_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    edges.push((i, j));
                }
            }
        }
        Self::from_edges(n.max(1), edges).expect("gnp edges valid")
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The open neighborhood `N(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i.index() >= n`.
    #[inline]
    pub fn neighbors(&self, i: ProcessId) -> &ProcessSet {
        &self.adj[i.index()]
    }

    /// Degree `α_i = |N(i)|` — the paper's neighbor count in §III-C.
    #[inline]
    pub fn degree(&self, i: ProcessId) -> usize {
        self.adj[i.index()].len()
    }

    /// The shared-memory domain `S_i = {i} ∪ N(i)` (closed neighborhood):
    /// the set of processes that can access the `p_i`-centered memory.
    pub fn domain(&self, i: ProcessId) -> ProcessSet {
        let mut s = self.adj[i.index()].clone();
        s.insert(i);
        s
    }

    /// The whole uniform domain family `S = {S_1, …, S_n}`.
    pub fn domains(&self) -> Vec<ProcessSet> {
        (0..self.n).map(|i| self.domain(ProcessId(i))).collect()
    }

    /// Number of consensus objects `p_i` invokes **per phase of a round**
    /// in the m&m consensus algorithm: `α_i + 1` (its own memory plus one
    /// per neighbor). The hybrid-model count is 1 (paper §III-C).
    #[inline]
    pub fn invocations_per_phase(&self, i: ProcessId) -> usize {
        self.degree(i) + 1
    }

    /// Total shared memories in the system: `n` in the m&m model
    /// (vs `m` clusters in the hybrid model).
    #[inline]
    pub fn memory_count(&self) -> usize {
        self.n
    }

    /// Iterates over edges as `(ProcessId, ProcessId)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.edges.iter().copied()
    }

    /// `(min, mean, max)` of the vertex degrees.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        let degs: Vec<usize> = (0..self.n).map(|i| self.degree(ProcessId(i))).collect();
        let min = degs.iter().copied().min().unwrap_or(0);
        let max = degs.iter().copied().max().unwrap_or(0);
        let mean = if self.n == 0 {
            0.0
        } else {
            degs.iter().sum::<usize>() as f64 / self.n as f64
        };
        (min, mean, max)
    }

    /// `true` if the graph is connected (trivially true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = ProcessSet::singleton(self.n, ProcessId(0));
        let mut stack = vec![ProcessId(0)];
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen.len() == self.n
    }
}

impl fmt::Debug for MmGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MmGraph(n={}, edges=[", self.n)?;
        for (k, (a, b)) in self.edges().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_domains_match_paper() {
        let g = MmGraph::fig2();
        let expect = [
            vec![0usize, 1],
            vec![0, 1, 2],
            vec![1, 2, 3, 4],
            vec![2, 3, 4],
            vec![2, 3, 4],
        ];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(
                g.domain(ProcessId(i)),
                ProcessSet::from_indices(5, want.iter().copied()),
                "S{} mismatch",
                i + 1
            );
        }
        // S4 and S5 coincide, exactly as the appendix notes (the family has
        // four distinct domains).
        assert_eq!(g.domain(ProcessId(3)), g.domain(ProcessId(4)));
    }

    #[test]
    fn fig2_invocation_counts() {
        let g = MmGraph::fig2();
        // α = (1, 2, 3, 2, 2) → invocations per phase α_i + 1.
        let want = [2usize, 3, 4, 3, 3];
        for (i, w) in want.iter().enumerate() {
            assert_eq!(g.invocations_per_phase(ProcessId(i)), *w);
        }
        assert_eq!(g.memory_count(), 5);
    }

    #[test]
    fn families_have_expected_shape() {
        let ring = MmGraph::ring(6);
        assert!(ring.is_connected());
        assert_eq!(ring.degree_stats(), (2, 2.0, 2));
        assert_eq!(ring.edge_count(), 6);

        let star = MmGraph::star(6);
        assert_eq!(star.degree(ProcessId(0)), 5);
        assert_eq!(star.degree(ProcessId(3)), 1);
        assert_eq!(star.edge_count(), 5);

        let path = MmGraph::path(4);
        assert_eq!(path.edge_count(), 3);
        assert!(path.is_connected());

        let k5 = MmGraph::complete(5);
        assert_eq!(k5.edge_count(), 10);
        assert_eq!(k5.degree_stats(), (4, 4.0, 4));

        let grid = MmGraph::grid(3, 4);
        assert_eq!(grid.n(), 12);
        assert_eq!(grid.edge_count(), 3 * 3 + 2 * 4); // 17
        assert!(grid.is_connected());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = MmGraph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(ProcessId(0)), 1);
    }

    #[test]
    fn rejects_bad_edges() {
        assert_eq!(
            MmGraph::from_edges(3, [(0, 0)]),
            Err(TopologyError::BadEdge { a: 0, b: 0 })
        );
        assert_eq!(
            MmGraph::from_edges(3, [(0, 3)]),
            Err(TopologyError::BadEdge { a: 0, b: 3 })
        );
        assert_eq!(
            MmGraph::from_edges(0, std::iter::empty()),
            Err(TopologyError::NoProcesses)
        );
    }

    #[test]
    fn random_gnp_is_connected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 5, 12, 30] {
            let g = MmGraph::random_gnp(n, 0.1, &mut rng);
            assert!(g.is_connected(), "spanning path keeps G(n,p) connected");
            assert_eq!(g.n(), n);
        }
    }

    #[test]
    fn domain_always_contains_self() {
        let g = MmGraph::grid(2, 3);
        for i in 0..g.n() {
            assert!(g.domain(ProcessId(i)).contains(ProcessId(i)));
        }
    }
}
