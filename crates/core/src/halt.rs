//! Why a process stopped executing the protocol.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Reason a process left the protocol without deciding.
///
/// Environment calls return `Err(Halt)` and protocol code propagates it
/// with `?`, which keeps the algorithm functions shaped like the paper's
/// pseudocode while supporting crash injection and bounded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Halt {
    /// The process crashed (injected by the execution substrate). A crash
    /// is a premature halt: the process executes no further step.
    Crashed,
    /// The run was stopped externally: round budget exhausted, simulator
    /// quiescent (no event can ever unblock the process), or runtime
    /// shutdown. Randomized consensus may legitimately not have terminated
    /// yet — indulgence means this is *not* a safety violation.
    Stopped,
}

impl fmt::Display for Halt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Halt::Crashed => write!(f, "process crashed"),
            Halt::Stopped => write!(f, "run stopped before decision"),
        }
    }
}

impl Error for Halt {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error() {
        assert_eq!(Halt::Crashed.to_string(), "process crashed");
        fn is_err<E: Error + Send + Sync + 'static>(_: E) {}
        is_err(Halt::Stopped);
    }

    #[test]
    fn question_mark_propagation() {
        fn inner() -> Result<(), Halt> {
            Err(Halt::Crashed)
        }
        fn outer() -> Result<u32, Halt> {
            inner()?;
            Ok(1)
        }
        assert_eq!(outer(), Err(Halt::Crashed));
    }
}
