//! Online invariant checking: WA1, WA2, agreement, validity.
//!
//! The paper states two *weak agreement* predicates that hold at every
//! round of Algorithm 2:
//!
//! * **WA1** (after phase 1):
//!   `(est2_i ≠ ⊥) ∧ (est2_j ≠ ⊥) ⇒ (est2_i = est2_j)`,
//! * **WA2** (after phase 2):
//!   `(rec_i = {v})` and `(rec_j = {⊥})` are mutually exclusive.
//!
//! [`InvariantChecker`] receives [`ObsEvent`]s from every process of a run
//! and verifies WA1, WA2, agreement, and validity *online*, per protocol
//! instance. The E9 ablation demonstrates WA1 violations by running
//! amplification without cluster pre-agreement and counting what this
//! checker reports.

use crate::{fmt_est, Bit, ObsEvent};
use ofa_topology::ProcessId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// A sink for protocol events, shared by all processes of a run.
pub trait Observer: Send + Sync {
    /// Called by process `who`'s environment on each protocol event.
    fn on_event(&self, who: ProcessId, event: &ObsEvent);
}

/// Classification of `rec_i` stored for WA2 checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecKind {
    SingleValue(Bit),
    BotOnly,
    Mixed,
}

#[derive(Debug, Default)]
struct CheckState {
    /// Proposals per (instance, process).
    proposals: HashMap<(u64, ProcessId), Bit>,
    /// Non-⊥ est2 values per (instance, round).
    est2: HashMap<(u64, u64), Vec<(ProcessId, Bit)>>,
    /// Rec kinds per (instance, round).
    recs: HashMap<(u64, u64), Vec<(ProcessId, RecKind)>>,
    /// Decisions per (instance, process).
    decisions: HashMap<(u64, ProcessId), Bit>,
    violations: Vec<String>,
}

/// An [`Observer`] that checks the paper's invariants as events arrive.
///
/// # Examples
///
/// ```
/// use ofa_core::{Bit, InvariantChecker, Observer, ObsEvent};
/// use ofa_topology::ProcessId;
///
/// let checker = InvariantChecker::new();
/// checker.on_event(ProcessId(0), &ObsEvent::Propose { instance: 0, value: Bit::One });
/// checker.on_event(
///     ProcessId(0),
///     &ObsEvent::Deciding { instance: 0, round: 1, value: Bit::One, relayed: false },
/// );
/// assert!(checker.is_clean());
/// assert_eq!(checker.decisions().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct InvariantChecker {
    state: Mutex<CheckState>,
}

impl InvariantChecker {
    /// Creates a checker with no recorded events.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if no invariant has been violated so far.
    pub fn is_clean(&self) -> bool {
        self.state.lock().violations.is_empty()
    }

    /// The violations recorded so far (empty for conforming executions).
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// The instance-0 decisions recorded so far, by process.
    pub fn decisions(&self) -> HashMap<ProcessId, Bit> {
        self.decisions_for(0)
    }

    /// The decisions of one protocol instance, by process.
    pub fn decisions_for(&self, instance: u64) -> HashMap<ProcessId, Bit> {
        self.state
            .lock()
            .decisions
            .iter()
            .filter(|((i, _), _)| *i == instance)
            .map(|((_, p), v)| (*p, *v))
            .collect()
    }

    /// The instance-0 proposals recorded so far, by process.
    pub fn proposals(&self) -> HashMap<ProcessId, Bit> {
        self.state
            .lock()
            .proposals
            .iter()
            .filter(|((i, _), _)| *i == 0)
            .map(|((_, p), v)| (*p, *v))
            .collect()
    }

    /// Panics with the violation list if any invariant was broken.
    ///
    /// # Panics
    ///
    /// Panics iff `!self.is_clean()`.
    pub fn assert_clean(&self) {
        let v = self.violations();
        assert!(v.is_empty(), "invariant violations: {v:#?}");
    }
}

impl Observer for InvariantChecker {
    fn on_event(&self, who: ProcessId, event: &ObsEvent) {
        let mut st = self.state.lock();
        match *event {
            ObsEvent::Propose { instance, value } => {
                st.proposals.insert((instance, who), value);
            }
            ObsEvent::Est2 {
                instance,
                round,
                est2,
            } => {
                if let Some(v) = est2 {
                    if let Some(&(other, w)) = st
                        .est2
                        .get(&(instance, round))
                        .and_then(|xs| xs.iter().find(|x| x.1 != v))
                    {
                        st.violations.push(format!(
                            "WA1 violated at instance {instance} round {round}: {who} championed {} but {other} championed {}",
                            fmt_est(Some(v)),
                            fmt_est(Some(w)),
                        ));
                    }
                    st.est2.entry((instance, round)).or_default().push((who, v));
                }
            }
            ObsEvent::Rec {
                instance,
                round,
                saw_zero,
                saw_one,
                saw_bot,
            } => {
                let kind = match (saw_zero, saw_one, saw_bot) {
                    (true, true, _) => {
                        st.violations.push(format!(
                            "WA1 corollary violated at instance {instance} round {round}: {who} received both 0 and 1 in phase 2"
                        ));
                        RecKind::Mixed
                    }
                    (false, false, _) => RecKind::BotOnly,
                    (z, o, true) => {
                        let _ = (z, o);
                        RecKind::Mixed
                    }
                    (true, false, false) => RecKind::SingleValue(Bit::Zero),
                    (false, true, false) => RecKind::SingleValue(Bit::One),
                };
                let clashes: Vec<String> = st
                    .recs
                    .get(&(instance, round))
                    .into_iter()
                    .flatten()
                    .filter(|&&(_, other_kind)| {
                        matches!(
                            (kind, other_kind),
                            (RecKind::SingleValue(_), RecKind::BotOnly)
                                | (RecKind::BotOnly, RecKind::SingleValue(_))
                        )
                    })
                    .map(|&(other, other_kind)| {
                        format!(
                            "WA2 violated at instance {instance} round {round}: {who} saw {kind:?} while {other} saw {other_kind:?}"
                        )
                    })
                    .collect();
                st.violations.extend(clashes);
                st.recs
                    .entry((instance, round))
                    .or_default()
                    .push((who, kind));
            }
            ObsEvent::Deciding {
                instance,
                value,
                round,
                ..
            } => {
                // Agreement: all decided values of an instance must match.
                if let Some((&(_, other), &w)) = st
                    .decisions
                    .iter()
                    .find(|&((i, _), &w)| *i == instance && w != value)
                {
                    st.violations.push(format!(
                        "AGREEMENT violated in instance {instance}: {who} decided {value} (round {round}) but {other} decided {w}"
                    ));
                }
                // Validity: the decided value must have been proposed in
                // this instance.
                let any_proposals = st.proposals.keys().any(|(i, _)| *i == instance);
                if any_proposals
                    && !st
                        .proposals
                        .iter()
                        .any(|((i, _), &p)| *i == instance && p == value)
                {
                    st.violations.push(format!(
                        "VALIDITY violated in instance {instance}: {who} decided {value}, which nobody proposed"
                    ));
                }
                st.decisions.insert((instance, who), value);
            }
            ObsEvent::RoundStart { .. }
            | ObsEvent::ClusterAgreed { .. }
            | ObsEvent::Coin { .. }
            | ObsEvent::MailboxStats { .. }
            | ObsEvent::MvDecided { .. } => {}
        }
    }
}

/// An [`Observer`] that forwards to several observers (e.g. a tracer plus
/// the invariant checker).
pub struct FanoutObserver {
    sinks: Vec<std::sync::Arc<dyn Observer>>,
}

impl FanoutObserver {
    /// Creates a fan-out over the given observers.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Observer>>) -> Self {
        FanoutObserver { sinks }
    }
}

impl fmt::Debug for FanoutObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FanoutObserver({} sinks)", self.sinks.len())
    }
}

impl Observer for FanoutObserver {
    fn on_event(&self, who: ProcessId, event: &ObsEvent) {
        for s in &self.sinks {
            s.on_event(who, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Est;
    use std::sync::Arc;

    fn est2(round: u64, est2: Est) -> ObsEvent {
        ObsEvent::Est2 {
            instance: 0,
            round,
            est2,
        }
    }

    fn rec(round: u64, z: bool, o: bool, b: bool) -> ObsEvent {
        ObsEvent::Rec {
            instance: 0,
            round,
            saw_zero: z,
            saw_one: o,
            saw_bot: b,
        }
    }

    fn deciding(round: u64, value: Bit) -> ObsEvent {
        ObsEvent::Deciding {
            instance: 0,
            round,
            value,
            relayed: false,
        }
    }

    #[test]
    fn wa1_same_value_is_clean() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &est2(1, Some(Bit::One)));
        c.on_event(ProcessId(1), &est2(1, Some(Bit::One)));
        c.on_event(ProcessId(2), &est2(1, None));
        assert!(c.is_clean());
    }

    #[test]
    fn wa1_conflicting_values_flagged() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &est2(3, Some(Bit::One)));
        c.on_event(ProcessId(1), &est2(3, Some(Bit::Zero)));
        let v = c.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("WA1"), "{v:?}");
        assert!(v[0].contains("round 3"));
    }

    #[test]
    fn wa1_different_rounds_or_instances_do_not_clash() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &est2(1, Some(Bit::One)));
        c.on_event(ProcessId(1), &est2(2, Some(Bit::Zero)));
        c.on_event(
            ProcessId(1),
            &ObsEvent::Est2 {
                instance: 7,
                round: 1,
                est2: Some(Bit::Zero),
            },
        );
        assert!(c.is_clean());
    }

    #[test]
    fn wa2_single_vs_bot_flagged() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &rec(2, false, true, false));
        c.on_event(ProcessId(1), &rec(2, false, false, true));
        let v = c.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("WA2"));
    }

    #[test]
    fn wa2_single_vs_mixed_is_fine() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &rec(2, false, true, false));
        c.on_event(ProcessId(1), &rec(2, false, true, true));
        assert!(c.is_clean());
    }

    #[test]
    fn agreement_violation_flagged() {
        let c = InvariantChecker::new();
        c.on_event(
            ProcessId(0),
            &ObsEvent::Propose {
                instance: 0,
                value: Bit::Zero,
            },
        );
        c.on_event(
            ProcessId(1),
            &ObsEvent::Propose {
                instance: 0,
                value: Bit::One,
            },
        );
        c.on_event(ProcessId(0), &deciding(1, Bit::Zero));
        c.on_event(ProcessId(1), &deciding(2, Bit::One));
        let v = c.violations();
        assert!(v.iter().any(|s| s.contains("AGREEMENT")), "{v:?}");
    }

    #[test]
    fn agreement_is_per_instance() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &deciding(1, Bit::Zero));
        c.on_event(
            ProcessId(1),
            &ObsEvent::Deciding {
                instance: 1,
                round: 1,
                value: Bit::One,
                relayed: false,
            },
        );
        assert!(c.is_clean(), "different instances may decide differently");
        assert_eq!(c.decisions_for(0).len(), 1);
        assert_eq!(c.decisions_for(1).len(), 1);
    }

    #[test]
    fn validity_violation_flagged() {
        let c = InvariantChecker::new();
        c.on_event(
            ProcessId(0),
            &ObsEvent::Propose {
                instance: 0,
                value: Bit::Zero,
            },
        );
        c.on_event(
            ProcessId(1),
            &ObsEvent::Propose {
                instance: 0,
                value: Bit::Zero,
            },
        );
        c.on_event(ProcessId(1), &deciding(1, Bit::One));
        let v = c.violations();
        assert!(v.iter().any(|s| s.contains("VALIDITY")), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "invariant violations")]
    fn assert_clean_panics_on_violation() {
        let c = InvariantChecker::new();
        c.on_event(ProcessId(0), &est2(1, Some(Bit::One)));
        c.on_event(ProcessId(1), &est2(1, Some(Bit::Zero)));
        c.assert_clean();
    }

    #[test]
    fn fanout_forwards_to_all() {
        let a = Arc::new(InvariantChecker::new());
        let b = Arc::new(InvariantChecker::new());
        let fan = FanoutObserver::new(vec![a.clone(), b.clone()]);
        fan.on_event(
            ProcessId(0),
            &ObsEvent::Propose {
                instance: 0,
                value: Bit::One,
            },
        );
        assert_eq!(a.proposals().len(), 1);
        assert_eq!(b.proposals().len(), 1);
    }
}
