//! # `ofa-core` — hybrid-model randomized binary consensus
//!
//! The primary contribution of *“One for All and All for One: Scalable
//! Consensus in a Hybrid Communication Model”* (Raynal & Cao, ICDCS 2019),
//! as a Rust library:
//!
//! * [`msg_exchange`] — Algorithm 1, the all-to-all communication pattern
//!   with "one for all" cluster amplification,
//! * [`ben_or_hybrid`] — Algorithm 2, local-coin consensus (a hybrid
//!   extension of Ben-Or 1983),
//! * [`common_coin_hybrid`] — Algorithm 3, common-coin consensus (a hybrid
//!   extension of the Friedman–Mostéfaoui–Raynal protocol),
//! * [`ben_or_classic`] / [`common_coin_classic`] — the pure
//!   message-passing baselines the paper extends,
//! * [`InvariantChecker`] — online verification of the paper's WA1/WA2
//!   weak-agreement predicates plus agreement and validity.
//!
//! ## Architecture
//!
//! The algorithms exist in two step-for-step equivalent forms:
//!
//! * **Blocking reference** — written in the paper's pseudocode style
//!   against the object-safe [`Env`] trait, with crashes and stop
//!   signals surfacing as `Err(`[`Halt`]`)` and propagating with `?`
//!   (line numbers are cited in comments). Execution substrates
//!   implement `Env`: `ofa-sim`'s thread-conductor engine and
//!   `ofa-runtime`'s real threads.
//! * **Resumable state machines** ([`sm`]) — the same protocols with the
//!   control flow inverted: an [`sm::ConsensusSm`] consumes one
//!   delivered message per step and never blocks, so a single-threaded
//!   event-driven engine (in `ofa-sim`) can drive tens of thousands of
//!   processes without one thread each.
//!
//! ## Quick taste
//!
//! ```
//! use ofa_core::{Bit, ProtocolConfig};
//!
//! // Select the paper's algorithm, bounded to 64 rounds:
//! let cfg = ProtocolConfig::paper().with_max_rounds(64);
//! assert!(cfg.amplify);
//! // `ben_or_hybrid(&mut env, Bit::One, &cfg)` runs it on any Env —
//! // see `ofa_scenario::Scenario` for one-line complete executions.
//! let _ = (cfg, Bit::One);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baselines;
mod common_coin_alg;
mod config;
mod env;
mod halt;
mod local_coin_alg;
mod mailbox;
mod msg;
mod multivalued;
mod observer;
mod pattern;
mod payload;
pub mod sm;
pub mod traffic;
mod value;

pub use baselines::{ben_or_classic, common_coin_classic};
pub use common_coin_alg::{common_coin_hybrid, common_coin_hybrid_instance};
pub use config::{Decision, ProtocolConfig};
pub use env::{Env, ObsEvent};
pub use halt::Halt;
pub use local_coin_alg::{ben_or_hybrid, ben_or_hybrid_instance};
pub use mailbox::{AppMsg, Mailbox, MailboxItem};
pub use msg::{Msg, MsgKind, Phase};
pub use multivalued::{
    log_body_decision, multivalued_propose, mv_body_decision, queue_proposal, run_multivalued_body,
    run_replicated_log, LogDigest, MvDecision, INSTANCE_STRIDE,
};
pub use observer::{FanoutObserver, InvariantChecker, Observer};
pub use pattern::{credited_set, msg_exchange, Exchange, RecClass, RecSet, Supporters};
pub use payload::{Payload, MAX_PAYLOAD};
pub use traffic::{ArrivalProcess, TrafficSpec, TrafficState};
pub use value::{fmt_est, Bit, Est};

/// The kind of algorithm to run — used by substrates and the experiment
/// harness to select a protocol uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Algorithm 2: local-coin consensus ([`ben_or_hybrid`]).
    LocalCoin,
    /// Algorithm 3: common-coin consensus ([`common_coin_hybrid`]).
    CommonCoin,
}

impl Algorithm {
    /// Both algorithms, for exhaustive experiment sweeps.
    pub const ALL: [Algorithm; 2] = [Algorithm::LocalCoin, Algorithm::CommonCoin];

    /// Runs the selected algorithm on `env`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`Halt`].
    pub fn run(
        self,
        env: &mut dyn Env,
        proposal: Bit,
        cfg: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        match self {
            Algorithm::LocalCoin => ben_or_hybrid(env, proposal, cfg),
            Algorithm::CommonCoin => common_coin_hybrid(env, proposal, cfg),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::LocalCoin => write!(f, "local-coin (Alg 2)"),
            Algorithm::CommonCoin => write!(f, "common-coin (Alg 3)"),
        }
    }
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::LocalCoin.to_string(), "local-coin (Alg 2)");
        assert_eq!(Algorithm::CommonCoin.to_string(), "common-coin (Alg 3)");
    }

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Bit>();
        assert_send::<Decision>();
        assert_send::<Halt>();
        assert_send::<Msg>();
        assert_send::<ProtocolConfig>();
        assert_send::<Algorithm>();
    }
}
