//! Resumable state machines: the paper's algorithms without threads.
//!
//! The `Env`-trait algorithms ([`crate::ben_or_hybrid`],
//! [`crate::common_coin_hybrid`]) are written in blocking pseudocode
//! style: `recv` suspends the caller, so every process needs its own call
//! stack — one OS thread per simulated process. That reference shape is
//! faithful to the paper but caps simulations at a few thousand processes.
//!
//! This module is the same protocol turned inside out: a
//! [`ConsensusSm`] is a plain struct that consumes one delivered
//! [`Msg`] per step and reports `Poll`-style [`Progress`] — it never
//! blocks, so a single-threaded engine can drive hundreds of thousands of
//! processes straight off an event heap (see `ofa-sim`'s event-driven
//! engine). The wait-free operations of the hybrid model — intra-cluster
//! consensus and coins — stay synchronous, provided by the engine through
//! [`SmCtx`]; only message reception suspends the machine.
//!
//! The machines are **step-for-step equivalent** to the blocking
//! algorithms: every environment interaction (send, receive, cluster
//! propose, coin, observation) happens in the same order with the same
//! arguments, so an engine that accounts steps and virtual time like the
//! thread conductor reproduces the conductor's executions bit for bit
//! (`tests/engine_equivalence.rs` asserts exactly that, trace hash
//! included).
//!
//! # Anatomy of a step
//!
//! ```text
//!        deliver Msg                 ┌────────────────────────────┐
//!  ───────────────────▶  on_msg ───▶│ mailbox route → tally →    │
//!                                   │ cluster consensus / coins  │──▶ Progress
//!  engine pops event                │ (via SmCtx) → broadcasts   │    NeedMsg / Sent /
//!                                   └────────────────────────────┘    Decided / Halted
//! ```
//!
//! One delivery can carry the machine arbitrarily far — completing an
//! exchange, pre-agreeing in the cluster, broadcasting the next phase and
//! draining buffered future messages — until it genuinely needs a fresh
//! message (or terminates). Outgoing messages accumulate in the step's
//! outbox and are returned inside the [`Progress`] value.

use crate::pattern::est_index;
use crate::{
    Algorithm, Bit, Decision, Est, Halt, Mailbox, MailboxItem, Msg, MsgKind, ObsEvent, Phase,
    ProtocolConfig,
};
use ofa_sharedmem::{CodableValue, Slot};
use ofa_topology::{Partition, ProcessId};
use std::sync::Arc;

/// The synchronous services a state machine needs while stepping: the
/// wait-free operations of the hybrid model plus bookkeeping hooks.
///
/// This is [`crate::Env`] minus the blocking `recv` — message input is
/// *pushed* via [`ConsensusSm::on_msg`] instead of pulled. Engines
/// implement it once per process and are free to charge virtual time,
/// count steps, record traces, and inject crashes by returning
/// `Err(Halt)` from the fallible methods, exactly like an `Env`.
pub trait SmCtx {
    /// Hands one message to the network; returns the virtual send time
    /// the engine assigns (0 where time is not modeled). The machine
    /// records that timestamp in its outbox entry.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step; like the paper's
    /// non-reliable broadcast, any prefix already sent stays sent.
    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<u64, Halt>;

    /// Charged when the machine is about to suspend for a message — the
    /// equivalent of entering the blocking `recv` call.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn begin_recv(&mut self) -> Result<(), Halt>;

    /// Proposes to the cluster's consensus object (wait-free).
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt>;

    /// Draws this process's local coin.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn local_coin(&mut self) -> Result<Bit, Halt>;

    /// Reads the common coin at `index`.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn common_coin(&mut self, index: u64) -> Result<Bit, Halt>;

    /// Reports a protocol-level event (tracing, invariants). Default:
    /// ignored.
    fn observe(&mut self, _event: ObsEvent) {}

    /// Notes one invocation of the `broadcast` macro-operation (the sends
    /// themselves still go through [`SmCtx::send`]). Default: ignored.
    fn note_broadcast(&mut self) {}
}

/// One outgoing message produced by a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outgoing {
    /// Destination process.
    pub to: ProcessId,
    /// Payload.
    pub msg: MsgKind,
    /// Virtual send time reported by [`SmCtx::send`].
    pub sent_at: u64,
}

/// An outbox entry: a single send, or a whole uniform broadcast.
///
/// A broadcast whose sends all carry the same timestamp (the engine
/// charges no per-send cost) collapses into one [`OutItem::Broadcast`]
/// entry, letting schedulers enqueue it as a single event instead of `n`
/// — the difference between O(n²) and O(n) heap residency per round at
/// cluster scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutItem {
    /// One point-to-point send.
    One(Outgoing),
    /// `msg` sent to every process `p_0 … p_{n-1}` in index order, all at
    /// the same virtual send time.
    Broadcast {
        /// Payload (identical for every destination).
        msg: MsgKind,
        /// Virtual send time shared by all destinations.
        sent_at: u64,
    },
}

/// The sends produced by one step, in send order.
pub type Outbox = Vec<OutItem>;

/// `Poll`-style progress reported by every step of a [`ConsensusSm`].
#[derive(Debug, PartialEq, Eq)]
pub enum Progress {
    /// The machine is suspended waiting for the next delivered message;
    /// this step produced no sends.
    NeedMsg,
    /// The machine produced sends (drain them into the network) and is
    /// again suspended waiting for the next delivered message.
    Sent(Outbox),
    /// Terminal: the machine decided. The final `DECIDE` broadcast is in
    /// the outbox. The machine must not be stepped again.
    Decided(Decision, Outbox),
    /// Terminal: the machine halted without deciding (crash or stop).
    /// Sends already performed before the halt are in the outbox — a
    /// crash mid-broadcast delivers to an arbitrary prefix, like the
    /// paper's non-reliable broadcast macro-operation.
    Halted(Halt, Outbox),
}

impl Progress {
    /// `true` for the terminal variants.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Progress::Decided(..) | Progress::Halted(..))
    }
}

/// Immutable per-run topology shared by all machines of one execution:
/// the partition plus precomputed cluster sizes, so a machine's
/// per-message supporter accounting is O(1) instead of O(n/64).
#[derive(Debug)]
pub struct SmTopology {
    partition: Partition,
    cluster_sizes: Vec<usize>,
}

impl SmTopology {
    /// Precomputes the shared topology of a run.
    pub fn new(partition: Partition) -> Self {
        let cluster_sizes = partition.sizes();
        SmTopology {
            partition,
            cluster_sizes,
        }
    }

    /// The underlying partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    fn n(&self) -> usize {
        self.partition.n()
    }

    /// The credit unit a sender maps to: its cluster index under "one for
    /// all" amplification, its own index otherwise.
    fn unit_of(&self, from: ProcessId, amplify: bool) -> (usize, usize) {
        if amplify {
            let x = self.partition.cluster_of(from).index();
            (x, self.cluster_sizes[x])
        } else {
            (from.index(), 1)
        }
    }

    fn units(&self, amplify: bool) -> usize {
        if amplify {
            self.partition.m()
        } else {
            self.partition.n()
        }
    }
}

/// A set over credit units (clusters or single processes) with an
/// incrementally maintained total weight.
#[derive(Debug, Clone, Default)]
struct UnitSet {
    words: Vec<u64>,
    weight: usize,
}

impl UnitSet {
    fn with_units(units: usize) -> Self {
        UnitSet {
            words: vec![0; units.div_ceil(64)],
            weight: 0,
        }
    }

    /// Inserts `unit` with `weight`; no-op if already present.
    fn credit(&mut self, unit: usize, weight: usize) {
        let (w, b) = (unit / 64, unit % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.weight += weight;
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.weight = 0;
    }
}

/// Incremental supporter accounting for one `msg_exchange` invocation —
/// semantically identical to [`crate::Supporters`] (same majority, `rec`,
/// and coverage answers on the same credit sequence) but O(1) per
/// message: because every process belongs to exactly one cluster, each
/// per-value supporter set is a disjoint union of whole credit units, so
/// set cardinalities reduce to weight counters.
#[derive(Debug)]
struct Tally {
    n: usize,
    /// Supporter weights for `0`, `1`, `⊥` (indexed by `est_index`).
    sets: [UnitSet; 3],
    /// Union of all supporter sets.
    cover: UnitSet,
}

impl Tally {
    fn new(n: usize, units: usize) -> Self {
        Tally {
            n,
            sets: [
                UnitSet::with_units(units),
                UnitSet::with_units(units),
                UnitSet::with_units(units),
            ],
            cover: UnitSet::with_units(units),
        }
    }

    fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.cover.clear();
    }

    /// Credits `unit` (with `weight` processes) as a supporter of `est`.
    fn credit(&mut self, est: Est, unit: usize, weight: usize) {
        self.sets[est_index(est)].credit(unit, weight);
        self.cover.credit(unit, weight);
    }

    /// Line 7 of Algorithm 1: supporters jointly cover a strict majority.
    fn coverage_is_majority(&self) -> bool {
        2 * self.cover.weight > self.n
    }

    /// Line 6 of Algorithm 2: the value supported by a strict majority.
    fn majority_value(&self) -> Option<Bit> {
        Bit::ALL
            .into_iter()
            .find(|&b| 2 * self.sets[est_index(Some(b))].weight > self.n)
    }

    /// The paper's `rec_i` as `(saw_zero, saw_one, saw_bot)`.
    fn rec(&self) -> crate::RecSet {
        crate::RecSet {
            saw_zero: self.sets[est_index(Some(Bit::Zero))].weight > 0,
            saw_one: self.sets[est_index(Some(Bit::One))].weight > 0,
            saw_bot: self.sets[est_index(None)].weight > 0,
        }
    }
}

/// The slot-phase index Algorithm 3 uses for its single per-round object
/// (kept identical to the blocking implementation).
const CC_SLOT: u8 = 0;

/// One consensus process as a resumable state machine — Algorithm 2
/// (local coin) or Algorithm 3 (common coin), selected at construction.
///
/// Lifecycle: create, [`ConsensusSm::start`] once, then feed every
/// delivered message through [`ConsensusSm::on_msg`] until a terminal
/// [`Progress`] is returned (or the engine ends the run with
/// [`ConsensusSm::halt`]). Outgoing messages ride inside each `Progress`.
///
/// # Examples
///
/// A one-process universe decides as soon as its own broadcasts loop
/// back:
///
/// ```
/// use ofa_core::sm::{ConsensusSm, NullCtx, OutItem, Progress, SmTopology};
/// use ofa_core::{Algorithm, Bit, Msg, ProtocolConfig};
/// use ofa_topology::{Partition, ProcessId};
/// use std::sync::Arc;
///
/// let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
/// let mut sm = ConsensusSm::new(
///     Algorithm::LocalCoin,
///     ProcessId(0),
///     topo,
///     0,
///     Bit::One,
///     ProtocolConfig::paper(),
/// );
/// let mut ctx = NullCtx;
/// // start() broadcasts PHASE1 and suspends:
/// let Progress::Sent(outbox) = sm.start(&mut ctx) else { panic!() };
/// // deliver the machine its own messages until it decides:
/// let mut pending: Vec<Msg> = flatten(&outbox, 1);
/// loop {
///     let msg = pending.remove(0);
///     match sm.on_msg(msg, &mut ctx) {
///         Progress::Sent(out) => pending.extend(flatten(&out, 1)),
///         Progress::Decided(d, _) => {
///             assert_eq!(d.value, Bit::One);
///             break;
///         }
///         Progress::NeedMsg => {}
///         Progress::Halted(h, _) => panic!("{h}"),
///     }
/// }
///
/// fn flatten(outbox: &[OutItem], n: usize) -> Vec<Msg> {
///     let mut msgs = Vec::new();
///     for item in outbox {
///         match *item {
///             OutItem::One(o) => msgs.push(Msg { from: ProcessId(0), kind: o.msg }),
///             OutItem::Broadcast { msg, .. } => {
///                 msgs.extend((0..n).map(|_| Msg { from: ProcessId(0), kind: msg }));
///             }
///         }
///     }
///     msgs
/// }
/// ```
#[derive(Debug)]
pub struct ConsensusSm {
    algorithm: Algorithm,
    me: ProcessId,
    topo: Arc<SmTopology>,
    cfg: ProtocolConfig,
    instance: u64,
    /// `est1` of Algorithm 2 / `est` of Algorithm 3.
    est: Bit,
    round: u64,
    phase: Phase,
    tally: Tally,
    mailbox: Mailbox,
    outbox: Outbox,
    done: bool,
}

impl ConsensusSm {
    /// Creates a machine for `me` proposing `proposal` in `instance`
    /// (single-shot consensus uses instance 0).
    pub fn new(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        instance: u64,
        proposal: Bit,
        cfg: ProtocolConfig,
    ) -> Self {
        let n = topo.n();
        let units = topo.units(cfg.amplify);
        ConsensusSm {
            algorithm,
            me,
            topo,
            cfg,
            instance,
            est: proposal,
            round: 0,
            phase: Phase::One,
            tally: Tally::new(n, units),
            mailbox: Mailbox::new(),
            outbox: Vec::new(),
            done: false,
        }
    }

    /// This machine's process identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// `true` once a terminal [`Progress`] has been returned.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Runs the machine up to its first suspension: proposes, enters
    /// round 1 (cluster pre-agreement + `PHASE1` broadcast) and pumps any
    /// buffered input. Call exactly once, before any [`ConsensusSm::on_msg`].
    pub fn start<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Progress {
        assert!(
            self.round == 0 && !self.done,
            "start() must be the first step"
        );
        ctx.observe(ObsEvent::Propose {
            instance: self.instance,
            value: self.est,
        });
        let res = self.next_round(ctx).and_then(|d| match d {
            Some(d) => Ok(Some(d)),
            None => self.pump(ctx),
        });
        self.finish_step(res, ctx)
    }

    /// Consumes one delivered message and advances as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if called after a terminal `Progress` (the engine must stop
    /// stepping a finished machine).
    pub fn on_msg<C: SmCtx + ?Sized>(&mut self, msg: Msg, ctx: &mut C) -> Progress {
        assert!(!self.done, "on_msg() on a finished machine");
        let res = match self
            .mailbox
            .accept(msg, self.instance, self.round, self.phase)
        {
            Some(item) => self.apply(item, ctx).and_then(|d| match d {
                Some(d) => Ok(Some(d)),
                None => self.pump(ctx),
            }),
            // Buffered, stale, or an app payload: the blocking code would
            // loop straight back into `recv`.
            None => ctx.begin_recv().map(|()| None),
        };
        self.finish_step(res, ctx)
    }

    /// Ends the machine externally — a crash event or run shutdown while
    /// the machine is suspended. Mirrors the blocking `recv` returning
    /// `Err(halt)`.
    pub fn halt<C: SmCtx + ?Sized>(&mut self, halt: Halt, ctx: &mut C) -> Progress {
        self.finish_step(Err(halt), ctx)
    }

    /// Converts a step result into [`Progress`], draining the outbox and
    /// emitting the end-of-instance mailbox report on terminal steps.
    fn finish_step<C: SmCtx + ?Sized>(
        &mut self,
        res: Result<Option<Decision>, Halt>,
        ctx: &mut C,
    ) -> Progress {
        let report = |mailbox: &mut Mailbox, ctx: &mut C| {
            ctx.observe(ObsEvent::MailboxStats {
                stale_dropped: mailbox.take_stale_delta(),
            });
        };
        let outbox = std::mem::take(&mut self.outbox);
        match res {
            Ok(None) => {
                if outbox.is_empty() {
                    Progress::NeedMsg
                } else {
                    Progress::Sent(outbox)
                }
            }
            Ok(Some(decision)) => {
                self.done = true;
                report(&mut self.mailbox, ctx);
                Progress::Decided(decision, outbox)
            }
            Err(halt) => {
                self.done = true;
                report(&mut self.mailbox, ctx);
                Progress::Halted(halt, outbox)
            }
        }
    }

    /// Serves buffered input for the current slot until the machine
    /// genuinely needs a fresh message (charging the `recv` entry) or
    /// terminates.
    fn pump<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Result<Option<Decision>, Halt> {
        loop {
            match self
                .mailbox
                .take_buffered(self.instance, self.round, self.phase)
            {
                Some(item) => {
                    if let Some(d) = self.apply(item, ctx)? {
                        return Ok(Some(d));
                    }
                }
                None => {
                    ctx.begin_recv()?;
                    return Ok(None);
                }
            }
        }
    }

    /// Processes one mailbox item for the current exchange.
    fn apply<C: SmCtx + ?Sized>(
        &mut self,
        item: MailboxItem,
        ctx: &mut C,
    ) -> Result<Option<Decision>, Halt> {
        match item {
            MailboxItem::Decide { value } => self.decide(value, true, ctx).map(Some),
            MailboxItem::Phase { from, est } => {
                // Lines 5-6 of Algorithm 1: credit the sender (amplified
                // to its whole cluster when the switch is on)…
                let (unit, weight) = self.topo.unit_of(from, self.cfg.amplify);
                self.tally.credit(est, unit, weight);
                // …and exit once the supporters cover a strict majority.
                if self.tally.coverage_is_majority() {
                    self.complete_exchange(ctx)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// The code after `msg_exchange` returns `Completed` — phase
    /// transition, decision, or next round.
    fn complete_exchange<C: SmCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
    ) -> Result<Option<Decision>, Halt> {
        match (self.algorithm, self.phase) {
            (Algorithm::LocalCoin, Phase::One) => {
                // (6-7) est2 <- majority value or ⊥.
                let mut est2: Est = self.tally.majority_value();
                ctx.observe(ObsEvent::Est2 {
                    instance: self.instance,
                    round: self.round,
                    est2,
                });
                // (8) est2 <- CONS_x[r, 2].propose(est2)
                if self.cfg.cluster_preagree {
                    let decided = self.preagree(ctx, Phase::Two.slot_index(), est2.encode())?;
                    est2 = Est::decode(decided);
                }
                // (9) msg_exchange(r, 2, est2)
                self.begin_exchange(Phase::Two, est2, ctx)?;
                Ok(None)
            }
            (Algorithm::LocalCoin, Phase::Two) => {
                // (10-11) classify rec.
                let rec = self.tally.rec();
                ctx.observe(ObsEvent::Rec {
                    instance: self.instance,
                    round: self.round,
                    saw_zero: rec.saw_zero,
                    saw_one: rec.saw_one,
                    saw_bot: rec.saw_bot,
                });
                match rec.classify() {
                    // (12) rec = {v}: decide v.
                    crate::RecClass::Single(v) => self.decide(v, false, ctx).map(Some),
                    // (13) rec = {v, ⊥}: adopt v.
                    crate::RecClass::ValueAndBot(v) => {
                        self.est = v;
                        self.next_round(ctx)
                    }
                    // (14) rec = {⊥}: flip the local coin.
                    crate::RecClass::BotOnly => {
                        let c = ctx.local_coin()?;
                        ctx.observe(ObsEvent::Coin {
                            round: self.round,
                            common: false,
                            value: c,
                        });
                        self.est = c;
                        self.next_round(ctx)
                    }
                    // Unreachable when WA1 holds (see the blocking
                    // implementation for the E9 ablation rationale).
                    crate::RecClass::Conflict => {
                        self.est = Bit::Zero;
                        self.next_round(ctx)
                    }
                }
            }
            (Algorithm::CommonCoin, _) => {
                // (6) s <- common_coin(), at a per-instance offset.
                let coin_index = self
                    .instance
                    .wrapping_mul(0x1_0000_0000)
                    .wrapping_add(self.round);
                let coin = ctx.common_coin(coin_index)?;
                ctx.observe(ObsEvent::Coin {
                    round: self.round,
                    common: true,
                    value: coin,
                });
                // (7-10) decide when the coin matches the majority value.
                if let Some(v) = self.tally.majority_value() {
                    self.est = v;
                    if coin == v {
                        return self.decide(v, false, ctx).map(Some);
                    }
                } else {
                    self.est = coin;
                }
                self.next_round(ctx)
            }
        }
    }

    /// Lines 2-5: enter the next round — budget check, cluster
    /// pre-agreement, first (or only) exchange of the round.
    fn next_round<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Result<Option<Decision>, Halt> {
        self.round += 1;
        if let Some(max) = self.cfg.max_rounds {
            if self.round > max {
                return Err(Halt::Stopped);
            }
        }
        ctx.observe(ObsEvent::RoundStart {
            instance: self.instance,
            round: self.round,
        });
        let slot_phase = match self.algorithm {
            Algorithm::LocalCoin => Phase::One.slot_index(),
            Algorithm::CommonCoin => CC_SLOT,
        };
        if self.cfg.cluster_preagree {
            let decided = self.preagree(ctx, slot_phase, self.est.encode())?;
            self.est = Bit::decode(decided);
        }
        self.begin_exchange(Phase::One, Some(self.est), ctx)?;
        Ok(None)
    }

    /// One intra-cluster consensus invocation plus its observation.
    fn preagree<C: SmCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
        slot_phase: u8,
        enc: u64,
    ) -> Result<u64, Halt> {
        let slot = Slot::in_instance(self.instance, self.round, slot_phase);
        let decided = ctx.cluster_propose(slot, enc)?;
        ctx.observe(ObsEvent::ClusterAgreed { slot, decided });
        Ok(decided)
    }

    /// Starts `msg_exchange(r, ph, est)`: broadcast, fresh supporter
    /// tally.
    fn begin_exchange<C: SmCtx + ?Sized>(
        &mut self,
        phase: Phase,
        est: Est,
        ctx: &mut C,
    ) -> Result<(), Halt> {
        self.phase = phase;
        self.tally.reset();
        self.broadcast(
            MsgKind::Phase {
                instance: self.instance,
                round: self.round,
                phase,
                est,
            },
            ctx,
        )
    }

    /// Decides `value` (line 12 direct / line 17 relayed): observe,
    /// broadcast `DECIDE`, return the decision.
    fn decide<C: SmCtx + ?Sized>(
        &mut self,
        value: Bit,
        relayed: bool,
        ctx: &mut C,
    ) -> Result<Decision, Halt> {
        ctx.observe(ObsEvent::Deciding {
            instance: self.instance,
            round: self.round,
            value,
            relayed,
        });
        self.broadcast(
            MsgKind::Decide {
                instance: self.instance,
                value,
            },
            ctx,
        )?;
        Ok(Decision {
            value,
            round: self.round,
            relayed,
        })
    }

    /// The `broadcast(msg)` macro-operation: send to every process
    /// (including self) in index order, collapsing into one
    /// [`OutItem::Broadcast`] when all sends share a timestamp.
    fn broadcast<C: SmCtx + ?Sized>(&mut self, msg: MsgKind, ctx: &mut C) -> Result<(), Halt> {
        ctx.note_broadcast();
        let n = self.topo.n();
        let start = self.outbox.len();
        let mut uniform = true;
        let mut first_at = 0;
        for j in 0..n {
            let sent_at = ctx.send(ProcessId(j), msg)?;
            if j == 0 {
                first_at = sent_at;
            } else if sent_at != first_at {
                uniform = false;
            }
            self.outbox.push(OutItem::One(Outgoing {
                to: ProcessId(j),
                msg,
                sent_at,
            }));
        }
        if uniform && n > 1 {
            self.outbox.truncate(start);
            self.outbox.push(OutItem::Broadcast {
                msg,
                sent_at: first_at,
            });
        }
        Ok(())
    }
}

/// An [`SmCtx`] that models nothing: sends cost no time, the cluster
/// object echoes the proposal, coins are constant 0. Useful for doc
/// examples and tests of machines whose behavior does not depend on the
/// services (e.g. single-process universes).
#[derive(Debug, Default)]
pub struct NullCtx;

impl SmCtx for NullCtx {
    fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<u64, Halt> {
        Ok(0)
    }
    fn begin_recv(&mut self) -> Result<(), Halt> {
        Ok(())
    }
    fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
        Ok(enc)
    }
    fn local_coin(&mut self) -> Result<Bit, Halt> {
        Ok(Bit::Zero)
    }
    fn common_coin(&mut self, _index: u64) -> Result<Bit, Halt> {
        Ok(Bit::Zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic test ctx: first-wins cluster objects, scripted
    /// coins, counted ops, optional crash at the k-th fallible call.
    struct TestCtx {
        cluster: HashMap<Slot, u64>,
        coin: Bit,
        calls: u64,
        crash_after: Option<u64>,
        events: Vec<ObsEvent>,
    }

    impl TestCtx {
        fn new(coin: Bit) -> Self {
            TestCtx {
                cluster: HashMap::new(),
                coin,
                calls: 0,
                crash_after: None,
                events: Vec::new(),
            }
        }

        fn step(&mut self) -> Result<(), Halt> {
            self.calls += 1;
            if let Some(k) = self.crash_after {
                if self.calls > k {
                    return Err(Halt::Crashed);
                }
            }
            Ok(())
        }
    }

    impl SmCtx for TestCtx {
        fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<u64, Halt> {
            self.step()?;
            Ok(0)
        }
        fn begin_recv(&mut self) -> Result<(), Halt> {
            self.step()
        }
        fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
            self.step()?;
            Ok(*self.cluster.entry(slot).or_insert(enc))
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            self.step()?;
            Ok(self.coin)
        }
        fn common_coin(&mut self, _index: u64) -> Result<Bit, Halt> {
            self.step()?;
            Ok(self.coin)
        }
        fn observe(&mut self, event: ObsEvent) {
            self.events.push(event);
        }
    }

    fn solo(algorithm: Algorithm, proposal: Bit) -> ConsensusSm {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        ConsensusSm::new(
            algorithm,
            ProcessId(0),
            topo,
            0,
            proposal,
            ProtocolConfig::paper(),
        )
    }

    /// Feeds a solo machine its own outbox until a terminal progress.
    fn run_solo(mut sm: ConsensusSm, ctx: &mut TestCtx) -> Progress {
        let mut queue: Vec<Msg> = Vec::new();
        let absorb = |queue: &mut Vec<Msg>, outbox: Outbox| {
            for item in outbox {
                match item {
                    OutItem::One(o) => queue.push(Msg {
                        from: ProcessId(0),
                        kind: o.msg,
                    }),
                    OutItem::Broadcast { msg, .. } => queue.push(Msg {
                        from: ProcessId(0),
                        kind: msg,
                    }),
                }
            }
        };
        match sm.start(ctx) {
            Progress::Sent(out) => absorb(&mut queue, out),
            Progress::NeedMsg => {}
            terminal => return terminal,
        }
        while !queue.is_empty() {
            let msg = queue.remove(0);
            match sm.on_msg(msg, ctx) {
                Progress::Sent(out) => absorb(&mut queue, out),
                Progress::NeedMsg => {}
                terminal => return terminal,
            }
        }
        panic!("solo machine starved without deciding");
    }

    #[test]
    fn solo_local_coin_decides_own_proposal_in_round_one() {
        for v in Bit::ALL {
            let mut ctx = TestCtx::new(Bit::Zero);
            let progress = run_solo(solo(Algorithm::LocalCoin, v), &mut ctx);
            let Progress::Decided(d, _) = progress else {
                panic!("expected decision, got {progress:?}");
            };
            assert_eq!(d.value, v, "validity");
            assert_eq!(d.round, 1);
            assert!(!d.relayed);
        }
    }

    #[test]
    fn solo_common_coin_waits_for_matching_coin() {
        // Coin constantly 0, proposal 1: the machine must keep the
        // estimate at 1 (line 8) and never decide within the budget.
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let sm = ConsensusSm::new(
            Algorithm::CommonCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(5),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let progress = run_solo(sm, &mut ctx);
        assert_eq!(progress, Progress::Halted(Halt::Stopped, Vec::new()));

        // Coin 1: decides immediately.
        let mut ctx = TestCtx::new(Bit::One);
        let progress = run_solo(solo(Algorithm::CommonCoin, Bit::One), &mut ctx);
        let Progress::Decided(d, _) = progress else {
            panic!("expected decision, got {progress:?}");
        };
        assert_eq!(d.value, Bit::One);
        assert_eq!(d.round, 1);
    }

    #[test]
    fn zero_round_budget_stops_before_any_exchange() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(0),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert_eq!(sm.start(&mut ctx), Progress::Halted(Halt::Stopped, vec![]));
        assert!(sm.is_done());
    }

    #[test]
    fn relayed_decide_is_adopted_and_rebroadcast() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            Arc::clone(&topo),
            0,
            Bit::Zero,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), Progress::Sent(_)));
        let progress = sm.on_msg(
            Msg {
                from: ProcessId(1),
                kind: MsgKind::Decide {
                    instance: 0,
                    value: Bit::One,
                },
            },
            &mut ctx,
        );
        let Progress::Decided(d, outbox) = progress else {
            panic!("expected relayed decision, got {progress:?}");
        };
        assert_eq!(d.value, Bit::One);
        assert!(d.relayed);
        // The DECIDE must be relayed exactly once, as one broadcast.
        assert_eq!(
            outbox,
            vec![OutItem::Broadcast {
                msg: MsgKind::Decide {
                    instance: 0,
                    value: Bit::One
                },
                sent_at: 0
            }]
        );
    }

    #[test]
    fn crash_mid_broadcast_keeps_the_sent_prefix() {
        // n = 3, crash at the 3rd fallible call: cluster_propose, then
        // one successful send, then the second send crashes.
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(3)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        ctx.crash_after = Some(2);
        let progress = sm.start(&mut ctx);
        let Progress::Halted(Halt::Crashed, outbox) = progress else {
            panic!("expected crash, got {progress:?}");
        };
        assert_eq!(outbox.len(), 1, "exactly the pre-crash send survives");
        assert!(matches!(outbox[0], OutItem::One(o) if o.to == ProcessId(0)));
        assert!(sm.is_done());
    }

    #[test]
    fn irrelevant_message_costs_one_recv_entry() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), Progress::Sent(_)));
        let calls_before = ctx.calls;
        // A stale message (round 0 does not exist; use a future-instance
        // app-free phase of a *past* slot: round 1 phase 1 is current, so
        // deliver a message for a past instance).
        let progress = sm.on_msg(
            Msg {
                from: ProcessId(1),
                kind: MsgKind::Phase {
                    instance: 0,
                    round: 9,
                    phase: Phase::One,
                    est: Some(Bit::Zero),
                },
            },
            &mut ctx,
        );
        // Future-slot message: buffered, machine re-enters recv (1 call).
        assert_eq!(progress, Progress::NeedMsg);
        assert_eq!(ctx.calls, calls_before + 1);
    }

    #[test]
    fn tally_matches_supporters_semantics() {
        use crate::{RecClass, Supporters};
        use ofa_topology::ProcessSet;
        // Fig 1 right: {p1} {p2..p5} {p6,p7} — compare the incremental
        // tally against the reference Supporters on the same credits.
        let part = Partition::fig1_right();
        let topo = SmTopology::new(part.clone());
        let n = part.n();
        let mut tally = Tally::new(n, topo.units(true));
        let mut sup = Supporters::empty(n);
        let credits: [(usize, Est); 4] = [
            (1, Some(Bit::One)),  // p2 → cluster {p2..p5}
            (4, Some(Bit::One)),  // p5 → same cluster (dedup)
            (0, None),            // p1 → singleton
            (5, Some(Bit::Zero)), // p6 → {p6,p7}
        ];
        for (from, est) in credits {
            let from = ProcessId(from);
            let (unit, weight) = topo.unit_of(from, true);
            tally.credit(est, unit, weight);
            sup.credit(est, part.cluster_members_of(from));
            assert_eq!(
                tally.coverage_is_majority(),
                sup.coverage().is_majority_of(n)
            );
            assert_eq!(tally.majority_value(), sup.majority_value());
            assert_eq!(tally.rec(), sup.rec());
        }
        assert_eq!(tally.rec().classify(), RecClass::Conflict);
        // Reset empties everything.
        tally.reset();
        assert!(!tally.coverage_is_majority());
        assert_eq!(tally.rec(), Supporters::empty(n).rec());
        // Non-amplified: units are processes.
        let mut tally = Tally::new(n, topo.units(false));
        let mut sup = Supporters::empty(n);
        for (from, est) in credits {
            let from = ProcessId(from);
            let (unit, weight) = topo.unit_of(from, false);
            tally.credit(est, unit, weight);
            sup.credit(est, &ProcessSet::singleton(n, from));
            assert_eq!(tally.majority_value(), sup.majority_value());
            assert_eq!(
                tally.coverage_is_majority(),
                sup.coverage().is_majority_of(n)
            );
        }
    }

    #[test]
    fn mailbox_stats_are_reported_on_termination() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(0),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let _ = sm.start(&mut ctx);
        assert!(ctx
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::MailboxStats { .. })));
    }
}
