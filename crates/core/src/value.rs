//! Binary consensus values.
//!
//! The paper's algorithms are *binary*: proposals are in `{0, 1}` and the
//! second phase additionally circulates the default value `⊥` ("I champion
//! no value"). [`Bit`] is the proposal domain; [`Est`] (`Option<Bit>`,
//! `None` = `⊥`) is the phase-2 domain.

use ofa_sharedmem::CodableValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary consensus value (`0` or `1`).
///
/// # Examples
///
/// ```
/// use ofa_core::Bit;
///
/// let b = Bit::from(true);
/// assert_eq!(b, Bit::One);
/// assert_eq!(b.flip(), Bit::Zero);
/// assert_eq!(b.to_string(), "1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bit {
    /// The value 0.
    Zero,
    /// The value 1.
    One,
}

impl Bit {
    /// Both values, in order — handy for exhaustive tests.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// `true` for [`Bit::One`].
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Bit::One)
    }

    /// The other value.
    #[inline]
    pub fn flip(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> bool {
        b.as_bool()
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bit::Zero => write!(f, "0"),
            Bit::One => write!(f, "1"),
        }
    }
}

impl CodableValue for Bit {
    fn encode(self) -> u64 {
        self.as_bool() as u64
    }
    fn decode(word: u64) -> Self {
        Bit::from(word != 0)
    }
}

/// An *estimate*: a binary value or the default `⊥` (`None`), the domain of
/// the `est2` variables and phase-2 messages of Algorithm 2.
pub type Est = Option<Bit>;

/// Renders an estimate the way the paper writes it: `0`, `1`, or `⊥`.
///
/// # Examples
///
/// ```
/// use ofa_core::{fmt_est, Bit};
///
/// assert_eq!(fmt_est(Some(Bit::One)), "1");
/// assert_eq!(fmt_est(None), "⊥");
/// ```
pub fn fmt_est(e: Est) -> String {
    match e {
        Some(b) => b.to_string(),
        None => "⊥".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert_eq!(Bit::Zero.flip(), Bit::One);
        assert_eq!(Bit::One.flip().flip(), Bit::One);
    }

    #[test]
    fn codable_round_trip_including_bot() {
        for b in Bit::ALL {
            assert_eq!(Bit::decode(b.encode()), b);
        }
        // Est = Option<Bit> via the blanket Option impl: ⊥, 0, 1 all distinct.
        let encs: Vec<u64> = [None, Some(Bit::Zero), Some(Bit::One)]
            .into_iter()
            .map(|e: Est| e.encode())
            .collect();
        assert_eq!(encs.len(), 3);
        assert!(encs[0] != encs[1] && encs[1] != encs[2] && encs[0] != encs[2]);
        for e in [None, Some(Bit::Zero), Some(Bit::One)] {
            let e: Est = e;
            assert_eq!(Est::decode(e.encode()), e);
        }
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(fmt_est(None), "⊥");
        assert_eq!(fmt_est(Some(Bit::Zero)), "0");
    }
}
