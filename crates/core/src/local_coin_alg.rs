//! Algorithm 2: local-coin binary consensus for the hybrid model.
//!
//! A round-based Las Vegas algorithm extending Ben-Or's randomized
//! consensus [4] with the cluster dimension. Each round has two phases;
//! each phase first agrees *inside the cluster* (via `CONS_x[r, ph]`), then
//! exchanges across *all* clusters with `msg_exchange`.
//!
//! The code below is a line-for-line transcription of the paper's
//! Algorithm 2; comments cite the paper's line numbers.

use crate::pattern::{msg_exchange, Exchange, RecClass};
use crate::{Bit, Decision, Env, Est, Halt, Mailbox, MsgKind, ObsEvent, Phase, ProtocolConfig};
use ofa_sharedmem::{CodableValue, Slot};

/// Runs `propose(v_i)` of Algorithm 2 on behalf of the calling process
/// (single-shot: protocol instance 0, fresh mailbox).
///
/// Returns the [`Decision`] (value, deciding round, direct/relayed) or the
/// [`Halt`] that interrupted the process.
///
/// # Errors
///
/// * `Halt::Crashed` — the substrate injected a crash,
/// * `Halt::Stopped` — round budget exhausted, or the process can never be
///   unblocked (e.g. the termination predicate of §III-B does not hold).
///
/// # Examples
///
/// See `ofa-sim` / `ofa-runtime` for complete runnable executions; this
/// function needs an [`Env`] implementation to do anything.
pub fn ben_or_hybrid(
    env: &mut dyn Env,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    let mut mailbox = Mailbox::new();
    ben_or_hybrid_instance(env, &mut mailbox, 0, proposal, cfg)
}

/// Instance-aware form of [`ben_or_hybrid`], for layers that run many
/// consensus instances over one environment (multivalued consensus,
/// replicated logs). Instances must be executed in increasing order at
/// each process, sharing one [`Mailbox`].
///
/// # Errors
///
/// Same contract as [`ben_or_hybrid`].
pub fn ben_or_hybrid_instance(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    instance: u64,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    let result = ben_or_hybrid_inner(env, mailbox, instance, proposal, cfg);
    // Mailbox hygiene report (how many stale buffered messages this
    // instance discarded), folded into the substrate's counters.
    env.observe(ObsEvent::MailboxStats {
        stale_dropped: mailbox.take_stale_delta(),
    });
    result
}

fn ben_or_hybrid_inner(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    instance: u64,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    env.observe(ObsEvent::Propose {
        instance,
        value: proposal,
    });
    let partition = env.partition().clone();

    // (1) est1_i <- v_i; r_i <- 0
    let mut est1 = proposal;
    let mut round: u64 = 0;

    // (2) loop forever
    loop {
        // (3) r_i <- r_i + 1
        round += 1;
        if let Some(max) = cfg.max_rounds {
            if round > max {
                return Err(Halt::Stopped);
            }
        }
        env.observe(ObsEvent::RoundStart { instance, round });

        // ---- Phase 1: try to champion a value ----
        // (4) est1_i <- CONS_x[r, 1].propose(est1_i)
        if cfg.cluster_preagree {
            let slot = Slot::in_instance(instance, round, Phase::One.slot_index());
            let decided = env.cluster_propose(slot, est1.encode())?;
            env.observe(ObsEvent::ClusterAgreed { slot, decided });
            est1 = Bit::decode(decided);
        }
        // (5) msg_exchange(r, 1, est1_i)
        let sup1 = match msg_exchange(
            env,
            mailbox,
            &partition,
            instance,
            round,
            Phase::One,
            Some(est1),
            cfg.amplify,
        )? {
            Exchange::DecideSeen(v) => return relay_decide(env, instance, round, v),
            Exchange::Completed(sup) => sup,
        };
        // (6-7) est2_i <- v if a majority supports v, else ⊥
        let mut est2: Est = sup1.majority_value();
        env.observe(ObsEvent::Est2 {
            instance,
            round,
            est2,
        });
        // Here WA1 holds: (est2_i != ⊥) ∧ (est2_j != ⊥) ⇒ est2_i = est2_j.

        // ---- Phase 2: try to decide a value from the est2 values ----
        // (8) est2_i <- CONS_x[r, 2].propose(est2_i)
        if cfg.cluster_preagree {
            let slot = Slot::in_instance(instance, round, Phase::Two.slot_index());
            let decided = env.cluster_propose(slot, est2.encode())?;
            env.observe(ObsEvent::ClusterAgreed { slot, decided });
            est2 = Est::decode(decided);
        }
        // (9) msg_exchange(r, 2, est2_i)
        let sup2 = match msg_exchange(
            env,
            mailbox,
            &partition,
            instance,
            round,
            Phase::Two,
            est2,
            cfg.amplify,
        )? {
            Exchange::DecideSeen(v) => return relay_decide(env, instance, round, v),
            Exchange::Completed(sup) => sup,
        };
        // (10) rec_i = {est2 | PHASE2(r, est2) received}
        let rec = sup2.rec();
        env.observe(ObsEvent::Rec {
            instance,
            round,
            saw_zero: rec.saw_zero,
            saw_one: rec.saw_one,
            saw_bot: rec.saw_bot,
        });
        // (11) WA2: (rec_i = {v}) and (rec_j = {⊥}) are mutually exclusive.
        match rec.classify() {
            // (12) rec = {v}: broadcast DECIDE(v); return v
            RecClass::Single(v) => {
                env.observe(ObsEvent::Deciding {
                    instance,
                    round,
                    value: v,
                    relayed: false,
                });
                env.broadcast(MsgKind::Decide { instance, value: v })?;
                return Ok(Decision {
                    value: v,
                    round,
                    relayed: false,
                });
            }
            // (13) rec = {v, ⊥}: est1 <- v (never decide differently later)
            RecClass::ValueAndBot(v) => est1 = v,
            // (14) rec = {⊥}: est1 <- local_coin()
            RecClass::BotOnly => {
                let c = env.local_coin()?;
                env.observe(ObsEvent::Coin {
                    round,
                    common: false,
                    value: c,
                });
                est1 = c;
            }
            // Unreachable when WA1 holds; reachable in the E9 ablation,
            // where we fall back deterministically (the observer flags the
            // WA1 violation — this branch exists to keep the ablation
            // executable, not to repair it).
            RecClass::Conflict => est1 = Bit::Zero,
        }
        // (15-16) end case; continue the loop.
    }
}

/// Line 17: on reception of `DECIDE(v)`, relay it and decide.
pub(crate) fn relay_decide(
    env: &mut dyn Env,
    instance: u64,
    round: u64,
    v: Bit,
) -> Result<Decision, Halt> {
    env.observe(ObsEvent::Deciding {
        instance,
        round,
        value: v,
        relayed: true,
    });
    env.broadcast(MsgKind::Decide { instance, value: v })?;
    Ok(Decision {
        value: v,
        round,
        relayed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Msg;
    use ofa_topology::{Partition, ProcessId};
    use std::collections::VecDeque;

    /// A solo universe: n = 1, everything self-delivered — the smallest
    /// closed system in which the algorithm can run to completion.
    struct Solo {
        part: Partition,
        queue: VecDeque<Msg>,
        cluster: std::collections::HashMap<Slot, u64>,
        coin: Bit,
    }

    impl Solo {
        fn new(coin: Bit) -> Self {
            Solo {
                part: Partition::single_cluster(1),
                queue: VecDeque::new(),
                cluster: Default::default(),
                coin,
            }
        }
    }

    impl Env for Solo {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
            if to == self.me() {
                self.queue.push_back(Msg {
                    from: self.me(),
                    kind: msg,
                });
            }
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.queue.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
            Ok(*self.cluster.entry(slot).or_insert(enc))
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(self.coin)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(self.coin)
        }
    }

    #[test]
    fn solo_process_decides_its_own_proposal_in_round_one() {
        for v in Bit::ALL {
            let mut env = Solo::new(Bit::Zero);
            let d = ben_or_hybrid(&mut env, v, &ProtocolConfig::paper()).unwrap();
            assert_eq!(d.value, v, "validity");
            assert_eq!(d.round, 1);
            assert!(!d.relayed);
        }
    }

    #[test]
    fn solo_process_decides_without_cluster_objects_too() {
        let cfg = ProtocolConfig::pure_message_passing();
        let d = ben_or_hybrid(&mut Solo::new(Bit::One), Bit::One, &cfg).unwrap();
        assert_eq!(d.value, Bit::One);
    }

    #[test]
    fn sequential_instances_share_one_mailbox() {
        let mut env = Solo::new(Bit::Zero);
        let mut mb = Mailbox::new();
        for instance in 0..4u64 {
            let v = Bit::from(instance % 2 == 0);
            let d =
                ben_or_hybrid_instance(&mut env, &mut mb, instance, v, &ProtocolConfig::paper())
                    .unwrap();
            assert_eq!(d.value, v, "instance {instance}");
            assert_eq!(d.round, 1);
        }
    }

    #[test]
    fn round_budget_stops_cleanly() {
        // An env that never delivers anything would block; a zero-round
        // budget must stop before any exchange.
        let cfg = ProtocolConfig::paper().with_max_rounds(0);
        let out = ben_or_hybrid(&mut Solo::new(Bit::Zero), Bit::One, &cfg);
        assert_eq!(out, Err(Halt::Stopped));
    }

    /// Env that observes a DECIDE as the very first delivery.
    #[test]
    fn relayed_decide_is_adopted_and_rebroadcast() {
        struct DecideFirst {
            inner: Solo,
            rebroadcasts: u32,
        }
        impl Env for DecideFirst {
            fn me(&self) -> ProcessId {
                ProcessId(0)
            }
            fn partition(&self) -> &Partition {
                &self.inner.part
            }
            fn send(&mut self, _to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
                if matches!(msg, MsgKind::Decide { .. }) {
                    self.rebroadcasts += 1;
                }
                Ok(())
            }
            fn recv(&mut self) -> Result<Msg, Halt> {
                Ok(Msg {
                    from: ProcessId(0),
                    kind: MsgKind::Decide {
                        instance: 0,
                        value: Bit::One,
                    },
                })
            }
            fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
                Ok(enc)
            }
            fn local_coin(&mut self) -> Result<Bit, Halt> {
                Ok(Bit::Zero)
            }
            fn common_coin(&mut self, _r: u64) -> Result<Bit, Halt> {
                Ok(Bit::Zero)
            }
        }
        let mut env = DecideFirst {
            inner: Solo::new(Bit::Zero),
            rebroadcasts: 0,
        };
        let d = ben_or_hybrid(&mut env, Bit::Zero, &ProtocolConfig::paper()).unwrap();
        assert_eq!(d.value, Bit::One);
        assert!(d.relayed);
        assert_eq!(env.rebroadcasts, 1, "DECIDE must be relayed exactly once");
    }

    #[test]
    fn crash_propagates_out() {
        struct CrashOnSend;
        impl Env for CrashOnSend {
            fn me(&self) -> ProcessId {
                ProcessId(0)
            }
            fn partition(&self) -> &Partition {
                // a leaked static partition keeps the stub simple
                static PART: std::sync::OnceLock<Partition> = std::sync::OnceLock::new();
                PART.get_or_init(|| Partition::single_cluster(1))
            }
            fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<(), Halt> {
                Err(Halt::Crashed)
            }
            fn recv(&mut self) -> Result<Msg, Halt> {
                Err(Halt::Crashed)
            }
            fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
                Ok(enc)
            }
            fn local_coin(&mut self) -> Result<Bit, Halt> {
                Ok(Bit::Zero)
            }
            fn common_coin(&mut self, _r: u64) -> Result<Bit, Halt> {
                Ok(Bit::Zero)
            }
        }
        let out = ben_or_hybrid(&mut CrashOnSend, Bit::Zero, &ProtocolConfig::paper());
        assert_eq!(out, Err(Halt::Crashed));
    }
}
