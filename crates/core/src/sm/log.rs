//! [`LogSm`]: a replicated-log replica as a resumable machine.

use super::{MultivaluedSm, MvProgress, Outbox, Progress, SmCtx, SmTopology};
use crate::multivalued::{log_body_decision, queue_proposal, LogDigest};
use crate::traffic::{TrafficSpec, TrafficState};
use crate::{Algorithm, Halt, Mailbox, Msg, Payload, ProtocolConfig};
use ofa_topology::ProcessId;
use serde::Serialize as _;
use std::sync::Arc;

/// A replicated-log replica as a resumable state machine — the exact
/// event-driven twin of [`crate::run_replicated_log`]: `slots`
/// [`MultivaluedSm`] instances chained in order over one shared mailbox,
/// proposing from this process's command queue (cycled), folding every
/// decided slot into a [`LogDigest`] and reporting the digest parity as
/// the final binary [`Progress::Decided`].
///
/// Every committed slot is observed as [`crate::ObsEvent::MvDecided`]
/// (by the embedded multivalued machines), which is how log collectors
/// — e.g. `ofa-smr`'s replicated-KV report builder — reconstruct the
/// committed command sequence per replica.
#[derive(Debug)]
pub struct LogSm {
    algorithm: Algorithm,
    me: ProcessId,
    topo: Arc<SmTopology>,
    cfg: ProtocolConfig,
    slots: u64,
    queue: Vec<Payload>,
    slot: u64,
    digest: LogDigest,
    inner: Option<MultivaluedSm>,
    outbox: Outbox,
    done: bool,
    /// Live client traffic, replacing the pre-seeded queue: each slot
    /// boundary pulls due arrivals and proposes a batch descriptor; the
    /// accumulated service stats are emitted once, at the terminal
    /// progress — exactly like [`crate::run_replicated_log`].
    traffic: Option<TrafficState>,
}

impl LogSm {
    /// Creates a replica for `me` committing `slots` log slots, proposing
    /// from `queue` (cycled; an empty queue proposes empty payloads) —
    /// or, with `traffic`, from the live arrival-driven proposer queue.
    pub fn new(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        queue: Vec<Payload>,
        slots: u64,
        cfg: ProtocolConfig,
        traffic: Option<TrafficState>,
    ) -> Self {
        LogSm {
            algorithm,
            me,
            topo,
            cfg,
            slots,
            queue,
            slot: 0,
            digest: LogDigest::new(),
            inner: None,
            outbox: Vec::new(),
            done: false,
            traffic,
        }
    }

    /// `true` once a terminal [`Progress`] has been returned.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Serializes the replica's resumable wait state: slot cursor, the
    /// rolling [`LogDigest`], and the running slot machine (if any). The
    /// command queue and slot count are scenario inputs, and the outbox
    /// is empty at every suspension, so neither is captured.
    pub fn snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("slot".to_string(), self.slot.to_value()),
            ("digest".to_string(), self.digest.value().to_value()),
            (
                "inner".to_string(),
                match &self.inner {
                    Some(inner) => inner.snapshot(),
                    None => serde::Value::Null,
                },
            ),
            ("done".to_string(), self.done.to_value()),
            (
                "traffic".to_string(),
                match &self.traffic {
                    Some(t) => t.snapshot(),
                    None => serde::Value::Null,
                },
            ),
        ])
    }

    /// Rebuilds a replica from a [`LogSm::snapshot`] value plus the
    /// scenario-side construction context (including the proposal queue,
    /// slot count, and traffic spec + seed, which the snapshot
    /// deliberately omits).
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        cfg: ProtocolConfig,
        queue: Vec<Payload>,
        slots: u64,
        traffic_spec: Option<&TrafficSpec>,
        seed: u64,
        v: &serde::Value,
    ) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("LogSm: missing field {name}")))
        };
        let digest: u64 = serde::Deserialize::from_value(field("digest")?)?;
        let inner = match field("inner")? {
            serde::Value::Null => None,
            snap => Some(MultivaluedSm::from_snapshot(
                algorithm,
                me,
                Arc::clone(&topo),
                cfg,
                snap,
            )?),
        };
        let traffic = match traffic_spec {
            None => None,
            Some(spec) => {
                let me_u = me.index() as u32;
                match v.get("traffic") {
                    Some(serde::Value::Null) | None => {
                        // Pre-traffic snapshot of a traffic scenario can
                        // only mean a fresh incarnation.
                        let n = topo.partition().n() as u32;
                        Some(TrafficState::new(spec, seed, me_u, n))
                    }
                    Some(snap) => Some(TrafficState::from_snapshot(spec, seed, me_u, snap)?),
                }
            }
        };
        Ok(LogSm {
            algorithm,
            me,
            topo,
            cfg,
            slots,
            queue,
            slot: serde::Deserialize::from_value(field("slot")?)?,
            digest: LogDigest::from_raw(digest),
            inner,
            outbox: Vec::new(),
            done: serde::Deserialize::from_value(field("done")?)?,
            traffic,
        })
    }

    /// Hands a drained outbox buffer back for reuse, routing it to the
    /// running slot machine when one is active (see
    /// [`super::ConsensusSm::recycle_outbox`]).
    pub fn recycle_outbox(&mut self, buf: Outbox) {
        match self.inner.as_mut() {
            Some(inner) => inner.recycle_outbox(buf),
            None => super::recycle_into(&mut self.outbox, buf),
        }
    }

    /// Accumulates a slot machine's sends (see [`super::absorb_out`]).
    fn absorb_out(&mut self, out: Outbox) {
        super::absorb_out(&mut self.outbox, out);
    }

    /// Runs the replica up to its first suspension (or straight to the
    /// decision for a zero-slot log). Call exactly once.
    pub fn start<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Progress {
        assert!(
            self.slot == 0 && self.inner.is_none() && !self.done,
            "start() must be the first step"
        );
        if self.slots == 0 {
            return self.finish_decided(ctx);
        }
        self.open_slot(Mailbox::new(), ctx)
    }

    /// Consumes one delivered message and advances as far as possible —
    /// possibly committing the current slot and opening the next within
    /// the same step.
    ///
    /// # Panics
    ///
    /// Panics if called after a terminal `Progress`.
    pub fn on_msg<C: SmCtx + ?Sized>(&mut self, msg: Msg, ctx: &mut C) -> Progress {
        assert!(!self.done, "on_msg() on a finished machine");
        let inner = self.inner.as_mut().expect("running replica has a slot");
        let progress = inner.on_msg(msg, ctx);
        self.after_slot_progress(progress, ctx)
    }

    /// Ends the replica externally (crash event or run shutdown).
    pub fn halt<C: SmCtx + ?Sized>(&mut self, halt: Halt, ctx: &mut C) -> Progress {
        assert!(!self.done, "halt() on a finished machine");
        if let Some(inner) = self.inner.as_mut() {
            match inner.halt(halt, ctx) {
                MvProgress::Halted(h, out) => {
                    self.absorb_out(out);
                    return self.finish_halt(h, ctx);
                }
                other => unreachable!("halt() is terminal, got {other:?}"),
            }
        }
        self.finish_halt(halt, ctx)
    }

    /// Starts the multivalued instance of the current slot and runs its
    /// progress (and any follow-on slots it completes) to suspension.
    fn open_slot<C: SmCtx + ?Sized>(&mut self, mailbox: Mailbox, ctx: &mut C) -> Progress {
        let proposal = match &mut self.traffic {
            Some(t) => {
                // The slot boundary is the batching deadline: pull every
                // arrival due by now, then propose the next batch (or the
                // empty filler) — same two calls, same clock, as the
                // blocking reference.
                t.pull(ctx.now());
                t.next_batch()
            }
            None => queue_proposal(&self.queue, self.slot),
        };
        let mut inner = MultivaluedSm::with_mailbox(
            self.algorithm,
            self.me,
            Arc::clone(&self.topo),
            self.slot,
            proposal,
            self.cfg,
            mailbox,
        );
        let progress = inner.start(ctx);
        self.inner = Some(inner);
        self.after_slot_progress(progress, ctx)
    }

    /// Routes one slot's [`MvProgress`]: suspend, commit-and-continue, or
    /// terminate.
    fn after_slot_progress<C: SmCtx + ?Sized>(
        &mut self,
        progress: MvProgress,
        ctx: &mut C,
    ) -> Progress {
        match progress {
            MvProgress::NeedMsg => self.suspend(),
            MvProgress::Sent(out) => {
                self.absorb_out(out);
                self.suspend()
            }
            MvProgress::Halted(h, out) => {
                self.absorb_out(out);
                self.finish_halt(h, ctx)
            }
            MvProgress::Decided(mv, out) => {
                self.absorb_out(out);
                if let Some(t) = &mut self.traffic {
                    t.on_committed(&mv.payload, ctx.now());
                }
                self.digest.absorb(&mv);
                self.slot += 1;
                let inner = self.inner.take().expect("slot machine present");
                if self.slot == self.slots {
                    return self.finish_decided(ctx);
                }
                // The shared mailbox carries buffered future-slot traffic
                // into the next instance, like the blocking loop.
                self.open_slot(inner.into_mailbox(), ctx)
            }
        }
    }

    fn suspend(&mut self) -> Progress {
        if self.outbox.is_empty() {
            Progress::NeedMsg
        } else {
            Progress::Sent(std::mem::take(&mut self.outbox))
        }
    }

    /// The once-per-incarnation service report, fired from both terminal
    /// paths — the event-driven mirror of the blocking wrapper's emit.
    fn emit_service<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) {
        if let Some(t) = &self.traffic {
            ctx.service_stats(t.stats());
        }
    }

    fn finish_decided<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Progress {
        self.done = true;
        self.emit_service(ctx);
        Progress::Decided(
            log_body_decision(&self.digest, self.slots),
            std::mem::take(&mut self.outbox),
        )
    }

    fn finish_halt<C: SmCtx + ?Sized>(&mut self, halt: Halt, ctx: &mut C) -> Progress {
        self.done = true;
        self.emit_service(ctx);
        Progress::Halted(halt, std::mem::take(&mut self.outbox))
    }
}

#[cfg(test)]
mod tests {
    use super::super::consensus::tests::TestCtx;
    use super::super::OutItem;
    use super::*;
    use crate::{Bit, ObsEvent};
    use ofa_topology::Partition;

    fn payload(s: &str) -> Payload {
        Payload::from_bytes(s.as_bytes()).expect("fits")
    }

    #[test]
    fn zero_slot_log_decides_immediately() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = LogSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            vec![payload("a")],
            0,
            ProtocolConfig::paper(),
            None,
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let Progress::Decided(d, outbox) = sm.start(&mut ctx) else {
            panic!("zero slots should decide immediately");
        };
        assert!(outbox.is_empty(), "no slots, no sends");
        assert_eq!(d.round, 0);
        assert!(sm.is_done());
    }

    #[test]
    fn solo_replica_commits_all_slots_cycling_its_queue() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let slots = 3;
        let mut sm = LogSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            vec![payload("cmd-a"), payload("cmd-b")],
            slots,
            ProtocolConfig::paper(),
            None,
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let mut queue: Vec<Msg> = Vec::new();
        let absorb = |queue: &mut Vec<Msg>, outbox: Outbox| {
            for item in outbox {
                match item {
                    OutItem::One(o) => queue.push(Msg {
                        from: ProcessId(0),
                        kind: o.msg,
                    }),
                    OutItem::Broadcast { msg, .. } => queue.push(Msg {
                        from: ProcessId(0),
                        kind: msg,
                    }),
                }
            }
        };
        let mut decided = None;
        match sm.start(&mut ctx) {
            Progress::Sent(out) => absorb(&mut queue, out),
            other => panic!("expected sends, got {other:?}"),
        }
        while decided.is_none() {
            assert!(!queue.is_empty(), "starved without deciding");
            let msg = queue.remove(0);
            match sm.on_msg(msg, &mut ctx) {
                Progress::Sent(out) => absorb(&mut queue, out),
                Progress::NeedMsg => {}
                Progress::Decided(d, out) => {
                    absorb(&mut queue, out);
                    decided = Some(d);
                }
                Progress::Halted(h, _) => panic!("{h}"),
            }
        }
        let d = decided.unwrap();
        assert_eq!(d.round, slots, "deciding round reports the slot count");
        // All three slots were committed with the cycled proposals.
        let committed: Vec<(u64, Payload)> = ctx
            .events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::MvDecided {
                    mv_index, payload, ..
                } => Some((*mv_index, *payload)),
                _ => None,
            })
            .collect();
        assert_eq!(
            committed,
            vec![
                (0, payload("cmd-a")),
                (1, payload("cmd-b")),
                (2, payload("cmd-a")),
            ]
        );
        // The digest matches an offline replay of the same slots.
        let mut digest = LogDigest::new();
        for (slot, p) in &committed {
            digest.absorb(&crate::MvDecision {
                payload: *p,
                proposer: ProcessId(0),
                stages: *slot + 1, // stages do not enter the digest
            });
        }
        assert_eq!(d.value, Bit::from(digest.value() & 1 == 1));
    }
}
