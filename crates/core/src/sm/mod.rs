//! Resumable state machines: the paper's algorithms without threads.
//!
//! The `Env`-trait algorithms ([`crate::ben_or_hybrid`],
//! [`crate::common_coin_hybrid`], [`crate::multivalued_propose`],
//! [`crate::run_replicated_log`]) are written in blocking pseudocode
//! style: `recv` suspends the caller, so every process needs its own call
//! stack — one OS thread per simulated process. That reference shape is
//! faithful to the paper but caps simulations at a few thousand processes.
//!
//! This module is the same protocol stack turned inside out, one machine
//! per layer:
//!
//! * [`ConsensusSm`] — one *binary* consensus instance (Algorithm 2 or 3);
//! * [`MultivaluedSm`] — the multivalued reduction, driving the binary
//!   stages of one instance through embedded [`ConsensusSm`]s;
//! * [`LogSm`] — a replicated-log replica, chaining one [`MultivaluedSm`]
//!   per log slot over a single shared mailbox.
//!
//! Every machine is a plain struct that consumes one delivered
//! [`crate::Msg`] per step and reports `Poll`-style [`Progress`] — it
//! never blocks, so a
//! single-threaded engine can drive hundreds of thousands of processes
//! straight off an event heap (see `ofa-sim`'s event-driven engine). The
//! wait-free operations of the hybrid model — intra-cluster consensus and
//! coins — stay synchronous, provided by the engine through [`SmCtx`];
//! only message reception suspends a machine.
//!
//! The machines are **step-for-step equivalent** to the blocking
//! algorithms: every environment interaction (send, receive, cluster
//! propose, coin, observation) happens in the same order with the same
//! arguments, so an engine that accounts steps and virtual time like the
//! thread conductor reproduces the conductor's executions bit for bit
//! (`tests/engine_equivalence.rs` asserts exactly that, trace hash
//! included, across all three body kinds).
//!
//! # Anatomy of a step
//!
//! ```text
//!        deliver Msg                 ┌────────────────────────────┐
//!  ───────────────────▶  on_msg ───▶│ mailbox route → tally →    │
//!                                   │ cluster consensus / coins  │──▶ Progress
//!  engine pops event                │ (via SmCtx) → broadcasts   │    NeedMsg / Sent /
//!                                   └────────────────────────────┘    Decided / Halted
//! ```
//!
//! One delivery can carry a machine arbitrarily far — completing an
//! exchange, pre-agreeing in the cluster, broadcasting the next phase,
//! finishing a binary stage and opening the next one, even committing a
//! log slot and starting the next instance — until it genuinely needs a
//! fresh message (or terminates). Outgoing messages accumulate in the
//! step's outbox and are returned inside the [`Progress`] value.

mod consensus;
mod log;
mod multivalued;

pub use consensus::ConsensusSm;
pub use log::LogSm;
pub use multivalued::{MultivaluedSm, MvProgress};

use crate::pattern::est_index;
use crate::{Bit, Decision, Est, Halt, MsgKind, ObsEvent, ProtocolConfig};
use ofa_sharedmem::Slot;
use ofa_topology::{Partition, ProcessId};

/// The synchronous services a state machine needs while stepping: the
/// wait-free operations of the hybrid model plus bookkeeping hooks.
///
/// This is [`crate::Env`] minus the blocking `recv` — message input is
/// *pushed* via the machines' `on_msg` instead of pulled. Engines
/// implement it once per process and are free to charge virtual time,
/// count steps, record traces, and inject crashes by returning
/// `Err(Halt)` from the fallible methods, exactly like an `Env`.
pub trait SmCtx {
    /// Hands one message to the network; returns the virtual send time
    /// the engine assigns (0 where time is not modeled). The machine
    /// records that timestamp in its outbox entry.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step; like the paper's
    /// non-reliable broadcast, any prefix already sent stays sent.
    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<u64, Halt>;

    /// Charged when the machine is about to suspend for a message — the
    /// equivalent of entering the blocking `recv` call.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn begin_recv(&mut self) -> Result<(), Halt>;

    /// Proposes to the cluster's consensus object (wait-free).
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt>;

    /// Draws this process's local coin.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn local_coin(&mut self) -> Result<Bit, Halt>;

    /// Reads the common coin at `index`.
    ///
    /// # Errors
    ///
    /// `Err(Halt)` if the process crashes at this step.
    fn common_coin(&mut self, index: u64) -> Result<Bit, Halt>;

    /// Reports a protocol-level event (tracing, invariants). Default:
    /// ignored.
    fn observe(&mut self, _event: ObsEvent) {}

    /// Notes one invocation of the `broadcast` macro-operation (the sends
    /// themselves still go through [`SmCtx::send`]). Default: ignored.
    fn note_broadcast(&mut self) {}

    /// This process's current virtual clock in ticks (0 where time is
    /// not modeled) — the reference point traffic-driven workloads
    /// compare PRF arrival times against.
    fn now(&self) -> u64 {
        0
    }

    /// Reports the machine's accumulated client-service statistics —
    /// emitted once, at the machine's terminal progress point. Engines
    /// fold the stats into the run outcome; the default discards them.
    fn service_stats(&mut self, _stats: &ofa_metrics::ServiceStats) {}
}

/// One outgoing message produced by a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outgoing {
    /// Destination process.
    pub to: ProcessId,
    /// Payload.
    pub msg: MsgKind,
    /// Virtual send time reported by [`SmCtx::send`].
    pub sent_at: u64,
}

/// An outbox entry: a single send, or a whole uniform broadcast.
///
/// A broadcast whose sends all carry the same timestamp (the engine
/// charges no per-send cost) collapses into one [`OutItem::Broadcast`]
/// entry, letting schedulers enqueue it as a single event instead of `n`
/// — the difference between O(n²) and O(n) heap residency per round at
/// cluster scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutItem {
    /// One point-to-point send.
    One(Outgoing),
    /// `msg` sent to every process `p_0 … p_{n-1}` in index order, all at
    /// the same virtual send time.
    Broadcast {
        /// Payload (identical for every destination).
        msg: MsgKind,
        /// Virtual send time shared by all destinations.
        sent_at: u64,
    },
}

/// The sends produced by one step, in send order.
pub type Outbox = Vec<OutItem>;

/// `Poll`-style progress reported by every step of a machine.
#[derive(Debug, PartialEq, Eq)]
pub enum Progress {
    /// The machine is suspended waiting for the next delivered message;
    /// this step produced no sends.
    NeedMsg,
    /// The machine produced sends (drain them into the network) and is
    /// again suspended waiting for the next delivered message.
    Sent(Outbox),
    /// Terminal: the machine decided. Any final broadcasts are in the
    /// outbox. The machine must not be stepped again.
    Decided(Decision, Outbox),
    /// Terminal: the machine halted without deciding (crash or stop).
    /// Sends already performed before the halt are in the outbox — a
    /// crash mid-broadcast delivers to an arbitrary prefix, like the
    /// paper's non-reliable broadcast macro-operation.
    Halted(Halt, Outbox),
}

impl Progress {
    /// `true` for the terminal variants.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Progress::Decided(..) | Progress::Halted(..))
    }
}

/// The `broadcast(msg)` macro-operation shared by all machines: send to
/// every process (including self) in index order into `outbox`,
/// collapsing into one [`OutItem::Broadcast`] when all sends share a
/// timestamp. Counts one broadcast via [`SmCtx::note_broadcast`].
///
/// The uniform case never materializes per-destination entries — at
/// cluster scale a broadcast is the common operation, and pushing `n`
/// entries only to truncate them both costs the writes and leaves an
/// `O(n)`-capacity buffer behind (with outbox recycling, one such
/// buffer *per machine* — `O(n²)` resident memory). Per-destination
/// entries are materialized lazily, only once timestamps actually
/// diverge (the engine charges a per-send cost) or a send crashes
/// mid-broadcast (the prefix already sent stays sent, like the paper's
/// non-reliable broadcast).
pub(crate) fn broadcast_into<C: SmCtx + ?Sized>(
    outbox: &mut Outbox,
    n: usize,
    msg: MsgKind,
    ctx: &mut C,
) -> Result<(), Halt> {
    ctx.note_broadcast();
    let mut uniform = true;
    let mut first_at = 0;
    let materialize_prefix = |outbox: &mut Outbox, j: usize, first_at: u64| {
        outbox.extend((0..j).map(|i| {
            OutItem::One(Outgoing {
                to: ProcessId(i),
                msg,
                sent_at: first_at,
            })
        }));
    };
    for j in 0..n {
        match ctx.send(ProcessId(j), msg) {
            Ok(sent_at) => {
                if j == 0 {
                    first_at = sent_at;
                } else if uniform && sent_at != first_at {
                    materialize_prefix(outbox, j, first_at);
                    uniform = false;
                }
                if !uniform {
                    outbox.push(OutItem::One(Outgoing {
                        to: ProcessId(j),
                        msg,
                        sent_at,
                    }));
                }
            }
            Err(halt) => {
                if uniform {
                    materialize_prefix(outbox, j, first_at);
                }
                return Err(halt);
            }
        }
    }
    if uniform {
        match n {
            0 => {}
            1 => outbox.push(OutItem::One(Outgoing {
                to: ProcessId(0),
                msg,
                sent_at: first_at,
            })),
            _ => outbox.push(OutItem::Broadcast {
                msg,
                sent_at: first_at,
            }),
        }
    }
    Ok(())
}

/// Upper bound on the capacity of a recycled outbox buffer. Recycling
/// exists to spare the per-step allocation of *typical* outboxes (a
/// broadcast entry or a handful of sends); holding onto an occasional
/// `O(n)`-entry buffer per machine would instead pin `O(n²)` memory
/// across a large run, so oversized buffers are dropped and return to
/// the allocator.
const MAX_RECYCLED_CAPACITY: usize = 64;

/// Adopts a drained buffer into `slot` if it improves on the current
/// capacity without exceeding [`MAX_RECYCLED_CAPACITY`] — the shared
/// implementation behind every machine's `recycle_outbox`.
pub(crate) fn recycle_into(slot: &mut Outbox, buf: Outbox) {
    debug_assert!(buf.is_empty(), "recycled buffers must be drained");
    if buf.capacity() <= MAX_RECYCLED_CAPACITY && slot.capacity() < buf.capacity() {
        *slot = buf;
    }
}

/// Accumulates an inner machine's sends into an outer layer's outbox,
/// adopting the inner buffer wholesale when the outer one is empty (the
/// common case, since outboxes are taken at every suspension — a move,
/// no copy and no fresh allocation). Shared by the multi-instance
/// machines so the outbox-propagation behavior cannot drift between
/// layers.
pub(crate) fn absorb_out(slot: &mut Outbox, out: Outbox) {
    if slot.is_empty() {
        *slot = out;
    } else {
        slot.extend(out);
    }
}

/// Immutable per-run topology shared by all machines of one execution:
/// the partition plus precomputed cluster sizes, so a machine's
/// per-message supporter accounting is O(1) instead of O(n/64).
#[derive(Debug)]
pub struct SmTopology {
    partition: Partition,
    cluster_sizes: Vec<usize>,
}

impl SmTopology {
    /// Precomputes the shared topology of a run.
    pub fn new(partition: Partition) -> Self {
        let cluster_sizes = partition.sizes();
        SmTopology {
            partition,
            cluster_sizes,
        }
    }

    /// The underlying partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    pub(crate) fn n(&self) -> usize {
        self.partition.n()
    }

    /// The credit unit a sender maps to: its cluster index under "one for
    /// all" amplification, its own index otherwise.
    fn unit_of(&self, from: ProcessId, amplify: bool) -> (usize, usize) {
        if amplify {
            let x = self.partition.cluster_of(from).index();
            (x, self.cluster_sizes[x])
        } else {
            (from.index(), 1)
        }
    }

    fn units(&self, amplify: bool) -> usize {
        if amplify {
            self.partition.m()
        } else {
            self.partition.n()
        }
    }
}

/// A set over credit units (clusters or single processes) with an
/// incrementally maintained total weight.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct UnitSet {
    words: Vec<u64>,
    weight: usize,
}

impl UnitSet {
    fn with_units(units: usize) -> Self {
        UnitSet {
            words: vec![0; units.div_ceil(64)],
            weight: 0,
        }
    }

    /// Inserts `unit` with `weight`; no-op if already present.
    fn credit(&mut self, unit: usize, weight: usize) {
        let (w, b) = (unit / 64, unit % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.weight += weight;
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.weight = 0;
    }
}

/// Incremental supporter accounting for one `msg_exchange` invocation —
/// semantically identical to [`crate::Supporters`] (same majority, `rec`,
/// and coverage answers on the same credit sequence) but O(1) per
/// message: because every process belongs to exactly one cluster, each
/// per-value supporter set is a disjoint union of whole credit units, so
/// set cardinalities reduce to weight counters.
#[derive(Debug)]
pub(crate) struct Tally {
    n: usize,
    /// Supporter weights for `0`, `1`, `⊥` (indexed by `est_index`).
    sets: [UnitSet; 3],
    /// Union of all supporter sets.
    cover: UnitSet,
}

impl Tally {
    pub(crate) fn new(n: usize, units: usize) -> Self {
        Tally {
            n,
            sets: [
                UnitSet::with_units(units),
                UnitSet::with_units(units),
                UnitSet::with_units(units),
            ],
            cover: UnitSet::with_units(units),
        }
    }

    pub(crate) fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.cover.clear();
    }

    /// Credits `unit` (with `weight` processes) as a supporter of `est`.
    pub(crate) fn credit(&mut self, est: Est, unit: usize, weight: usize) {
        self.sets[est_index(est)].credit(unit, weight);
        self.cover.credit(unit, weight);
    }

    /// Line 7 of Algorithm 1: supporters jointly cover a strict majority.
    pub(crate) fn coverage_is_majority(&self) -> bool {
        2 * self.cover.weight > self.n
    }

    /// Line 6 of Algorithm 2: the value supported by a strict majority.
    pub(crate) fn majority_value(&self) -> Option<Bit> {
        Bit::ALL
            .into_iter()
            .find(|&b| 2 * self.sets[est_index(Some(b))].weight > self.n)
    }

    /// The paper's `rec_i` as `(saw_zero, saw_one, saw_bot)`.
    pub(crate) fn rec(&self) -> crate::RecSet {
        crate::RecSet {
            saw_zero: self.sets[est_index(Some(Bit::Zero))].weight > 0,
            saw_one: self.sets[est_index(Some(Bit::One))].weight > 0,
            saw_bot: self.sets[est_index(None)].weight > 0,
        }
    }
}

/// Mid-exchange supporter tallies are part of a machine's wait state, so
/// checkpoints capture them (the fixed-arity set array is encoded as a
/// sequence).
impl serde::Serialize for Tally {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("n".to_string(), self.n.to_value()),
            (
                "sets".to_string(),
                serde::Value::Seq(self.sets.iter().map(serde::Serialize::to_value).collect()),
            ),
            ("cover".to_string(), self.cover.to_value()),
        ])
    }
}

impl serde::Deserialize for Tally {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("Tally: missing field {name}")))
        };
        let sets: Vec<UnitSet> = serde::Deserialize::from_value(field("sets")?)?;
        let [s0, s1, s2]: [UnitSet; 3] = sets
            .try_into()
            .map_err(|_| serde::Error::msg("Tally: expected 3 supporter sets"))?;
        Ok(Tally {
            n: serde::Deserialize::from_value(field("n")?)?,
            sets: [s0, s1, s2],
            cover: serde::Deserialize::from_value(field("cover")?)?,
        })
    }
}

/// An [`SmCtx`] that models nothing: sends cost no time, the cluster
/// object echoes the proposal, coins are constant 0. Useful for doc
/// examples and tests of machines whose behavior does not depend on the
/// services (e.g. single-process universes).
#[derive(Debug, Default)]
pub struct NullCtx;

impl SmCtx for NullCtx {
    fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<u64, Halt> {
        Ok(0)
    }
    fn begin_recv(&mut self) -> Result<(), Halt> {
        Ok(())
    }
    fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
        Ok(enc)
    }
    fn local_coin(&mut self) -> Result<Bit, Halt> {
        Ok(Bit::Zero)
    }
    fn common_coin(&mut self, _index: u64) -> Result<Bit, Halt> {
        Ok(Bit::Zero)
    }
}

/// The stage/round budget every machine applies (kept here so the
/// constructor signatures stay small).
pub(crate) fn over_budget(cfg: &ProtocolConfig, round: u64) -> bool {
    matches!(cfg.max_rounds, Some(max) if round > max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_matches_supporters_semantics() {
        use crate::{RecClass, Supporters};
        use ofa_topology::ProcessSet;
        // Fig 1 right: {p1} {p2..p5} {p6,p7} — compare the incremental
        // tally against the reference Supporters on the same credits.
        let part = Partition::fig1_right();
        let topo = SmTopology::new(part.clone());
        let n = part.n();
        let mut tally = Tally::new(n, topo.units(true));
        let mut sup = Supporters::empty(n);
        let credits: [(usize, Est); 4] = [
            (1, Some(Bit::One)),  // p2 → cluster {p2..p5}
            (4, Some(Bit::One)),  // p5 → same cluster (dedup)
            (0, None),            // p1 → singleton
            (5, Some(Bit::Zero)), // p6 → {p6,p7}
        ];
        for (from, est) in credits {
            let from = ProcessId(from);
            let (unit, weight) = topo.unit_of(from, true);
            tally.credit(est, unit, weight);
            sup.credit(est, part.cluster_members_of(from));
            assert_eq!(
                tally.coverage_is_majority(),
                sup.coverage().is_majority_of(n)
            );
            assert_eq!(tally.majority_value(), sup.majority_value());
            assert_eq!(tally.rec(), sup.rec());
        }
        assert_eq!(tally.rec().classify(), RecClass::Conflict);
        // Reset empties everything.
        tally.reset();
        assert!(!tally.coverage_is_majority());
        assert_eq!(tally.rec(), Supporters::empty(n).rec());
        // Non-amplified: units are processes.
        let mut tally = Tally::new(n, topo.units(false));
        let mut sup = Supporters::empty(n);
        for (from, est) in credits {
            let from = ProcessId(from);
            let (unit, weight) = topo.unit_of(from, false);
            tally.credit(est, unit, weight);
            sup.credit(est, &ProcessSet::singleton(n, from));
            assert_eq!(tally.majority_value(), sup.majority_value());
            assert_eq!(
                tally.coverage_is_majority(),
                sup.coverage().is_majority_of(n)
            );
        }
    }

    #[test]
    fn broadcast_into_collapses_uniform_sends() {
        let mut outbox = Outbox::new();
        let msg = MsgKind::Decide {
            instance: 0,
            value: Bit::One,
        };
        broadcast_into(&mut outbox, 3, msg, &mut NullCtx).unwrap();
        assert_eq!(outbox, vec![OutItem::Broadcast { msg, sent_at: 0 }]);
        // A single-destination universe keeps the point-to-point form.
        let mut outbox = Outbox::new();
        broadcast_into(&mut outbox, 1, msg, &mut NullCtx).unwrap();
        assert!(matches!(outbox[0], OutItem::One(_)));
    }
}
