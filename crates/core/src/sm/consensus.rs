//! [`ConsensusSm`]: one binary consensus instance as a resumable machine.

use super::{broadcast_into, Outbox, Progress, SmCtx, SmTopology, Tally};
use crate::{
    Algorithm, Bit, Decision, Est, Halt, Mailbox, MailboxItem, Msg, MsgKind, ObsEvent, Phase,
    ProtocolConfig,
};
use ofa_sharedmem::{CodableValue, Slot};
use ofa_topology::ProcessId;
use serde::Serialize as _;
use std::sync::Arc;

/// The slot-phase index Algorithm 3 uses for its single per-round object
/// (kept identical to the blocking implementation).
const CC_SLOT: u8 = 0;

/// One consensus process as a resumable state machine — Algorithm 2
/// (local coin) or Algorithm 3 (common coin), selected at construction.
///
/// Lifecycle: create, [`ConsensusSm::start`] once, then feed every
/// delivered message through [`ConsensusSm::on_msg`] until a terminal
/// [`Progress`] is returned (or the engine ends the run with
/// [`ConsensusSm::halt`]). Outgoing messages ride inside each `Progress`.
///
/// Multi-instance layers ([`super::MultivaluedSm`], [`super::LogSm`])
/// construct consecutive instances with [`ConsensusSm::with_mailbox`],
/// threading one [`Mailbox`] through the whole sequence exactly like the
/// blocking [`crate::ben_or_hybrid_instance`] contract requires — future
/// instances' messages buffered during instance `i` survive into
/// instance `i + 1`.
///
/// # Examples
///
/// A one-process universe decides as soon as its own broadcasts loop
/// back:
///
/// ```
/// use ofa_core::sm::{ConsensusSm, NullCtx, OutItem, Progress, SmTopology};
/// use ofa_core::{Algorithm, Bit, Msg, ProtocolConfig};
/// use ofa_topology::{Partition, ProcessId};
/// use std::sync::Arc;
///
/// let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
/// let mut sm = ConsensusSm::new(
///     Algorithm::LocalCoin,
///     ProcessId(0),
///     topo,
///     0,
///     Bit::One,
///     ProtocolConfig::paper(),
/// );
/// let mut ctx = NullCtx;
/// // start() broadcasts PHASE1 and suspends:
/// let Progress::Sent(outbox) = sm.start(&mut ctx) else { panic!() };
/// // deliver the machine its own messages until it decides:
/// let mut pending: Vec<Msg> = flatten(&outbox, 1);
/// loop {
///     let msg = pending.remove(0);
///     match sm.on_msg(msg, &mut ctx) {
///         Progress::Sent(out) => pending.extend(flatten(&out, 1)),
///         Progress::Decided(d, _) => {
///             assert_eq!(d.value, Bit::One);
///             break;
///         }
///         Progress::NeedMsg => {}
///         Progress::Halted(h, _) => panic!("{h}"),
///     }
/// }
///
/// fn flatten(outbox: &[OutItem], n: usize) -> Vec<Msg> {
///     let mut msgs = Vec::new();
///     for item in outbox {
///         match *item {
///             OutItem::One(o) => msgs.push(Msg { from: ProcessId(0), kind: o.msg }),
///             OutItem::Broadcast { msg, .. } => {
///                 msgs.extend((0..n).map(|_| Msg { from: ProcessId(0), kind: msg }));
///             }
///         }
///     }
///     msgs
/// }
/// ```
#[derive(Debug)]
pub struct ConsensusSm {
    algorithm: Algorithm,
    me: ProcessId,
    topo: Arc<SmTopology>,
    cfg: ProtocolConfig,
    instance: u64,
    /// `est1` of Algorithm 2 / `est` of Algorithm 3.
    est: Bit,
    round: u64,
    phase: Phase,
    tally: Tally,
    mailbox: Mailbox,
    outbox: Outbox,
    done: bool,
}

impl ConsensusSm {
    /// Creates a machine for `me` proposing `proposal` in `instance`
    /// (single-shot consensus uses instance 0) with a fresh mailbox.
    pub fn new(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        instance: u64,
        proposal: Bit,
        cfg: ProtocolConfig,
    ) -> Self {
        Self::with_mailbox(algorithm, me, topo, instance, proposal, cfg, Mailbox::new())
    }

    /// Like [`ConsensusSm::new`] but adopting an existing [`Mailbox`] —
    /// the state-machine equivalent of the blocking instance functions'
    /// shared-mailbox parameter. Retrieve it back with
    /// [`ConsensusSm::into_mailbox`] once the machine terminates.
    pub fn with_mailbox(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        instance: u64,
        proposal: Bit,
        cfg: ProtocolConfig,
        mailbox: Mailbox,
    ) -> Self {
        let n = topo.n();
        let units = topo.units(cfg.amplify);
        ConsensusSm {
            algorithm,
            me,
            topo,
            cfg,
            instance,
            est: proposal,
            round: 0,
            phase: Phase::One,
            tally: Tally::new(n, units),
            mailbox,
            outbox: Vec::new(),
            done: false,
        }
    }

    /// Releases the mailbox (with everything still buffered for future
    /// instances) so the next instance of a multi-instance layer can
    /// adopt it.
    pub fn into_mailbox(self) -> Mailbox {
        self.mailbox
    }

    /// This machine's process identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// `true` once a terminal [`Progress`] has been returned.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Serializes the machine's resumable wait state: instance, estimate,
    /// round/phase cursor, supporter tallies, and the mailbox. The outbox
    /// is omitted — it is provably empty at every suspension (each step
    /// `take`s it into the returned [`Progress`]).
    pub fn snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("instance".to_string(), self.instance.to_value()),
            ("est".to_string(), self.est.to_value()),
            ("round".to_string(), self.round.to_value()),
            ("phase".to_string(), self.phase.to_value()),
            ("tally".to_string(), self.tally.to_value()),
            ("mailbox".to_string(), self.mailbox.to_value()),
            ("done".to_string(), self.done.to_value()),
        ])
    }

    /// Rebuilds a machine from a [`ConsensusSm::snapshot`] value. The
    /// immutable construction context (algorithm, identity, topology,
    /// config) is supplied by the caller — it lives in the scenario, not
    /// the snapshot.
    pub fn from_snapshot(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        cfg: ProtocolConfig,
        v: &serde::Value,
    ) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("ConsensusSm: missing field {name}")))
        };
        Ok(ConsensusSm {
            algorithm,
            me,
            topo,
            cfg,
            instance: serde::Deserialize::from_value(field("instance")?)?,
            est: serde::Deserialize::from_value(field("est")?)?,
            round: serde::Deserialize::from_value(field("round")?)?,
            phase: serde::Deserialize::from_value(field("phase")?)?,
            tally: serde::Deserialize::from_value(field("tally")?)?,
            mailbox: serde::Deserialize::from_value(field("mailbox")?)?,
            outbox: Vec::new(),
            done: serde::Deserialize::from_value(field("done")?)?,
        })
    }

    /// Hands a drained outbox buffer back to the machine so the next
    /// step's sends reuse its capacity instead of allocating. Engines
    /// call this after draining a [`Progress`]'s outbox; the machine's
    /// own buffer is empty at every suspension (it was `take`n into the
    /// progress value), so the swap never discards pending sends.
    /// Oversized buffers are dropped rather than retained (see
    /// `sm::recycle_into`).
    pub fn recycle_outbox(&mut self, buf: Outbox) {
        super::recycle_into(&mut self.outbox, buf);
    }

    /// Runs the machine up to its first suspension: proposes, enters
    /// round 1 (cluster pre-agreement + `PHASE1` broadcast) and pumps any
    /// buffered input. Call exactly once, before any [`ConsensusSm::on_msg`].
    pub fn start<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Progress {
        assert!(
            self.round == 0 && !self.done,
            "start() must be the first step"
        );
        ctx.observe(ObsEvent::Propose {
            instance: self.instance,
            value: self.est,
        });
        let res = self.next_round(ctx).and_then(|d| match d {
            Some(d) => Ok(Some(d)),
            None => self.pump(ctx),
        });
        self.finish_step(res, ctx)
    }

    /// Consumes one delivered message and advances as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if called after a terminal `Progress` (the engine must stop
    /// stepping a finished machine).
    pub fn on_msg<C: SmCtx + ?Sized>(&mut self, msg: Msg, ctx: &mut C) -> Progress {
        assert!(!self.done, "on_msg() on a finished machine");
        let res = match self
            .mailbox
            .accept(msg, self.instance, self.round, self.phase)
        {
            Some(item) => self.apply(item, ctx).and_then(|d| match d {
                Some(d) => Ok(Some(d)),
                None => self.pump(ctx),
            }),
            // Buffered, stale, or an app payload: the blocking code would
            // loop straight back into `recv`.
            None => ctx.begin_recv().map(|()| None),
        };
        self.finish_step(res, ctx)
    }

    /// Ends the machine externally — a crash event or run shutdown while
    /// the machine is suspended. Mirrors the blocking `recv` returning
    /// `Err(halt)`.
    pub fn halt<C: SmCtx + ?Sized>(&mut self, halt: Halt, ctx: &mut C) -> Progress {
        self.finish_step(Err(halt), ctx)
    }

    /// Converts a step result into [`Progress`], draining the outbox and
    /// emitting the end-of-instance mailbox report on terminal steps.
    fn finish_step<C: SmCtx + ?Sized>(
        &mut self,
        res: Result<Option<Decision>, Halt>,
        ctx: &mut C,
    ) -> Progress {
        let report = |mailbox: &mut Mailbox, ctx: &mut C| {
            ctx.observe(ObsEvent::MailboxStats {
                stale_dropped: mailbox.take_stale_delta(),
            });
        };
        let outbox = std::mem::take(&mut self.outbox);
        match res {
            Ok(None) => {
                if outbox.is_empty() {
                    Progress::NeedMsg
                } else {
                    Progress::Sent(outbox)
                }
            }
            Ok(Some(decision)) => {
                self.done = true;
                report(&mut self.mailbox, ctx);
                Progress::Decided(decision, outbox)
            }
            Err(halt) => {
                self.done = true;
                report(&mut self.mailbox, ctx);
                Progress::Halted(halt, outbox)
            }
        }
    }

    /// Serves buffered input for the current slot until the machine
    /// genuinely needs a fresh message (charging the `recv` entry) or
    /// terminates.
    fn pump<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Result<Option<Decision>, Halt> {
        loop {
            match self
                .mailbox
                .take_buffered(self.instance, self.round, self.phase)
            {
                Some(item) => {
                    if let Some(d) = self.apply(item, ctx)? {
                        return Ok(Some(d));
                    }
                }
                None => {
                    ctx.begin_recv()?;
                    return Ok(None);
                }
            }
        }
    }

    /// Processes one mailbox item for the current exchange.
    fn apply<C: SmCtx + ?Sized>(
        &mut self,
        item: MailboxItem,
        ctx: &mut C,
    ) -> Result<Option<Decision>, Halt> {
        match item {
            MailboxItem::Decide { value } => self.decide(value, true, ctx).map(Some),
            MailboxItem::Phase { from, est } => {
                // Lines 5-6 of Algorithm 1: credit the sender (amplified
                // to its whole cluster when the switch is on)…
                let (unit, weight) = self.topo.unit_of(from, self.cfg.amplify);
                self.tally.credit(est, unit, weight);
                // …and exit once the supporters cover a strict majority.
                if self.tally.coverage_is_majority() {
                    self.complete_exchange(ctx)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// The code after `msg_exchange` returns `Completed` — phase
    /// transition, decision, or next round.
    fn complete_exchange<C: SmCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
    ) -> Result<Option<Decision>, Halt> {
        match (self.algorithm, self.phase) {
            (Algorithm::LocalCoin, Phase::One) => {
                // (6-7) est2 <- majority value or ⊥.
                let mut est2: Est = self.tally.majority_value();
                ctx.observe(ObsEvent::Est2 {
                    instance: self.instance,
                    round: self.round,
                    est2,
                });
                // (8) est2 <- CONS_x[r, 2].propose(est2)
                if self.cfg.cluster_preagree {
                    let decided = self.preagree(ctx, Phase::Two.slot_index(), est2.encode())?;
                    est2 = Est::decode(decided);
                }
                // (9) msg_exchange(r, 2, est2)
                self.begin_exchange(Phase::Two, est2, ctx)?;
                Ok(None)
            }
            (Algorithm::LocalCoin, Phase::Two) => {
                // (10-11) classify rec.
                let rec = self.tally.rec();
                ctx.observe(ObsEvent::Rec {
                    instance: self.instance,
                    round: self.round,
                    saw_zero: rec.saw_zero,
                    saw_one: rec.saw_one,
                    saw_bot: rec.saw_bot,
                });
                match rec.classify() {
                    // (12) rec = {v}: decide v.
                    crate::RecClass::Single(v) => self.decide(v, false, ctx).map(Some),
                    // (13) rec = {v, ⊥}: adopt v.
                    crate::RecClass::ValueAndBot(v) => {
                        self.est = v;
                        self.next_round(ctx)
                    }
                    // (14) rec = {⊥}: flip the local coin.
                    crate::RecClass::BotOnly => {
                        let c = ctx.local_coin()?;
                        ctx.observe(ObsEvent::Coin {
                            round: self.round,
                            common: false,
                            value: c,
                        });
                        self.est = c;
                        self.next_round(ctx)
                    }
                    // Unreachable when WA1 holds (see the blocking
                    // implementation for the E9 ablation rationale).
                    crate::RecClass::Conflict => {
                        self.est = Bit::Zero;
                        self.next_round(ctx)
                    }
                }
            }
            (Algorithm::CommonCoin, _) => {
                // (6) s <- common_coin(), at a per-instance offset.
                let coin_index = self
                    .instance
                    .wrapping_mul(0x1_0000_0000)
                    .wrapping_add(self.round);
                let coin = ctx.common_coin(coin_index)?;
                ctx.observe(ObsEvent::Coin {
                    round: self.round,
                    common: true,
                    value: coin,
                });
                // (7-10) decide when the coin matches the majority value.
                if let Some(v) = self.tally.majority_value() {
                    self.est = v;
                    if coin == v {
                        return self.decide(v, false, ctx).map(Some);
                    }
                } else {
                    self.est = coin;
                }
                self.next_round(ctx)
            }
        }
    }

    /// Lines 2-5: enter the next round — budget check, cluster
    /// pre-agreement, first (or only) exchange of the round.
    fn next_round<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Result<Option<Decision>, Halt> {
        self.round += 1;
        if super::over_budget(&self.cfg, self.round) {
            return Err(Halt::Stopped);
        }
        ctx.observe(ObsEvent::RoundStart {
            instance: self.instance,
            round: self.round,
        });
        let slot_phase = match self.algorithm {
            Algorithm::LocalCoin => Phase::One.slot_index(),
            Algorithm::CommonCoin => CC_SLOT,
        };
        if self.cfg.cluster_preagree {
            let decided = self.preagree(ctx, slot_phase, self.est.encode())?;
            self.est = Bit::decode(decided);
        }
        self.begin_exchange(Phase::One, Some(self.est), ctx)?;
        Ok(None)
    }

    /// One intra-cluster consensus invocation plus its observation.
    fn preagree<C: SmCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
        slot_phase: u8,
        enc: u64,
    ) -> Result<u64, Halt> {
        let slot = Slot::in_instance(self.instance, self.round, slot_phase);
        let decided = ctx.cluster_propose(slot, enc)?;
        ctx.observe(ObsEvent::ClusterAgreed { slot, decided });
        Ok(decided)
    }

    /// Starts `msg_exchange(r, ph, est)`: broadcast, fresh supporter
    /// tally.
    fn begin_exchange<C: SmCtx + ?Sized>(
        &mut self,
        phase: Phase,
        est: Est,
        ctx: &mut C,
    ) -> Result<(), Halt> {
        self.phase = phase;
        self.tally.reset();
        broadcast_into(
            &mut self.outbox,
            self.topo.n(),
            MsgKind::Phase {
                instance: self.instance,
                round: self.round,
                phase,
                est,
            },
            ctx,
        )
    }

    /// Decides `value` (line 12 direct / line 17 relayed): observe,
    /// broadcast `DECIDE`, return the decision.
    fn decide<C: SmCtx + ?Sized>(
        &mut self,
        value: Bit,
        relayed: bool,
        ctx: &mut C,
    ) -> Result<Decision, Halt> {
        ctx.observe(ObsEvent::Deciding {
            instance: self.instance,
            round: self.round,
            value,
            relayed,
        });
        broadcast_into(
            &mut self.outbox,
            self.topo.n(),
            MsgKind::Decide {
                instance: self.instance,
                value,
            },
            ctx,
        )?;
        Ok(Decision {
            value,
            round: self.round,
            relayed,
        })
    }
}

#[cfg(test)]
pub(super) mod tests {
    use super::super::{OutItem, Outbox, Progress, SmTopology};
    use super::*;
    use ofa_topology::Partition;
    use std::collections::HashMap;

    /// Deterministic test ctx: first-wins cluster objects, scripted
    /// coins, counted ops, optional crash at the k-th fallible call.
    pub(in crate::sm) struct TestCtx {
        cluster: HashMap<Slot, u64>,
        coin: Bit,
        pub(in crate::sm) calls: u64,
        pub(in crate::sm) crash_after: Option<u64>,
        pub(in crate::sm) events: Vec<ObsEvent>,
    }

    impl TestCtx {
        pub(in crate::sm) fn new(coin: Bit) -> Self {
            TestCtx {
                cluster: HashMap::new(),
                coin,
                calls: 0,
                crash_after: None,
                events: Vec::new(),
            }
        }

        fn step(&mut self) -> Result<(), Halt> {
            self.calls += 1;
            if let Some(k) = self.crash_after {
                if self.calls > k {
                    return Err(Halt::Crashed);
                }
            }
            Ok(())
        }
    }

    impl SmCtx for TestCtx {
        fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<u64, Halt> {
            self.step()?;
            Ok(0)
        }
        fn begin_recv(&mut self) -> Result<(), Halt> {
            self.step()
        }
        fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
            self.step()?;
            Ok(*self.cluster.entry(slot).or_insert(enc))
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            self.step()?;
            Ok(self.coin)
        }
        fn common_coin(&mut self, _index: u64) -> Result<Bit, Halt> {
            self.step()?;
            Ok(self.coin)
        }
        fn observe(&mut self, event: ObsEvent) {
            self.events.push(event);
        }
    }

    fn solo(algorithm: Algorithm, proposal: Bit) -> ConsensusSm {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        ConsensusSm::new(
            algorithm,
            ProcessId(0),
            topo,
            0,
            proposal,
            ProtocolConfig::paper(),
        )
    }

    /// Feeds a solo machine its own outbox until a terminal progress.
    fn run_solo(mut sm: ConsensusSm, ctx: &mut TestCtx) -> Progress {
        let mut queue: Vec<Msg> = Vec::new();
        let absorb = |queue: &mut Vec<Msg>, outbox: Outbox| {
            for item in outbox {
                match item {
                    OutItem::One(o) => queue.push(Msg {
                        from: ProcessId(0),
                        kind: o.msg,
                    }),
                    OutItem::Broadcast { msg, .. } => queue.push(Msg {
                        from: ProcessId(0),
                        kind: msg,
                    }),
                }
            }
        };
        match sm.start(ctx) {
            Progress::Sent(out) => absorb(&mut queue, out),
            Progress::NeedMsg => {}
            terminal => return terminal,
        }
        while !queue.is_empty() {
            let msg = queue.remove(0);
            match sm.on_msg(msg, ctx) {
                Progress::Sent(out) => absorb(&mut queue, out),
                Progress::NeedMsg => {}
                terminal => return terminal,
            }
        }
        panic!("solo machine starved without deciding");
    }

    #[test]
    fn solo_local_coin_decides_own_proposal_in_round_one() {
        for v in Bit::ALL {
            let mut ctx = TestCtx::new(Bit::Zero);
            let progress = run_solo(solo(Algorithm::LocalCoin, v), &mut ctx);
            let Progress::Decided(d, _) = progress else {
                panic!("expected decision, got {progress:?}");
            };
            assert_eq!(d.value, v, "validity");
            assert_eq!(d.round, 1);
            assert!(!d.relayed);
        }
    }

    #[test]
    fn solo_common_coin_waits_for_matching_coin() {
        // Coin constantly 0, proposal 1: the machine must keep the
        // estimate at 1 (line 8) and never decide within the budget.
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let sm = ConsensusSm::new(
            Algorithm::CommonCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(5),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let progress = run_solo(sm, &mut ctx);
        assert_eq!(progress, Progress::Halted(Halt::Stopped, Vec::new()));

        // Coin 1: decides immediately.
        let mut ctx = TestCtx::new(Bit::One);
        let progress = run_solo(solo(Algorithm::CommonCoin, Bit::One), &mut ctx);
        let Progress::Decided(d, _) = progress else {
            panic!("expected decision, got {progress:?}");
        };
        assert_eq!(d.value, Bit::One);
        assert_eq!(d.round, 1);
    }

    #[test]
    fn zero_round_budget_stops_before_any_exchange() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(0),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert_eq!(sm.start(&mut ctx), Progress::Halted(Halt::Stopped, vec![]));
        assert!(sm.is_done());
    }

    #[test]
    fn relayed_decide_is_adopted_and_rebroadcast() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            Arc::clone(&topo),
            0,
            Bit::Zero,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), Progress::Sent(_)));
        let progress = sm.on_msg(
            Msg {
                from: ProcessId(1),
                kind: MsgKind::Decide {
                    instance: 0,
                    value: Bit::One,
                },
            },
            &mut ctx,
        );
        let Progress::Decided(d, outbox) = progress else {
            panic!("expected relayed decision, got {progress:?}");
        };
        assert_eq!(d.value, Bit::One);
        assert!(d.relayed);
        // The DECIDE must be relayed exactly once, as one broadcast.
        assert_eq!(
            outbox,
            vec![OutItem::Broadcast {
                msg: MsgKind::Decide {
                    instance: 0,
                    value: Bit::One
                },
                sent_at: 0
            }]
        );
    }

    #[test]
    fn crash_mid_broadcast_keeps_the_sent_prefix() {
        // n = 3, crash at the 3rd fallible call: cluster_propose, then
        // one successful send, then the second send crashes.
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(3)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        ctx.crash_after = Some(2);
        let progress = sm.start(&mut ctx);
        let Progress::Halted(Halt::Crashed, outbox) = progress else {
            panic!("expected crash, got {progress:?}");
        };
        assert_eq!(outbox.len(), 1, "exactly the pre-crash send survives");
        assert!(matches!(outbox[0], OutItem::One(o) if o.to == ProcessId(0)));
        assert!(sm.is_done());
    }

    #[test]
    fn irrelevant_message_costs_one_recv_entry() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), Progress::Sent(_)));
        let calls_before = ctx.calls;
        let progress = sm.on_msg(
            Msg {
                from: ProcessId(1),
                kind: MsgKind::Phase {
                    instance: 0,
                    round: 9,
                    phase: Phase::One,
                    est: Some(Bit::Zero),
                },
            },
            &mut ctx,
        );
        // Future-slot message: buffered, machine re-enters recv (1 call).
        assert_eq!(progress, Progress::NeedMsg);
        assert_eq!(ctx.calls, calls_before + 1);
    }

    #[test]
    fn mailbox_hands_over_between_instances() {
        // A message for instance 1 delivered during instance 0 must
        // survive the handoff into the next machine.
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            Arc::clone(&topo),
            0,
            Bit::Zero,
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), Progress::Sent(_)));
        // Deliver a future-instance decide: buffered, not served.
        assert_eq!(
            sm.on_msg(
                Msg {
                    from: ProcessId(1),
                    kind: MsgKind::Decide {
                        instance: 1,
                        value: Bit::One,
                    },
                },
                &mut ctx,
            ),
            Progress::NeedMsg
        );
        // End instance 0 via a same-instance decide.
        let progress = sm.on_msg(
            Msg {
                from: ProcessId(1),
                kind: MsgKind::Decide {
                    instance: 0,
                    value: Bit::Zero,
                },
            },
            &mut ctx,
        );
        assert!(matches!(progress, Progress::Decided(..)));
        // Instance 1 adopts the mailbox and is short-circuited by the
        // remembered decide before any message arrives.
        let mut next = ConsensusSm::with_mailbox(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            1,
            Bit::Zero,
            ProtocolConfig::paper(),
            sm.into_mailbox(),
        );
        let progress = next.start(&mut ctx);
        let Progress::Decided(d, _) = progress else {
            panic!("expected relayed decision, got {progress:?}");
        };
        assert_eq!(d.value, Bit::One);
        assert!(d.relayed);
    }

    #[test]
    fn mailbox_stats_are_reported_on_termination() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let mut sm = ConsensusSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            Bit::One,
            ProtocolConfig::paper().with_max_rounds(0),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let _ = sm.start(&mut ctx);
        assert!(ctx
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::MailboxStats { .. })));
    }
}
