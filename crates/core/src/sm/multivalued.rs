//! [`MultivaluedSm`]: the multivalued reduction as a resumable machine.

use super::{broadcast_into, ConsensusSm, Outbox, Progress, SmCtx, SmTopology};
use crate::multivalued::{stage_budget, MvDecision, ProposalStore, INSTANCE_STRIDE};
use crate::{Algorithm, Bit, Halt, Mailbox, Msg, MsgKind, ObsEvent, Payload, ProtocolConfig};
use ofa_topology::ProcessId;
use serde::Serialize as _;
use std::sync::Arc;

/// `Poll`-style progress of a [`MultivaluedSm`] — like [`Progress`] but
/// terminal decisions carry the full [`MvDecision`] (payload, proposer,
/// stages), which log layers need; binary-body adapters convert via
/// [`crate::mv_body_decision`].
#[derive(Debug, PartialEq, Eq)]
pub enum MvProgress {
    /// Suspended waiting for the next delivered message; no sends.
    NeedMsg,
    /// Sends produced; suspended again.
    Sent(Outbox),
    /// Terminal: the multivalued instance decided.
    Decided(MvDecision, Outbox),
    /// Terminal: halted without deciding (crash or stop).
    Halted(Halt, Outbox),
}

impl MvProgress {
    /// `true` for the terminal variants.
    pub fn is_terminal(&self) -> bool {
        matches!(self, MvProgress::Decided(..) | MvProgress::Halted(..))
    }
}

/// What the machine is doing while suspended. The stage machine is
/// boxed: one `MultivaluedSm` per process at `n` in the thousands makes
/// the inline-variant size difference a real memory cost.
#[derive(Debug)]
enum MvState {
    /// A binary stage machine is running (it owns the shared mailbox).
    Stage(Box<ConsensusSm>),
    /// A stage decided 1 but `p_k`'s proposal has not arrived yet:
    /// pumping the mailbox (owned here again) until it shows up.
    AwaitProposal(Mailbox, ProcessId),
    /// Terminal: the machine finished and owns the mailbox for handoff.
    Finished(Mailbox),
}

/// One multivalued consensus instance as a resumable state machine —
/// the exact event-driven twin of [`crate::multivalued_propose`]: the
/// same dissemination broadcast, the same stage loop over embedded
/// binary instances (as [`ConsensusSm`]s sharing one [`Mailbox`]), the
/// same relay-on-first-use, in the same environment-interaction order,
/// so both engines produce bit-identical traces.
///
/// Lifecycle mirrors [`ConsensusSm`]: [`MultivaluedSm::start`] once, then
/// [`MultivaluedSm::on_msg`] per delivered message until a terminal
/// [`MvProgress`]. Replicated logs chain instances with
/// [`MultivaluedSm::with_mailbox`] / [`MultivaluedSm::into_mailbox`].
#[derive(Debug)]
pub struct MultivaluedSm {
    algorithm: Algorithm,
    me: ProcessId,
    topo: Arc<SmTopology>,
    cfg: ProtocolConfig,
    mv_index: u64,
    base: u64,
    budget: Option<u64>,
    store: ProposalStore,
    stage: u64,
    state: MvState,
    outbox: Outbox,
    done: bool,
}

/// Where the stage driver goes after a binary stage reports progress.
enum Drive {
    /// Suspend (possibly with sends) — the stage machine waits.
    Suspend,
    /// The stage decided 0: open the next stage.
    NextStage,
    /// Terminal multivalued progress.
    Terminal(MvProgress),
}

impl MultivaluedSm {
    /// Creates a machine for `me` proposing `proposal` in multivalued
    /// instance `mv_index`, with a fresh mailbox.
    pub fn new(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        mv_index: u64,
        proposal: Payload,
        cfg: ProtocolConfig,
    ) -> Self {
        Self::with_mailbox(algorithm, me, topo, mv_index, proposal, cfg, Mailbox::new())
    }

    /// Like [`MultivaluedSm::new`] but adopting an existing [`Mailbox`]
    /// (the shared-mailbox contract of the blocking reduction: instances
    /// run in increasing `mv_index` order over one mailbox).
    pub fn with_mailbox(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        mv_index: u64,
        proposal: Payload,
        cfg: ProtocolConfig,
        mailbox: Mailbox,
    ) -> Self {
        let n = topo.n();
        let base = mv_index * INSTANCE_STRIDE;
        let budget = stage_budget(&cfg, n);
        MultivaluedSm {
            algorithm,
            me,
            topo,
            cfg,
            mv_index,
            base,
            budget,
            store: ProposalStore::new(n, base, me, proposal),
            stage: 0,
            state: MvState::Finished(mailbox),
            outbox: Vec::new(),
            done: false,
        }
    }

    /// Releases the mailbox (with everything still buffered for future
    /// instances) so the next instance of a log can adopt it. Call after
    /// a terminal [`MvProgress`].
    pub fn into_mailbox(self) -> Mailbox {
        match self.state {
            MvState::Finished(mb) | MvState::AwaitProposal(mb, _) => mb,
            MvState::Stage(sm) => sm.into_mailbox(),
        }
    }

    /// `true` once a terminal [`MvProgress`] has been returned.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// This machine's process identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Serializes the machine's resumable wait state — stage cursor,
    /// proposal store, and the current internal state (tagged by
    /// variant, with a running stage captured via
    /// [`ConsensusSm::snapshot`]). The outbox is omitted: empty at every
    /// suspension.
    pub fn snapshot(&self) -> serde::Value {
        let state = match &self.state {
            MvState::Stage(sm) => serde::Value::Map(vec![("Stage".to_string(), sm.snapshot())]),
            MvState::AwaitProposal(mb, k) => serde::Value::Map(vec![(
                "AwaitProposal".to_string(),
                serde::Value::Seq(vec![mb.to_value(), k.to_value()]),
            )]),
            MvState::Finished(mb) => {
                serde::Value::Map(vec![("Finished".to_string(), mb.to_value())])
            }
        };
        serde::Value::Map(vec![
            ("mv_index".to_string(), self.mv_index.to_value()),
            ("store".to_string(), self.store.snapshot()),
            ("stage".to_string(), self.stage.to_value()),
            ("state".to_string(), state),
            ("done".to_string(), self.done.to_value()),
        ])
    }

    /// Rebuilds a machine from a [`MultivaluedSm::snapshot`] value; the
    /// construction context comes from the scenario, and the derived
    /// fields (`base`, `budget`) are recomputed like in
    /// [`MultivaluedSm::with_mailbox`].
    pub fn from_snapshot(
        algorithm: Algorithm,
        me: ProcessId,
        topo: Arc<SmTopology>,
        cfg: ProtocolConfig,
        v: &serde::Value,
    ) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("MultivaluedSm: missing field {name}")))
        };
        let n = topo.n();
        let mv_index: u64 = serde::Deserialize::from_value(field("mv_index")?)?;
        let base = mv_index * INSTANCE_STRIDE;
        let sv = field("state")?;
        let state = if let Some(stage) = sv.get("Stage") {
            MvState::Stage(Box::new(ConsensusSm::from_snapshot(
                algorithm,
                me,
                Arc::clone(&topo),
                cfg,
                stage,
            )?))
        } else if let Some(wait) = sv.get("AwaitProposal") {
            let (mb, k): (Mailbox, ProcessId) = serde::Deserialize::from_value(wait)?;
            MvState::AwaitProposal(mb, k)
        } else if let Some(mb) = sv.get("Finished") {
            MvState::Finished(serde::Deserialize::from_value(mb)?)
        } else {
            return Err(serde::Error::msg("MultivaluedSm: unknown state variant"));
        };
        Ok(MultivaluedSm {
            algorithm,
            me,
            topo,
            cfg,
            mv_index,
            base,
            budget: stage_budget(&cfg, n),
            store: ProposalStore::from_snapshot(base, field("store")?)?,
            stage: serde::Deserialize::from_value(field("stage")?)?,
            state,
            outbox: Vec::new(),
            done: serde::Deserialize::from_value(field("done")?)?,
        })
    }

    /// Hands a drained outbox buffer back for reuse (see
    /// [`ConsensusSm::recycle_outbox`]). Routed to the running binary
    /// stage when one is active — that is where broadcasts originate,
    /// and the stage's buffer moves wholesale up to this layer at every
    /// suspension, so one buffer cycles through the whole machine stack.
    pub fn recycle_outbox(&mut self, buf: Outbox) {
        match &mut self.state {
            MvState::Stage(sm) => sm.recycle_outbox(buf),
            _ => super::recycle_into(&mut self.outbox, buf),
        }
    }

    /// Accumulates a binary stage's sends (see [`super::absorb_out`]).
    fn absorb_out(&mut self, out: Outbox) {
        super::absorb_out(&mut self.outbox, out);
    }

    /// Runs the machine up to its first suspension: broadcasts the `APP`
    /// dissemination and opens stage 1. Call exactly once.
    pub fn start<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> MvProgress {
        assert!(
            self.stage == 0 && !self.done,
            "start() must be the first step"
        );
        if let Err(h) = broadcast_into(
            &mut self.outbox,
            self.topo.n(),
            MsgKind::App {
                instance: self.base,
                seq: self.me.index() as u64,
                payload: self.store.payload_of(self.me),
            },
            ctx,
        ) {
            return self.finish_halt(h);
        }
        let first = match self.open_next_stage(ctx) {
            Ok(p) => p,
            Err(terminal) => return terminal,
        };
        self.drive(first, ctx)
    }

    /// Consumes one delivered message and advances as far as possible —
    /// through the current binary stage, across stage boundaries, into
    /// the proposal wait, up to the decision.
    ///
    /// # Panics
    ///
    /// Panics if called after a terminal `MvProgress`.
    pub fn on_msg<C: SmCtx + ?Sized>(&mut self, msg: Msg, ctx: &mut C) -> MvProgress {
        assert!(!self.done, "on_msg() on a finished machine");
        match &mut self.state {
            MvState::Stage(sm) => {
                let progress = sm.on_msg(msg, ctx);
                self.drive(progress, ctx)
            }
            MvState::AwaitProposal(mailbox, k) => {
                // The blocking wait loop: pump (routing only — the recv
                // entry step was charged when the wait began), absorb,
                // re-check, and either decide or re-enter recv.
                let k = *k;
                mailbox.buffer(msg);
                self.store.absorb(mailbox);
                if self.store.holds(k) {
                    return self.finish_decided(k, ctx);
                }
                if let Err(h) = ctx.begin_recv() {
                    return self.finish_halt(h);
                }
                self.suspend()
            }
            MvState::Finished(_) => unreachable!("on_msg() on a finished machine"),
        }
    }

    /// Ends the machine externally (crash event or run shutdown) — the
    /// blocking `recv` returning `Err(halt)` wherever it was waiting.
    pub fn halt<C: SmCtx + ?Sized>(&mut self, halt: Halt, ctx: &mut C) -> MvProgress {
        assert!(!self.done, "halt() on a finished machine");
        if let MvState::Stage(sm) = &mut self.state {
            // The active binary instance emits its mailbox report, like
            // the blocking instance does when the halt propagates out.
            match sm.halt(halt, ctx) {
                Progress::Halted(h, out) => {
                    self.absorb_out(out);
                    return self.finish_halt(h);
                }
                other => unreachable!("halt() is terminal, got {other:?}"),
            }
        }
        self.finish_halt(halt)
    }

    /// Runs binary-stage progress through the stage loop until the
    /// machine suspends or terminates — the state-machine form of the
    /// blocking reduction's `loop { …; binary_instance(…)?; … }`.
    fn drive<C: SmCtx + ?Sized>(&mut self, mut progress: Progress, ctx: &mut C) -> MvProgress {
        loop {
            match self.step_stage(progress, ctx) {
                Drive::Suspend => return self.suspend(),
                Drive::Terminal(p) => return p,
                Drive::NextStage => match self.open_next_stage(ctx) {
                    Ok(p) => progress = p,
                    Err(terminal) => return terminal,
                },
            }
        }
    }

    /// Routes one binary stage [`Progress`] report.
    fn step_stage<C: SmCtx + ?Sized>(&mut self, progress: Progress, ctx: &mut C) -> Drive {
        match progress {
            Progress::NeedMsg => Drive::Suspend,
            Progress::Sent(out) => {
                self.absorb_out(out);
                Drive::Suspend
            }
            Progress::Halted(h, out) => {
                self.absorb_out(out);
                Drive::Terminal(self.finish_halt(h))
            }
            Progress::Decided(d, out) => {
                self.absorb_out(out);
                // Reclaim the shared mailbox from the finished stage.
                let MvState::Stage(sm) =
                    std::mem::replace(&mut self.state, MvState::Finished(Mailbox::new()))
                else {
                    unreachable!("a stage progress implies a running stage")
                };
                let mut mailbox = sm.into_mailbox();
                if d.value == Bit::One {
                    let k = self.proposer();
                    // Absorb before the first check (the relay may
                    // already be in the stash), like the blocking wait
                    // loop.
                    self.store.absorb(&mut mailbox);
                    self.state = MvState::Finished(mailbox);
                    if self.store.holds(k) {
                        return Drive::Terminal(self.finish_decided(k, ctx));
                    }
                    // Enter the wait loop: charge the pump's recv entry.
                    if let Err(h) = ctx.begin_recv() {
                        return Drive::Terminal(self.finish_halt(h));
                    }
                    let MvState::Finished(mailbox) =
                        std::mem::replace(&mut self.state, MvState::Finished(Mailbox::new()))
                    else {
                        unreachable!()
                    };
                    self.state = MvState::AwaitProposal(mailbox, k);
                    Drive::Suspend
                } else {
                    self.state = MvState::Finished(mailbox);
                    Drive::NextStage
                }
            }
        }
    }

    /// Opens the next binary stage: budget check, absorb, vote, relay on
    /// first use, construct and start the stage machine. Returns the
    /// stage's first [`Progress`], or the terminal [`MvProgress`] if the
    /// budget ran out / the relay crashed.
    fn open_next_stage<C: SmCtx + ?Sized>(&mut self, ctx: &mut C) -> Result<Progress, MvProgress> {
        self.stage += 1;
        if let Some(max) = self.budget {
            if self.stage > max {
                return Err(self.finish_halt(Halt::Stopped));
            }
        }
        let MvState::Finished(mailbox) =
            std::mem::replace(&mut self.state, MvState::Finished(Mailbox::new()))
        else {
            unreachable!("the stage loop owns the mailbox between stages")
        };
        let mut mailbox = mailbox;
        self.store.absorb(&mut mailbox);
        let k = self.proposer();
        let vote = Bit::from(self.store.holds(k));
        if let Some(relay) = self.store.relay_due(k) {
            if let Err(h) = broadcast_into(&mut self.outbox, self.topo.n(), relay, ctx) {
                self.state = MvState::Finished(mailbox);
                return Err(self.finish_halt(h));
            }
        }
        let mut sm = Box::new(ConsensusSm::with_mailbox(
            self.algorithm,
            self.me,
            Arc::clone(&self.topo),
            self.base + self.stage,
            vote,
            self.cfg,
            mailbox,
        ));
        let progress = sm.start(ctx);
        self.state = MvState::Stage(sm);
        Ok(progress)
    }

    /// The stage's proposer `p_k`, `k = (stage - 1) mod n`.
    fn proposer(&self) -> ProcessId {
        ProcessId(((self.stage - 1) as usize) % self.topo.n())
    }

    fn suspend(&mut self) -> MvProgress {
        if self.outbox.is_empty() {
            MvProgress::NeedMsg
        } else {
            MvProgress::Sent(std::mem::take(&mut self.outbox))
        }
    }

    fn finish_decided<C: SmCtx + ?Sized>(&mut self, k: ProcessId, ctx: &mut C) -> MvProgress {
        let mv = MvDecision {
            payload: self.store.payload_of(k),
            proposer: k,
            stages: self.stage,
        };
        ctx.observe(ObsEvent::MvDecided {
            mv_index: self.mv_index,
            proposer: mv.proposer,
            payload: mv.payload,
            stages: mv.stages,
        });
        self.done = true;
        MvProgress::Decided(mv, std::mem::take(&mut self.outbox))
    }

    fn finish_halt(&mut self, halt: Halt) -> MvProgress {
        self.done = true;
        MvProgress::Halted(halt, std::mem::take(&mut self.outbox))
    }
}

#[cfg(test)]
mod tests {
    use super::super::consensus::tests::TestCtx;
    use super::*;
    use ofa_topology::Partition;

    fn payload(s: &str) -> Payload {
        Payload::from_bytes(s.as_bytes()).expect("fits")
    }

    /// A solo machine decides its own proposal in one stage, feeding
    /// itself its own broadcasts.
    #[test]
    fn solo_decides_own_proposal_in_stage_one() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        let mut sm = MultivaluedSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            payload("solo-value"),
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        let mut queue: Vec<Msg> = Vec::new();
        let absorb = |queue: &mut Vec<Msg>, outbox: Outbox| {
            for item in outbox {
                match item {
                    super::super::OutItem::One(o) => queue.push(Msg {
                        from: ProcessId(0),
                        kind: o.msg,
                    }),
                    super::super::OutItem::Broadcast { msg, .. } => queue.push(Msg {
                        from: ProcessId(0),
                        kind: msg,
                    }),
                }
            }
        };
        match sm.start(&mut ctx) {
            MvProgress::Sent(out) => absorb(&mut queue, out),
            other => panic!("expected sends, got {other:?}"),
        }
        loop {
            assert!(!queue.is_empty(), "starved without deciding");
            let msg = queue.remove(0);
            match sm.on_msg(msg, &mut ctx) {
                MvProgress::Sent(out) => absorb(&mut queue, out),
                MvProgress::NeedMsg => {}
                MvProgress::Decided(mv, _) => {
                    assert_eq!(mv.payload, payload("solo-value"), "validity");
                    assert_eq!(mv.proposer, ProcessId(0));
                    assert_eq!(mv.stages, 1);
                    break;
                }
                MvProgress::Halted(h, _) => panic!("{h}"),
            }
        }
        assert!(sm.is_done());
        // The decision was observed for log collectors.
        assert!(ctx
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::MvDecided { mv_index: 0, .. })));
    }

    #[test]
    fn zero_budget_halts_before_any_stage() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(1)));
        // max_rounds(0) still leaves the 4n stage floor, so drive the
        // budget down via a 1-process partition: floor is 4. Instead use
        // an external halt to check the pre-stage path.
        let mut sm = MultivaluedSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            payload("x"),
            ProtocolConfig::paper().with_max_rounds(0),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        // The binary stages inherit max_rounds(0) and stop immediately.
        let progress = sm.start(&mut ctx);
        assert!(
            matches!(progress, MvProgress::Halted(Halt::Stopped, _)),
            "got {progress:?}"
        );
    }

    #[test]
    fn external_halt_before_start_is_terminal() {
        let topo = Arc::new(SmTopology::new(Partition::single_cluster(2)));
        let mut sm = MultivaluedSm::new(
            Algorithm::LocalCoin,
            ProcessId(0),
            topo,
            0,
            payload("y"),
            ProtocolConfig::paper(),
        );
        let mut ctx = TestCtx::new(Bit::Zero);
        assert!(matches!(sm.start(&mut ctx), MvProgress::Sent(_)));
        let progress = sm.halt(Halt::Crashed, &mut ctx);
        assert!(matches!(progress, MvProgress::Halted(Halt::Crashed, _)));
        assert!(sm.is_done());
    }
}
