//! The process-facing environment: everything a hybrid-model process can
//! do, as one object-safe trait.
//!
//! The paper's model gives a process four capabilities: send/receive
//! messages over reliable asynchronous channels, invoke its cluster's
//! consensus objects, and draw local/common coins. [`Env`] captures
//! exactly those, so each algorithm is written **once** in blocking
//! pseudocode style and runs unchanged on the deterministic simulator
//! (`ofa-sim`), the real thread runtime (`ofa-runtime`), and the loopback
//! environment used by unit tests.

use crate::{Bit, Est, Halt, Msg, MsgKind};
use ofa_sharedmem::Slot;
use ofa_topology::{Partition, ProcessId};

/// The world as seen by one process of the hybrid model.
///
/// All methods that interact with the world return `Result<_, Halt>`:
/// substrates inject crashes and stop signals by returning `Err`.
pub trait Env {
    /// This process's identity.
    fn me(&self) -> ProcessId;

    /// The cluster partition (known to every process, §II-A).
    fn partition(&self) -> &Partition;

    /// Sends `msg` to `to` over the reliable asynchronous channel.
    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt>;

    /// Receives the next delivered message, blocking until one is
    /// available.
    ///
    /// # Errors
    ///
    /// `Err(Halt::Crashed)` if this process crashed; `Err(Halt::Stopped)`
    /// if no message can ever arrive (quiescence) or the run was stopped.
    fn recv(&mut self) -> Result<Msg, Halt>;

    /// Proposes the encoded value `enc` to this cluster's consensus object
    /// `CONS_x[slot]`, returning the decided encoding. Wait-free.
    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt>;

    /// Draws this process's local coin (Algorithm 2, line 14).
    fn local_coin(&mut self) -> Result<Bit, Halt>;

    /// Reads the common coin's bit for `round` (Algorithm 3, line 6).
    fn common_coin(&mut self, round: u64) -> Result<Bit, Halt>;

    /// Reports a protocol-level event to observers (tracing, invariant
    /// checking). Default: ignored.
    fn observe(&mut self, _event: ObsEvent) {}

    /// This process's current virtual clock in ticks. Virtual-time
    /// substrates return the process-local clock (bit-identical across
    /// engines); substrates without a modeled clock keep the default
    /// `0`, which is why traffic-driven workloads are rejected there.
    fn now(&self) -> u64 {
        0
    }

    /// The scenario's master randomness seed, for workload-level PRFs
    /// (e.g. [`crate::traffic::traffic_word`]). Default: `0`.
    fn seed(&self) -> u64 {
        0
    }

    /// Reports the process's accumulated client-service statistics —
    /// emitted once per body incarnation, at its terminal progress
    /// point. Substrates fold the stats into the run outcome; the
    /// default discards them.
    fn service_stats(&mut self, _stats: &ofa_metrics::ServiceStats) {}

    /// Whether this process serves client traffic in a traffic-driven
    /// replicated log. Default `true`; virtual-time substrates return
    /// `false` for processes scheduled to churn. The multivalued
    /// reduction decides whichever copy of a proposer's `APP` payload a
    /// process holds, so a proposer's batch descriptor must be identical
    /// every time it is broadcast for a given slot — and a restarted
    /// incarnation cannot reproduce its first incarnation's
    /// clock-dependent batches. Churn-planned replicas therefore propose
    /// empty filler slots in *both* incarnations; their clients are
    /// treated as failed over and unserved.
    fn serves_traffic(&self) -> bool {
        true
    }

    /// The `broadcast(msg)` macro-operation of §II-A: sends `msg` to every
    /// process **including the sender**, in index order.
    ///
    /// Like the paper's macro-operation it is *not reliable*: if the
    /// process crashes mid-loop (a `send` returns `Err(Halt::Crashed)`),
    /// an arbitrary prefix of processes receives the message.
    ///
    /// # Errors
    ///
    /// Propagates the first `Halt` returned by `send`.
    fn broadcast(&mut self, msg: MsgKind) -> Result<(), Halt> {
        let n = self.partition().n();
        for j in 0..n {
            self.send(ProcessId(j), msg)?;
        }
        Ok(())
    }
}

/// Protocol-level events emitted by the algorithms via [`Env::observe`],
/// consumed by tracers and the WA1/WA2 invariant checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// The process entered the protocol proposing `value`.
    Propose {
        /// Protocol instance (0 for single-shot consensus).
        instance: u64,
        /// The proposed value `v_i`.
        value: Bit,
    },
    /// The process entered round `round` (line 3).
    RoundStart {
        /// Protocol instance.
        instance: u64,
        /// The new round number.
        round: u64,
    },
    /// The intra-cluster consensus object at `slot` returned `decided`.
    ClusterAgreed {
        /// Which object.
        slot: Slot,
        /// The decided encoding (decode with the algorithm's value type).
        decided: u64,
    },
    /// The value championed after phase 1 of `round` (`est2_i`, line 7).
    /// The WA1 predicate quantifies over these events.
    Est2 {
        /// Protocol instance.
        instance: u64,
        /// The round.
        round: u64,
        /// `Some(v)` if a majority supported `v`, otherwise `⊥`.
        est2: Est,
    },
    /// The reception set after phase 2 of `round` (`rec_i`, line 10).
    /// The WA2 predicate quantifies over these events.
    Rec {
        /// Protocol instance.
        instance: u64,
        /// The round.
        round: u64,
        /// `0` was received.
        saw_zero: bool,
        /// `1` was received.
        saw_one: bool,
        /// `⊥` was received.
        saw_bot: bool,
    },
    /// A coin was drawn.
    Coin {
        /// The round.
        round: u64,
        /// `true` for the common coin, `false` for a local coin.
        common: bool,
        /// The drawn bit.
        value: Bit,
    },
    /// The process is about to decide `value` in `round` (it broadcasts
    /// `DECIDE(value)` first, per lines 12/17).
    Deciding {
        /// Protocol instance.
        instance: u64,
        /// The deciding round (the process's current round).
        round: u64,
        /// The decided value.
        value: Bit,
        /// `true` if adopted from a received `DECIDE` message (line 17),
        /// `false` for a direct decision (line 12).
        relayed: bool,
    },
    /// Mailbox hygiene report, emitted once when a consensus instance
    /// finishes (decided or halted): how many stale messages the
    /// process's [`crate::Mailbox`] discarded during the instance —
    /// past-slot arrivals plus buffers pruned when the served slot
    /// advanced. Substrates fold the delta into
    /// `ofa_metrics::Counters::stale_dropped`.
    MailboxStats {
        /// Stale messages dropped since the previous report by the same
        /// process (a delta, so multi-instance layers sum correctly).
        stale_dropped: u64,
    },
    /// A multivalued consensus instance decided (see
    /// [`crate::multivalued_propose`]). Layers above binary consensus —
    /// replicated logs, observers reconstructing decided command
    /// sequences — key on this event; `mv_index` is the *multivalued*
    /// instance (log slot), not a binary instance id.
    MvDecided {
        /// The multivalued instance (log slot for replicated logs).
        mv_index: u64,
        /// The proposer whose value was adopted.
        proposer: ofa_topology::ProcessId,
        /// The decided payload.
        payload: crate::Payload,
        /// How many binary stages the reduction needed.
        stages: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_topology::Partition;

    /// Minimal Env: loops messages back to self, no other process.
    struct Loopback {
        part: Partition,
        queue: std::collections::VecDeque<Msg>,
        sent: Vec<(ProcessId, MsgKind)>,
    }

    impl Env for Loopback {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
            self.sent.push((to, msg));
            if to == self.me() {
                self.queue.push_back(Msg {
                    from: self.me(),
                    kind: msg,
                });
            }
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.queue.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
            Ok(enc)
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(Bit::One)
        }
    }

    #[test]
    fn default_broadcast_sends_to_all_in_index_order() {
        let mut env = Loopback {
            part: Partition::fig1_left(),
            queue: Default::default(),
            sent: Vec::new(),
        };
        let msg = MsgKind::Decide {
            instance: 0,
            value: Bit::One,
        };
        env.broadcast(msg).unwrap();
        assert_eq!(env.sent.len(), 7);
        for (j, (to, kind)) in env.sent.iter().enumerate() {
            assert_eq!(*to, ProcessId(j));
            assert_eq!(*kind, msg);
        }
        // self-delivery happened
        assert_eq!(env.recv().unwrap().kind, msg);
    }

    #[test]
    fn env_is_object_safe() {
        fn takes_dyn(_: &mut dyn Env) {}
        let mut env = Loopback {
            part: Partition::single_cluster(1),
            queue: Default::default(),
            sent: Vec::new(),
        };
        takes_dyn(&mut env);
    }
}
