//! Messages of the hybrid consensus algorithms.
//!
//! Both algorithms exchange exactly two kinds of messages: phase messages
//! `(r, ph, est)` broadcast by the `msg_exchange` pattern (Algorithm 1) and
//! the `DECIDE(v)` messages that prevent the deadlock discussed at lines
//! 12/17 of Algorithm 2.

use crate::{fmt_est, Bit, Est, Payload};
use ofa_topology::ProcessId;
use std::fmt;

/// The phase of a round. Algorithm 2 runs two phases per round; Algorithm 3
/// runs a single phase (represented as [`Phase::One`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Phase {
    /// First phase: champion a value.
    One,
    /// Second phase: try to decide.
    Two,
}

impl Phase {
    /// The slot index used to address `CONS_x[r, ph]` in the cluster memory.
    #[inline]
    pub fn slot_index(self) -> u8 {
        match self {
            Phase::One => 1,
            Phase::Two => 2,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.slot_index())
    }
}

/// Message payloads.
///
/// Every message carries a protocol `instance` so that higher layers
/// (multivalued consensus, replicated logs) can run many binary consensus
/// instances over one channel without collisions. Single-shot consensus
/// uses instance 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MsgKind {
    /// A phase message `(r, ph, est)` of the `msg_exchange` pattern.
    ///
    /// In phase 1 the estimate is always a value (`Some(bit)`); in phase 2
    /// it may be `⊥` (`None`).
    Phase {
        /// Protocol instance (0 for single-shot consensus).
        instance: u64,
        /// Round number `r >= 1`.
        round: u64,
        /// Phase within the round.
        phase: Phase,
        /// The carried estimate.
        est: Est,
    },
    /// `DECIDE(v)`: the sender is about to decide `v` in `instance` (or is
    /// relaying a received `DECIDE`).
    Decide {
        /// Protocol instance (0 for single-shot consensus).
        instance: u64,
        /// The decided value.
        value: Bit,
    },
    /// An application-level payload (used by layers above binary
    /// consensus, e.g. proposal dissemination in multivalued consensus).
    App {
        /// Protocol instance the payload belongs to.
        instance: u64,
        /// Application-defined sequence/tag (e.g. the originating
        /// proposer's index).
        seq: u64,
        /// The payload.
        payload: Payload,
    },
}

impl MsgKind {
    /// The protocol instance this message belongs to.
    pub fn instance(&self) -> u64 {
        match *self {
            MsgKind::Phase { instance, .. }
            | MsgKind::Decide { instance, .. }
            | MsgKind::App { instance, .. } => instance,
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgKind::Phase {
                instance,
                round,
                phase,
                est,
            } => {
                if *instance == 0 {
                    write!(f, "PHASE{phase}({round},{})", fmt_est(*est))
                } else {
                    write!(f, "PHASE{phase}(i{instance}:{round},{})", fmt_est(*est))
                }
            }
            MsgKind::Decide { instance, value } => {
                if *instance == 0 {
                    write!(f, "DECIDE({value})")
                } else {
                    write!(f, "DECIDE(i{instance}:{value})")
                }
            }
            MsgKind::App {
                instance,
                seq,
                payload,
            } => write!(f, "APP(i{instance}:{seq},{payload})"),
        }
    }
}

/// A delivered message: payload plus sender identity (the receiver needs
/// the sender to apply the "one for all" cluster amplification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Msg {
    /// The sending process.
    pub from: ProcessId,
    /// The payload.
    pub kind: MsgKind,
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} from {}", self.kind, self.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_slot_indices_match_paper() {
        assert_eq!(Phase::One.slot_index(), 1);
        assert_eq!(Phase::Two.slot_index(), 2);
    }

    #[test]
    fn display_forms() {
        let m = Msg {
            from: ProcessId(2),
            kind: MsgKind::Phase {
                instance: 0,
                round: 3,
                phase: Phase::Two,
                est: None,
            },
        };
        assert_eq!(m.to_string(), "PHASE2(3,⊥) from p3");
        let d = MsgKind::Decide {
            instance: 0,
            value: Bit::One,
        };
        assert_eq!(d.to_string(), "DECIDE(1)");
        let tagged = MsgKind::Decide {
            instance: 4,
            value: Bit::Zero,
        };
        assert_eq!(tagged.to_string(), "DECIDE(i4:0)");
        assert_eq!(tagged.instance(), 4);
    }
}
