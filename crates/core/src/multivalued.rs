//! Multivalued consensus from binary consensus (blocking reference).
//!
//! The paper's algorithms decide a *bit*. Replicated services need to
//! agree on arbitrary values, so we implement the classic reduction from
//! multivalued to binary consensus (in the style of Mostéfaoui–Raynal),
//! adapted to the hybrid model's primitives:
//!
//! 1. **Dissemination.** Every process broadcasts its proposal as an
//!    `APP` message over the reliable channels.
//! 2. **Stage loop.** Stages `s = 1, 2, …` consider proposer
//!    `k = (s-1) mod n` and run one *binary* hybrid consensus instance on
//!    the question "shall we adopt `p_k`'s proposal?", each process voting
//!    1 iff it holds that proposal. The first stage that decides 1 fixes
//!    the outcome: everyone waits (if needed) for the proposal and
//!    decides it.
//! 3. **Relay on first use.** Before a process's 1-vote for stage `s` can
//!    influence the binary outcome, the process completes a relay
//!    broadcast of `p_k`'s proposal (its own initial broadcast counts as
//!    the relay of its own proposal). So if stage `s` decides 1, some
//!    correct process voted 1 (binary validity), and that process's relay
//!    put the proposal on reliable channels to everyone — the wait in
//!    step 2 terminates.
//!
//! Earlier revisions relayed *every* first-seen proposal eagerly, which
//! preserves the same invariant but costs `Θ(n³)` messages (`n` proposals
//! × `n` relayers × `n` destinations). Relay-on-first-use keeps the
//! liveness argument — only 1-votes need a completed relay behind them —
//! at one relay broadcast per process per stage, `O(n²)` per stage like
//! the binary exchanges themselves. That is the difference between
//! replicated logs at `n = 50` and at `n = 5 000+` (the `SMRSCALE`
//! experiment).
//!
//! Termination: correct proposers' initial broadcasts reach every correct
//! process, so a stage naming a correct proposer eventually gets
//! unanimous 1-votes and binary validity decides 1. Agreement and
//! validity follow from binary agreement plus the relay argument above.
//! The binary instances inherit the hybrid model's fault tolerance — with
//! a majority cluster, multivalued consensus also survives `n - 1`
//! crashes.
//!
//! The event-driven twin of this module is [`crate::sm::MultivaluedSm`]:
//! the same reduction as a resumable state machine, step-for-step
//! equivalent (every environment interaction happens in the same order
//! with the same arguments), so the two execution engines produce
//! bit-identical traces.

use crate::{
    ben_or_hybrid_instance, common_coin_hybrid_instance, Algorithm, Bit, Decision, Env, Halt,
    Mailbox, MsgKind, ObsEvent, Payload, ProtocolConfig,
};
use ofa_topology::ProcessId;
use serde::Serialize as _;

/// Binary-instance ids used by one multivalued instance `j`:
/// `j * INSTANCE_STRIDE + s` for stage `s >= 1`; the `APP` dissemination
/// uses instance `j * INSTANCE_STRIDE` itself.
pub const INSTANCE_STRIDE: u64 = 1 << 20;

/// Outcome of a multivalued consensus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvDecision {
    /// The decided proposal.
    pub payload: Payload,
    /// The proposer whose value was adopted.
    pub proposer: ProcessId,
    /// How many binary stages were needed.
    pub stages: u64,
}

/// Known proposals of one multivalued instance, by proposer, plus which
/// of them this process has already relayed. Shared between the blocking
/// reduction below and [`crate::sm::MultivaluedSm`] so both absorb and
/// relay identically.
#[derive(Debug)]
pub(crate) struct ProposalStore {
    base: u64,
    have: Vec<Option<Payload>>,
    relayed: Vec<bool>,
}

impl ProposalStore {
    /// A store for multivalued instance `base / INSTANCE_STRIDE` in which
    /// `me` already holds (and has broadcast) its own `proposal`.
    pub(crate) fn new(n: usize, base: u64, me: ProcessId, proposal: Payload) -> Self {
        let mut store = ProposalStore {
            base,
            have: vec![None; n],
            relayed: vec![false; n],
        };
        store.have[me.index()] = Some(proposal);
        store.relayed[me.index()] = true; // the initial broadcast is the relay
        store
    }

    pub(crate) fn holds(&self, k: ProcessId) -> bool {
        self.have[k.index()].is_some()
    }

    pub(crate) fn payload_of(&self, k: ProcessId) -> Payload {
        self.have[k.index()].expect("caller checked holds()")
    }

    /// Moves this instance's stashed APP messages into the store.
    /// Messages of later multivalued instances stay stashed (instances
    /// are processed in increasing order, so they belong to the future);
    /// messages of earlier ones are dropped as stale — retaining them
    /// would rescan and hold dead payloads for the rest of a log run.
    /// Served in place via [`Mailbox::absorb_apps`], so a relay storm
    /// never round-trips through a temporary `Vec`. No environment
    /// interaction.
    pub(crate) fn absorb(&mut self, mailbox: &mut Mailbox) {
        let have = &mut self.have;
        mailbox.absorb_apps(self.base, |app| {
            let proposer = app.seq as usize;
            if proposer < have.len() && have[proposer].is_none() {
                have[proposer] = Some(app.payload);
            }
        });
    }

    /// The relay-on-first-use message for stage proposer `k`, if this
    /// process holds `p_k`'s proposal and has not relayed it yet. The
    /// caller must complete the returned broadcast *before* voting 1.
    pub(crate) fn relay_due(&mut self, k: ProcessId) -> Option<MsgKind> {
        if self.have[k.index()].is_some() && !self.relayed[k.index()] {
            self.relayed[k.index()] = true;
            Some(MsgKind::App {
                instance: self.base,
                seq: k.index() as u64,
                payload: self.have[k.index()].expect("present"),
            })
        } else {
            None
        }
    }

    /// Serializes the store for a checkpoint: known proposals plus the
    /// relay ledger (`base` is recomputed from the owning layer's index).
    pub(crate) fn snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("have".to_string(), self.have.to_value()),
            ("relayed".to_string(), self.relayed.to_value()),
        ])
    }

    /// Rebuilds a store from a [`ProposalStore::snapshot`] value.
    pub(crate) fn from_snapshot(base: u64, v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("ProposalStore: missing field {name}")))
        };
        Ok(ProposalStore {
            base,
            have: serde::Deserialize::from_value(field("have")?)?,
            relayed: serde::Deserialize::from_value(field("relayed")?)?,
        })
    }
}

/// The stage budget: a doomed run terminates even when `cfg.max_rounds`
/// is small relative to `n` (every live proposer must get a chance).
pub(crate) fn stage_budget(cfg: &ProtocolConfig, n: usize) -> Option<u64> {
    cfg.max_rounds.map(|max| max.max(4 * n as u64))
}

/// Runs multivalued consensus instance `mv_index` proposing `proposal`.
///
/// All processes of the run must use the same `mv_index` and `algorithm`,
/// execute their multivalued instances in increasing `mv_index` order, and
/// share `mailbox` across them. Emits [`ObsEvent::MvDecided`] just before
/// returning, so observers can reconstruct decided sequences.
///
/// # Errors
///
/// Propagates the binary layer's [`Halt`] (crash, round/stage budget).
pub fn multivalued_propose(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    mv_index: u64,
    proposal: Payload,
    algorithm: Algorithm,
    cfg: &ProtocolConfig,
) -> Result<MvDecision, Halt> {
    let n = env.partition().n();
    let me = env.me();
    let base = mv_index * INSTANCE_STRIDE;
    let budget = stage_budget(cfg, n);

    env.broadcast(MsgKind::App {
        instance: base,
        seq: me.index() as u64,
        payload: proposal,
    })?;
    let mut store = ProposalStore::new(n, base, me, proposal);

    let mut stage: u64 = 0;
    loop {
        stage += 1;
        if let Some(max) = budget {
            if stage > max {
                return Err(Halt::Stopped);
            }
        }
        // Absorb any proposals that arrived during earlier stages.
        store.absorb(mailbox);

        let k = ProcessId(((stage - 1) as usize) % n);
        let vote = Bit::from(store.holds(k));
        // Relay on first use: complete the relay broadcast before the
        // 1-vote can influence the binary outcome.
        if let Some(relay) = store.relay_due(k) {
            env.broadcast(relay)?;
        }
        let instance = base + stage;
        let decision = match algorithm {
            Algorithm::LocalCoin => ben_or_hybrid_instance(env, mailbox, instance, vote, cfg)?,
            Algorithm::CommonCoin => {
                common_coin_hybrid_instance(env, mailbox, instance, vote, cfg)?
            }
        };
        if decision.value == Bit::One {
            // Whoever voted 1 completed a relay of p_k's proposal before
            // voting: it is on the wire to us (possibly already in the
            // stash — absorb before the first check, otherwise a process
            // could block for a pump that never comes after everyone
            // else terminated). Wait for it.
            loop {
                store.absorb(mailbox);
                if store.holds(k) {
                    break;
                }
                mailbox.pump(env)?;
            }
            let mv = MvDecision {
                payload: store.payload_of(k),
                proposer: k,
                stages: stage,
            };
            env.observe(ObsEvent::MvDecided {
                mv_index,
                proposer: mv.proposer,
                payload: mv.payload,
                stages: mv.stages,
            });
            return Ok(mv);
        }
    }
}

/// Order-sensitive digest of a decided log: agreement on every slot's
/// `(proposer, payload)` pair implies agreement on the digest, so
/// replicas can cross-check whole histories with one `u64` (FNV-1a over
/// the slot sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogDigest(u64);

impl LogDigest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// The digest of the empty log.
    pub fn new() -> Self {
        LogDigest(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
    }

    /// Folds one decided slot into the digest.
    pub fn absorb(&mut self, decision: &MvDecision) {
        for b in (decision.proposer.index() as u64).to_le_bytes() {
            self.byte(b);
        }
        self.byte(decision.payload.len() as u8);
        for &b in decision.payload.as_bytes() {
            self.byte(b);
        }
    }

    /// The digest value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Rebuilds a digest from a previously captured [`LogDigest::value`] —
    /// checkpointed log runs resume the rolling hash mid-stream.
    pub fn from_raw(value: u64) -> Self {
        LogDigest(value)
    }
}

impl Default for LogDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// The binary [`Decision`] a multivalued *body* reports in an
/// [`crate::Env`]-level outcome: the parity of the decided slot's digest
/// (agreement on payloads implies agreement on the bit), deciding "round"
/// = stages used. Both execution engines use exactly this conversion.
pub fn mv_body_decision(mv: &MvDecision) -> Decision {
    let mut digest = LogDigest::new();
    digest.absorb(mv);
    Decision {
        value: Bit::from(digest.value() & 1 == 1),
        round: mv.stages,
        relayed: false,
    }
}

/// The binary [`Decision`] a replicated-log *body* reports: the parity of
/// the full log digest, deciding "round" = number of slots.
pub fn log_body_decision(digest: &LogDigest, slots: u64) -> Decision {
    Decision {
        value: Bit::from(digest.value() & 1 == 1),
        round: slots,
        relayed: false,
    }
}

/// The proposal process queues make for `slot`: queues cycle, and an
/// empty queue proposes the empty payload (a no-op slot filler).
pub fn queue_proposal(queue: &[Payload], slot: u64) -> Payload {
    if queue.is_empty() {
        Payload::empty()
    } else {
        queue[(slot as usize) % queue.len()]
    }
}

/// Runs a whole replicated log on `env` (blocking reference): `slots`
/// multivalued instances in order, proposing from `queue` (cycled), and
/// reports the [`log_body_decision`]. Every decided slot is emitted as
/// [`ObsEvent::MvDecided`], which is how log collectors reconstruct the
/// committed sequence.
///
/// With `traffic`, the pre-seeded queue is replaced by a live
/// [`crate::TrafficState`]: each slot boundary pulls the arrivals due by
/// [`Env::now`] into the bounded proposer queue and proposes a batch
/// descriptor ([`crate::traffic::encode_batch`]); a slot committing this
/// replica's own descriptor pops the covered commands and records their
/// submit→commit latencies. The accumulated service statistics are
/// reported through [`Env::service_stats`] exactly once per body
/// incarnation, at the terminal point — decided *or* halted — mirroring
/// [`crate::sm::LogSm`] step for step.
///
/// # Errors
///
/// Propagates the reduction's [`Halt`].
pub fn run_replicated_log(
    env: &mut dyn Env,
    queue: &[Payload],
    slots: u64,
    algorithm: Algorithm,
    cfg: &ProtocolConfig,
    traffic: Option<&crate::TrafficSpec>,
) -> Result<Decision, Halt> {
    let mut mailbox = Mailbox::new();
    let mut digest = LogDigest::new();
    // Processes that do not serve traffic ([`Env::serves_traffic`] —
    // churn-planned replicas) propose empty filler slots instead: their
    // clock-dependent batches could not be re-broadcast identically by a
    // restarted incarnation, which the reduction's agreement requires.
    let mut state = traffic.filter(|_| env.serves_traffic()).map(|spec| {
        let n = env.partition().n() as u32;
        crate::TrafficState::new(spec, env.seed(), env.me().index() as u32, n)
    });
    let result = (|| {
        for slot in 0..slots {
            let proposal = match &mut state {
                Some(t) => {
                    t.pull(env.now());
                    t.next_batch()
                }
                None => queue_proposal(queue, slot),
            };
            let mv = multivalued_propose(env, &mut mailbox, slot, proposal, algorithm, cfg)?;
            if let Some(t) = &mut state {
                t.on_committed(&mv.payload, env.now());
            }
            digest.absorb(&mv);
        }
        Ok(log_body_decision(&digest, slots))
    })();
    if let Some(t) = &state {
        env.service_stats(t.stats());
    }
    result
}

/// Runs one multivalued instance on `env` (blocking reference) and
/// reports the [`mv_body_decision`].
///
/// # Errors
///
/// Propagates the reduction's [`Halt`].
pub fn run_multivalued_body(
    env: &mut dyn Env,
    proposal: Payload,
    algorithm: Algorithm,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    let mut mailbox = Mailbox::new();
    let mv = multivalued_propose(env, &mut mailbox, 0, proposal, algorithm, cfg)?;
    Ok(mv_body_decision(&mv))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_leaves_room_for_a_million_stages() {
        const { assert!(INSTANCE_STRIDE >= 1 << 20) }
    }

    #[test]
    fn log_digest_is_order_sensitive() {
        let a = MvDecision {
            payload: Payload::from_bytes(b"a").unwrap(),
            proposer: ProcessId(0),
            stages: 1,
        };
        let b = MvDecision {
            payload: Payload::from_bytes(b"b").unwrap(),
            proposer: ProcessId(1),
            stages: 2,
        };
        let mut ab = LogDigest::new();
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = LogDigest::new();
        ba.absorb(&b);
        ba.absorb(&a);
        assert_ne!(ab.value(), ba.value());
        assert_ne!(ab.value(), LogDigest::new().value());
        // Stage counts do not enter the digest: replicas may reach the
        // same slot in different stages only via relayed decides, but the
        // *decided pair* is what agreement is about.
        let b_fast = MvDecision { stages: 7, ..b };
        let mut ab2 = LogDigest::new();
        ab2.absorb(&a);
        ab2.absorb(&b_fast);
        assert_eq!(ab.value(), ab2.value());
    }

    #[test]
    fn queue_proposals_cycle_and_default_to_empty() {
        let q = [
            Payload::from_bytes(b"x").unwrap(),
            Payload::from_bytes(b"y").unwrap(),
        ];
        assert_eq!(queue_proposal(&q, 0).as_bytes(), b"x");
        assert_eq!(queue_proposal(&q, 1).as_bytes(), b"y");
        assert_eq!(queue_proposal(&q, 2).as_bytes(), b"x");
        assert!(queue_proposal(&[], 5).is_empty());
    }

    #[test]
    fn proposal_store_relays_once_per_proposer() {
        let me = ProcessId(0);
        let mine = Payload::from_bytes(b"mine").unwrap();
        let mut store = ProposalStore::new(3, 0, me, mine);
        assert!(store.holds(me));
        // Own proposal: the initial broadcast already counts as the relay.
        assert_eq!(store.relay_due(me), None);
        // Unknown proposer: nothing to relay.
        assert_eq!(store.relay_due(ProcessId(1)), None);
        // Absorb p2's proposal via the mailbox stash.
        let mut mb = Mailbox::new();
        mb.stash_app(crate::AppMsg {
            from: ProcessId(2),
            instance: 0,
            seq: 1,
            payload: Payload::from_bytes(b"other").unwrap(),
        });
        store.absorb(&mut mb);
        assert!(store.holds(ProcessId(1)));
        let relay = store.relay_due(ProcessId(1)).expect("first use relays");
        assert!(matches!(relay, MsgKind::App { seq: 1, .. }));
        assert_eq!(store.relay_due(ProcessId(1)), None, "only once");
    }
}
