//! Algorithm 3: common-coin binary consensus for the hybrid model.
//!
//! A single-phase-per-round extension of the crash-fault version of the
//! oracle-based protocol of Friedman, Mostéfaoui & Raynal [10] (as
//! simplified in Raynal's 2018 textbook [22]). Once every correct process
//! holds the same estimate `v`, the expected number of extra rounds until
//! the common coin equals `v` — and everyone decides — is 2.
//!
//! The code is a line-for-line transcription of the paper's Algorithm 3;
//! comments cite its line numbers.

use crate::local_coin_alg::relay_decide;
use crate::pattern::{msg_exchange, Exchange};
use crate::{Bit, Decision, Env, Halt, Mailbox, MsgKind, ObsEvent, Phase, ProtocolConfig};
use ofa_sharedmem::{CodableValue, Slot};

/// The slot-phase index used for Algorithm 3's single per-round consensus
/// object `CONS_x[r]` (distinct from Algorithm 2's phases 1 and 2).
const SINGLE_PHASE_SLOT: u8 = 0;

/// Runs `propose(v_i)` of Algorithm 3 on behalf of the calling process
/// (single-shot: protocol instance 0, fresh mailbox).
///
/// Returns the [`Decision`] or the [`Halt`] that interrupted the process.
///
/// # Errors
///
/// * `Halt::Crashed` — the substrate injected a crash,
/// * `Halt::Stopped` — round budget exhausted or the process can never be
///   unblocked (the §III-B termination predicate fails).
pub fn common_coin_hybrid(
    env: &mut dyn Env,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    let mut mailbox = Mailbox::new();
    common_coin_hybrid_instance(env, &mut mailbox, 0, proposal, cfg)
}

/// Instance-aware form of [`common_coin_hybrid`]; see
/// [`crate::ben_or_hybrid_instance`] for the multi-instance contract.
///
/// The common coin is queried at a per-instance offset of the round index
/// so distinct instances read independent bits.
///
/// # Errors
///
/// Same contract as [`common_coin_hybrid`].
pub fn common_coin_hybrid_instance(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    instance: u64,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    let result = common_coin_hybrid_inner(env, mailbox, instance, proposal, cfg);
    // Mailbox hygiene report (how many stale buffered messages this
    // instance discarded), folded into the substrate's counters.
    env.observe(ObsEvent::MailboxStats {
        stale_dropped: mailbox.take_stale_delta(),
    });
    result
}

fn common_coin_hybrid_inner(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    instance: u64,
    proposal: Bit,
    cfg: &ProtocolConfig,
) -> Result<Decision, Halt> {
    env.observe(ObsEvent::Propose {
        instance,
        value: proposal,
    });
    let partition = env.partition().clone();

    // (1) est_i <- v_i; r_i <- 0
    let mut est = proposal;
    let mut round: u64 = 0;

    // (2) loop forever
    loop {
        // (3) r_i <- r_i + 1
        round += 1;
        if let Some(max) = cfg.max_rounds {
            if round > max {
                return Err(Halt::Stopped);
            }
        }
        env.observe(ObsEvent::RoundStart { instance, round });

        // (4) est_i <- CONS_x[r].propose(est_i)
        if cfg.cluster_preagree {
            let slot = Slot::in_instance(instance, round, SINGLE_PHASE_SLOT);
            let decided = env.cluster_propose(slot, est.encode())?;
            env.observe(ObsEvent::ClusterAgreed { slot, decided });
            est = Bit::decode(decided);
        }

        // (5) msg_exchange(r, est_i) — the pattern with (a, b) = (0, 1).
        let sup = match msg_exchange(
            env,
            mailbox,
            &partition,
            instance,
            round,
            Phase::One,
            Some(est),
            cfg.amplify,
        )? {
            Exchange::DecideSeen(v) => return relay_decide(env, instance, round, v),
            Exchange::Completed(sup) => sup,
        };

        // (6) s_i <- common_coin(); distinct instances read disjoint
        // positions of the common bit sequence.
        let coin_index = instance.wrapping_mul(0x1_0000_0000).wrapping_add(round);
        let coin = env.common_coin(coin_index)?;
        env.observe(ObsEvent::Coin {
            round,
            common: true,
            value: coin,
        });

        // (7) if some v is supported by > n/2 processes
        if let Some(v) = sup.majority_value() {
            // (8) est_i <- v
            est = v;
            // (9) if s_i = v: broadcast DECIDE(v); return v
            if coin == v {
                env.observe(ObsEvent::Deciding {
                    instance,
                    round,
                    value: v,
                    relayed: false,
                });
                env.broadcast(MsgKind::Decide { instance, value: v })?;
                return Ok(Decision {
                    value: v,
                    round,
                    relayed: false,
                });
            }
        } else {
            // (10) est_i <- s_i
            est = coin;
        }
        // (11-12) end if; continue the loop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Msg;
    use ofa_topology::{Partition, ProcessId};
    use std::collections::VecDeque;

    /// n = 1 closed universe with a scripted common coin (instance 0 reads
    /// rounds 1, 2, … directly).
    struct Solo {
        part: Partition,
        queue: VecDeque<Msg>,
        cluster: std::collections::HashMap<Slot, u64>,
        coin_script: Vec<Bit>,
    }

    impl Solo {
        fn new(coin_script: Vec<Bit>) -> Self {
            Solo {
                part: Partition::single_cluster(1),
                queue: VecDeque::new(),
                cluster: Default::default(),
                coin_script,
            }
        }
    }

    impl Env for Solo {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
            if to == self.me() {
                self.queue.push_back(Msg {
                    from: self.me(),
                    kind: msg,
                });
            }
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.queue.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
            Ok(*self.cluster.entry(slot).or_insert(enc))
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, round: u64) -> Result<Bit, Halt> {
            // Instance 0 keeps round untouched; mask the offset trick.
            let r = (round & 0xFFFF_FFFF).max(1);
            Ok(self
                .coin_script
                .get((r - 1) as usize)
                .copied()
                .unwrap_or(*self.coin_script.last().unwrap_or(&Bit::Zero)))
        }
    }

    #[test]
    fn decides_in_round_one_when_coin_matches() {
        let mut env = Solo::new(vec![Bit::One]);
        let d = common_coin_hybrid(&mut env, Bit::One, &ProtocolConfig::paper()).unwrap();
        assert_eq!(d.value, Bit::One);
        assert_eq!(d.round, 1);
        assert!(!d.relayed);
    }

    #[test]
    fn waits_until_coin_matches_majority_value() {
        // Proposal 1 is majority-supported every round (n = 1), but the
        // coin reads 0, 0, 1 — decision must come in round 3 and the
        // estimate must never drift from 1 (validity + the line-8 rule).
        let mut env = Solo::new(vec![Bit::Zero, Bit::Zero, Bit::One]);
        let d = common_coin_hybrid(&mut env, Bit::One, &ProtocolConfig::paper()).unwrap();
        assert_eq!(d.value, Bit::One);
        assert_eq!(d.round, 3);
    }

    #[test]
    fn round_budget_stops_cleanly() {
        // Coin perpetually opposite to the only proposal.
        let mut env = Solo::new(vec![Bit::Zero]);
        let cfg = ProtocolConfig::paper().with_max_rounds(5);
        let out = common_coin_hybrid(&mut env, Bit::One, &cfg);
        assert_eq!(out, Err(Halt::Stopped));
    }

    #[test]
    fn pure_message_passing_preset_works_solo() {
        let mut env = Solo::new(vec![Bit::Zero]);
        let cfg = ProtocolConfig::pure_message_passing();
        let d = common_coin_hybrid(&mut env, Bit::Zero, &cfg).unwrap();
        assert_eq!(d.value, Bit::Zero);
        assert_eq!(d.round, 1);
    }

    #[test]
    fn sequential_instances_decide_independently() {
        let mut env = Solo::new(vec![Bit::One, Bit::Zero]);
        let mut mb = Mailbox::new();
        let d0 =
            common_coin_hybrid_instance(&mut env, &mut mb, 0, Bit::One, &ProtocolConfig::paper())
                .unwrap();
        assert_eq!(d0.value, Bit::One);
        let d1 =
            common_coin_hybrid_instance(&mut env, &mut mb, 1, Bit::Zero, &ProtocolConfig::paper())
                .unwrap();
        assert_eq!(d1.value, Bit::Zero);
    }
}
