//! Pure message-passing baselines.
//!
//! The paper's §III-B remark: "If each cluster contains a single process
//! … the algorithm then boils down to Ben-Or's algorithm". The baselines
//! below make that degeneration explicit: the same protocol skeletons with
//! cluster pre-agreement and amplification switched off, so supporters
//! reduce to a simple counting of individual senders. They serve as the
//! comparison points for experiments E2, E5, and E7.
//!
//! Run them either on a [`ofa_topology::Partition::singletons`] partition
//! (the honest `m = n` model) or on a clustered partition whose memories
//! they simply never use (for apples-to-apples fault-tolerance
//! comparisons).

use crate::{ben_or_hybrid, common_coin_hybrid, Bit, Decision, Env, Halt, ProtocolConfig};

/// Classic Ben-Or randomized binary consensus (PODC 1983) — the
/// message-passing ancestor of Algorithm 2.
///
/// Requires a majority of correct processes to terminate; indulgent
/// otherwise.
///
/// # Errors
///
/// Same contract as [`ben_or_hybrid`].
pub fn ben_or_classic(
    env: &mut dyn Env,
    proposal: Bit,
    max_rounds: Option<u64>,
) -> Result<Decision, Halt> {
    let cfg = ProtocolConfig {
        max_rounds,
        ..ProtocolConfig::pure_message_passing()
    };
    ben_or_hybrid(env, proposal, &cfg)
}

/// Classic common-coin randomized binary consensus (the crash-fault
/// protocol of \[22\], itself adapted from Friedman–Mostéfaoui–Raynal \[10\])
/// — the message-passing ancestor of Algorithm 3.
///
/// # Errors
///
/// Same contract as [`common_coin_hybrid`].
pub fn common_coin_classic(
    env: &mut dyn Env,
    proposal: Bit,
    max_rounds: Option<u64>,
) -> Result<Decision, Halt> {
    let cfg = ProtocolConfig {
        max_rounds,
        ..ProtocolConfig::pure_message_passing()
    };
    common_coin_hybrid(env, proposal, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Msg, MsgKind};
    use ofa_sharedmem::Slot;
    use ofa_topology::{Partition, ProcessId};
    use std::collections::VecDeque;

    struct Solo {
        part: Partition,
        queue: VecDeque<Msg>,
        cluster_calls: u32,
    }

    impl Solo {
        fn new() -> Self {
            Solo {
                part: Partition::singletons(1),
                queue: VecDeque::new(),
                cluster_calls: 0,
            }
        }
    }

    impl Env for Solo {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
            if to == self.me() {
                self.queue.push_back(Msg {
                    from: self.me(),
                    kind: msg,
                });
            }
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.queue.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
            self.cluster_calls += 1;
            Ok(enc)
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
    }

    #[test]
    fn baselines_never_touch_cluster_objects() {
        let mut env = Solo::new();
        let d = ben_or_classic(&mut env, Bit::One, Some(16)).unwrap();
        assert_eq!(d.value, Bit::One);
        assert_eq!(env.cluster_calls, 0, "baseline must not use shared memory");

        let mut env = Solo::new();
        let d = common_coin_classic(&mut env, Bit::Zero, Some(16)).unwrap();
        assert_eq!(d.value, Bit::Zero);
        assert_eq!(env.cluster_calls, 0);
    }
}
