//! Protocol configuration and decision records.

use crate::Bit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Switches selecting between the paper's algorithm, its pure
/// message-passing degenerations, and the E9 ablation.
///
/// | preset | cluster pre-agreement | amplification | models |
/// |---|---|---|---|
/// | [`ProtocolConfig::paper`] | on | on | Algorithms 2/3 as published |
/// | [`ProtocolConfig::pure_message_passing`] | off | off | Ben-Or \[4\] / the common-coin protocol of \[22\] (the paper's §III-B remark: with singleton clusters the consensus objects are useless and supporters reduce to counting) |
/// | [`ProtocolConfig::ablation_no_preagree`] | off | **on** | E9: amplification without its soundness precondition — WA1 can break |
///
/// # Examples
///
/// ```
/// use ofa_core::ProtocolConfig;
///
/// let cfg = ProtocolConfig::paper().with_max_rounds(64);
/// assert!(cfg.cluster_preagree && cfg.amplify);
/// assert_eq!(cfg.max_rounds, Some(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Run the intra-cluster consensus object before each exchange
    /// (lines 4/8 of Algorithm 2, line 4 of Algorithm 3).
    pub cluster_preagree: bool,
    /// Apply "one for all" cluster amplification when counting supporters
    /// (line 6 of Algorithm 1).
    pub amplify: bool,
    /// Abort with [`crate::Halt::Stopped`] after this many rounds
    /// (`None` = unbounded, as in the paper).
    pub max_rounds: Option<u64>,
}

impl ProtocolConfig {
    /// The algorithms exactly as published.
    pub fn paper() -> Self {
        ProtocolConfig {
            cluster_preagree: true,
            amplify: true,
            max_rounds: None,
        }
    }

    /// The pure message-passing degeneration (classic Ben-Or / classic
    /// common-coin consensus): ignores clusters entirely.
    pub fn pure_message_passing() -> Self {
        ProtocolConfig {
            cluster_preagree: false,
            amplify: false,
            max_rounds: None,
        }
    }

    /// E9 ablation: keep amplification but skip the cluster consensus that
    /// makes it sound. **Unsafe by design** — used to demonstrate that the
    /// paper's WA1 invariant genuinely depends on intra-cluster agreement.
    pub fn ablation_no_preagree() -> Self {
        ProtocolConfig {
            cluster_preagree: false,
            amplify: true,
            max_rounds: None,
        }
    }

    /// Bounds the number of rounds (returns a modified copy).
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }
}

impl Default for ProtocolConfig {
    /// Defaults to the paper's algorithm.
    fn default() -> Self {
        Self::paper()
    }
}

/// A successful consensus decision at one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decision {
    /// The decided value.
    pub value: Bit,
    /// The round in which this process decided (its own round counter;
    /// processes may decide in different rounds).
    pub round: u64,
    /// `true` if the decision was adopted from a received `DECIDE` message
    /// (line 17), `false` if reached directly (line 12 / 9).
    pub relayed: bool,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decided {} in round {}{}",
            self.value,
            self.round,
            if self.relayed { " (relayed)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = ProtocolConfig::paper();
        assert!(p.cluster_preagree && p.amplify && p.max_rounds.is_none());
        let mp = ProtocolConfig::pure_message_passing();
        assert!(!mp.cluster_preagree && !mp.amplify);
        let ab = ProtocolConfig::ablation_no_preagree();
        assert!(!ab.cluster_preagree && ab.amplify);
        assert_eq!(ProtocolConfig::default(), ProtocolConfig::paper());
    }

    #[test]
    fn decision_display() {
        let d = Decision {
            value: Bit::One,
            round: 2,
            relayed: true,
        };
        assert_eq!(d.to_string(), "decided 1 in round 2 (relayed)");
    }
}
