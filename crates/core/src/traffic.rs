//! Client traffic for the replicated-log workload: deterministic arrival
//! processes, proposer-side bounded queues with batching/backpressure,
//! and the per-replica service accounting behind
//! [`ofa_metrics::ServiceStats`].
//!
//! Every arrival is a pure PRF of `(seed, client, k)` — no scheduler
//! events, no extra randomness streams. A replica *pulls* due arrivals at
//! each slot boundary by comparing the PRF-derived arrival times against
//! its own virtual clock. Per-process clocks are bit-identical across all
//! three engines (the equivalence corpus pins them), so the traffic a
//! replica sees — and every latency it records — is automatically
//! engine-identical for any worker count, with zero changes to the
//! schedulers or the parallel engine's epoch barriers.

use crate::payload::Payload;
use ofa_metrics::ServiceStats;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Domain separator for the traffic PRF (keeps arrival randomness
/// disjoint from delay, coin, and rejoin streams).
const TRAFFIC_DOMAIN_SEP: u64 = 0xC11E_27A1_5EED_0F0A;

/// First byte of a batch-descriptor payload. Deliberately invalid UTF-8,
/// so a descriptor can never collide with (or decode as) a KV
/// [`Command`](https://docs.rs/ofa-smr)-encoded payload.
pub const BATCH_MAGIC: u8 = 0xB7;

/// How client commands arrive at a replica over virtual time.
///
/// Open-loop profiles (`Periodic`, `Poisson`, `Bursty`) generate arrival
/// `k` of client `c` at a time that is a pure function of
/// `(seed, c, k)` — clients keep submitting regardless of service speed,
/// which is what exercises backpressure. `ClosedLoop` clients keep at
/// most one command in flight and think for a PRF-drawn pause between a
/// commit and their next submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// One arrival every `period` ticks, client `c` offset by
    /// `phase + c % period` (deterministic stagger).
    Periodic {
        /// Ticks between consecutive arrivals of one client (≥ 1).
        period: u64,
        /// Offset of every client's first arrival.
        phase: u64,
    },
    /// Exponential-ish inter-arrival gaps with the given mean, drawn from
    /// the PRF via a fixed-point `-ln U` approximation (integer-only).
    Poisson {
        /// Mean inter-arrival gap per client, in ticks (≥ 1).
        mean_gap: u64,
    },
    /// Every client submits `burst` commands at once every `period`
    /// ticks, starting at `phase` — the adversarial profile for queue
    /// caps and shedding.
    Bursty {
        /// Commands per burst per client (≥ 1).
        burst: u64,
        /// Ticks between bursts (≥ 1).
        period: u64,
        /// Time of the first burst.
        phase: u64,
    },
    /// At most one in-flight command per client; after each commit the
    /// client thinks for a PRF-uniform pause in `[think_lo, think_hi]`.
    ClosedLoop {
        /// Minimum think time in ticks.
        think_lo: u64,
        /// Maximum think time in ticks (≥ `think_lo`).
        think_hi: u64,
    },
}

impl ArrivalProcess {
    /// Panics if a parameter would stall the process (zero periods) or
    /// is inconsistent (`think_hi < think_lo`).
    pub fn assert_valid(&self) {
        match *self {
            ArrivalProcess::Periodic { period, .. } => {
                assert!(period >= 1, "Periodic arrivals need period >= 1");
            }
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(mean_gap >= 1, "Poisson arrivals need mean_gap >= 1");
            }
            ArrivalProcess::Bursty { burst, period, .. } => {
                assert!(burst >= 1, "Bursty arrivals need burst >= 1");
                assert!(period >= 1, "Bursty arrivals need period >= 1");
            }
            ArrivalProcess::ClosedLoop { think_lo, think_hi } => {
                assert!(
                    think_hi >= think_lo,
                    "ClosedLoop think_hi must be >= think_lo"
                );
            }
        }
    }
}

impl Serialize for ArrivalProcess {
    fn to_value(&self) -> serde::Value {
        let entry = |tag: &str, fields: Vec<(&str, u64)>| {
            serde::Value::Map(vec![(
                tag.to_string(),
                serde::Value::Map(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), serde::Value::U64(v)))
                        .collect(),
                ),
            )])
        };
        match *self {
            ArrivalProcess::Periodic { period, phase } => {
                entry("Periodic", vec![("period", period), ("phase", phase)])
            }
            ArrivalProcess::Poisson { mean_gap } => entry("Poisson", vec![("mean_gap", mean_gap)]),
            ArrivalProcess::Bursty {
                burst,
                period,
                phase,
            } => entry(
                "Bursty",
                vec![("burst", burst), ("period", period), ("phase", phase)],
            ),
            ArrivalProcess::ClosedLoop { think_lo, think_hi } => entry(
                "ClosedLoop",
                vec![("think_lo", think_lo), ("think_hi", think_hi)],
            ),
        }
    }
}

impl Deserialize for ArrivalProcess {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let num = |m: &serde::Value, name: &str| -> Result<u64, serde::Error> {
            Deserialize::from_value(m.get(name).ok_or_else(|| {
                serde::Error::msg(format!("ArrivalProcess: missing field {name:?}"))
            })?)
        };
        if let Some(m) = v.get("Periodic") {
            return Ok(ArrivalProcess::Periodic {
                period: num(m, "period")?,
                phase: num(m, "phase")?,
            });
        }
        if let Some(m) = v.get("Poisson") {
            return Ok(ArrivalProcess::Poisson {
                mean_gap: num(m, "mean_gap")?,
            });
        }
        if let Some(m) = v.get("Bursty") {
            return Ok(ArrivalProcess::Bursty {
                burst: num(m, "burst")?,
                period: num(m, "period")?,
                phase: num(m, "phase")?,
            });
        }
        if let Some(m) = v.get("ClosedLoop") {
            return Ok(ArrivalProcess::ClosedLoop {
                think_lo: num(m, "think_lo")?,
                think_hi: num(m, "think_hi")?,
            });
        }
        Err(serde::Error::msg(
            "ArrivalProcess: expected Periodic | Poisson | Bursty | ClosedLoop",
        ))
    }
}

/// The serializable client-traffic axis of a replicated-log scenario:
/// who arrives when ([`ArrivalProcess`]), and how the proposer batches
/// and sheds (`queue_cap`, `batch_min`, `batch_max`).
///
/// Client `c` (of `clients` total) submits to replica `c % n`. A
/// replica's bounded queue holds at most `queue_cap` pending commands;
/// open-loop arrivals beyond that are shed and counted. At each slot
/// boundary the replica proposes a batch of up to `batch_max` pending
/// commands — or an empty filler payload if fewer than `batch_min` are
/// pending (the slot boundary is the virtual-time analogue of a
/// fill-or-timeout batching deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// The arrival process shared by all clients.
    pub arrival: ArrivalProcess,
    /// Total number of clients, attached round-robin to replicas.
    pub clients: u64,
    /// Bounded proposer-queue depth (≥ 1); open-loop overflow is shed.
    pub queue_cap: u32,
    /// Largest batch a slot proposal may carry (≥ 1).
    pub batch_max: u32,
    /// Smallest pending count worth proposing; below it the slot
    /// proposes an empty filler payload (≥ 1 effective).
    pub batch_min: u32,
}

impl TrafficSpec {
    /// Panics on parameters that would stall or misbehave.
    pub fn assert_valid(&self) {
        self.arrival.assert_valid();
        assert!(self.clients >= 1, "traffic needs at least one client");
        assert!(self.queue_cap >= 1, "traffic needs queue_cap >= 1");
        assert!(self.batch_max >= 1, "traffic needs batch_max >= 1");
        assert!(
            self.batch_min <= self.batch_max,
            "batch_min must be <= batch_max"
        );
    }
}

impl Serialize for TrafficSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("arrival".to_string(), self.arrival.to_value()),
            ("clients".to_string(), self.clients.to_value()),
            ("queue_cap".to_string(), self.queue_cap.to_value()),
            ("batch_max".to_string(), self.batch_max.to_value()),
            ("batch_min".to_string(), self.batch_min.to_value()),
        ])
    }
}

impl Deserialize for TrafficSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("TrafficSpec: missing field {name:?}")))
        };
        Ok(TrafficSpec {
            arrival: Deserialize::from_value(field("arrival")?)?,
            clients: Deserialize::from_value(field("clients")?)?,
            queue_cap: Deserialize::from_value(field("queue_cap")?)?,
            batch_max: Deserialize::from_value(field("batch_max")?)?,
            batch_min: Deserialize::from_value(field("batch_min")?)?,
        })
    }
}

/// splitmix64 finalizer — the same mixing quality as the delay PRF.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The traffic PRF: one uniform 64-bit word per `(seed, client, k)`.
pub fn traffic_word(seed: u64, client: u64, k: u64) -> u64 {
    mix(mix(mix(seed ^ TRAFFIC_DOMAIN_SEP) ^ client) ^ k)
}

/// Maps a PRF word to a uniform draw in `[lo, hi]` (inclusive).
fn uniform_in(word: u64, lo: u64, hi: u64) -> u64 {
    let span = hi - lo + 1;
    lo + ((word as u128 * span as u128) >> 64) as u64
}

/// `-log2(word / 2⁶⁴)` in Q16 fixed point, via a linear-in-mantissa
/// approximation — monotone, integer-only, and exact at powers of two.
fn neg_log2_q16(word: u64) -> u64 {
    let u = word | 1;
    let lz = u.leading_zeros() as u64;
    let norm = u << lz; // top bit set
    let frac = (norm << 1) >> 48; // top 16 fractional bits
    ((lz + 1) << 16).saturating_sub(frac)
}

/// An exponential-ish gap with the given mean: `mean · (-ln U)` in
/// integer fixed point (`45426 ≈ ln 2 · 2¹⁶`), clamped to ≥ 1 so a
/// client can never stall.
fn exp_gap(word: u64, mean: u64) -> u64 {
    let q = (mean as u128 * neg_log2_q16(word) as u128 * 45_426) >> 32;
    (q as u64).max(1)
}

/// One client's arrival cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClientCursor {
    /// Global client id (the PRF key).
    id: u64,
    /// Next arrival index `k`.
    next_k: u64,
    /// Virtual time of arrival `next_k`.
    next_at: u64,
    /// Closed loop only: `true` while a command is in flight.
    waiting: bool,
}

/// One pending command in a proposer queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingCmd {
    /// When the client submitted it (arrival time, ≤ enqueue time).
    submitted_at: u64,
    /// Index into the replica's client cursor vector.
    client: u32,
}

/// A replica's live traffic state: its clients' arrival cursors, the
/// bounded pending queue, and the accumulated [`ServiceStats`].
///
/// Pure pull model: [`TrafficState::pull`] materializes every arrival
/// due at or before `now`, [`TrafficState::next_batch`] encodes the next
/// slot proposal, and [`TrafficState::on_committed`] pops and accounts a
/// decided batch. None of these touch the environment, so the replica's
/// send/receive/coin streams are byte-identical with and without
/// metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficState {
    spec: TrafficSpec,
    seed: u64,
    me: u32,
    clients: Vec<ClientCursor>,
    pending: VecDeque<PendingCmd>,
    /// Total commands this replica has committed (the next batch's base
    /// sequence number).
    popped: u64,
    stats: ServiceStats,
}

impl TrafficState {
    /// Fresh state for replica `me` of `n` under `spec`: client `c`
    /// attaches here iff `c % n == me`.
    pub fn new(spec: &TrafficSpec, seed: u64, me: u32, n: u32) -> TrafficState {
        let clients = (0..spec.clients)
            .filter(|c| c % n as u64 == me as u64)
            .map(|id| ClientCursor {
                id,
                next_k: 0,
                next_at: first_arrival(&spec.arrival, seed, id),
                waiting: false,
            })
            .collect();
        TrafficState {
            spec: *spec,
            seed,
            me,
            clients,
            pending: VecDeque::new(),
            popped: 0,
            stats: ServiceStats::new(),
        }
    }

    /// Materializes every arrival due at or before `now` into the
    /// bounded queue, shedding (and counting) open-loop overflow.
    pub fn pull(&mut self, now: u64) {
        let cap = self.spec.queue_cap as usize;
        let closed = matches!(self.spec.arrival, ArrivalProcess::ClosedLoop { .. });
        for ci in 0..self.clients.len() {
            if closed {
                let c = self.clients[ci];
                // At most one in flight; a full queue just delays the
                // submission to a later pull (closed-loop clients wait,
                // they do not shed).
                if !c.waiting && c.next_at <= now && self.pending.len() < cap {
                    self.pending.push_back(PendingCmd {
                        submitted_at: c.next_at,
                        client: ci as u32,
                    });
                    self.stats.submitted += 1;
                    self.clients[ci].waiting = true;
                }
            } else {
                while self.clients[ci].next_at <= now {
                    let at = self.clients[ci].next_at;
                    if self.pending.len() < cap {
                        self.pending.push_back(PendingCmd {
                            submitted_at: at,
                            client: ci as u32,
                        });
                        self.stats.submitted += 1;
                    } else {
                        self.stats.shed += 1;
                    }
                    let c = &mut self.clients[ci];
                    c.next_k += 1;
                    c.next_at = next_arrival(&self.spec.arrival, self.seed, c.id, c.next_k, at);
                }
            }
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.pending.len() as u64);
    }

    /// The next slot proposal: a batch descriptor covering up to
    /// `batch_max` pending commands, or an empty filler payload when
    /// fewer than `batch_min` are pending.
    pub fn next_batch(&self) -> Payload {
        let avail = self.pending.len() as u32;
        if avail < self.spec.batch_min.max(1) {
            return Payload::empty();
        }
        encode_batch(self.me, self.popped, avail.min(self.spec.batch_max))
    }

    /// Accounts a decided slot payload: if it is this replica's own
    /// batch descriptor (matching proposer *and* base sequence number),
    /// pops the covered commands, records their submit→commit latencies
    /// at `now`, and releases closed-loop clients. Foreign payloads and
    /// stale descriptors are ignored.
    pub fn on_committed(&mut self, payload: &Payload, now: u64) {
        let Some((proposer, base, count)) = decode_batch(payload) else {
            return;
        };
        if proposer != self.me || base != self.popped {
            return;
        }
        let take = (count as usize).min(self.pending.len());
        for _ in 0..take {
            let cmd = self.pending.pop_front().expect("take <= len");
            self.stats
                .latency
                .record(now.saturating_sub(cmd.submitted_at));
            self.stats.committed += 1;
            if let ArrivalProcess::ClosedLoop { think_lo, think_hi } = self.spec.arrival {
                let c = &mut self.clients[cmd.client as usize];
                c.waiting = false;
                c.next_k += 1;
                let think = uniform_in(traffic_word(self.seed, c.id, c.next_k), think_lo, think_hi);
                c.next_at = now + think;
            }
        }
        if take > 0 {
            self.popped += take as u64;
            self.stats.batches += 1;
            self.stats.last_commit_at = self.stats.last_commit_at.max(now);
        }
    }

    /// The accumulated service statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Current pending-queue depth (the backpressure gauge).
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Serializes the live state (cursors, queue, accounting) for a
    /// checkpoint. The spec, seed, and identity are scenario inputs and
    /// are re-supplied on restore.
    pub fn snapshot(&self) -> serde::Value {
        let clients: Vec<(u64, u64, u64, bool)> = self
            .clients
            .iter()
            .map(|c| (c.id, c.next_k, c.next_at, c.waiting))
            .collect();
        let pending: Vec<(u64, u32)> = self
            .pending
            .iter()
            .map(|p| (p.submitted_at, p.client))
            .collect();
        serde::Value::Map(vec![
            ("clients".to_string(), clients.to_value()),
            ("pending".to_string(), pending.to_value()),
            ("popped".to_string(), self.popped.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }

    /// Restores a [`TrafficState::snapshot`] under the same scenario
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns a decode error on a malformed snapshot.
    pub fn from_snapshot(
        spec: &TrafficSpec,
        seed: u64,
        me: u32,
        v: &serde::Value,
    ) -> Result<TrafficState, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("TrafficState: missing field {name:?}")))
        };
        let clients: Vec<(u64, u64, u64, bool)> = Deserialize::from_value(field("clients")?)?;
        let pending: Vec<(u64, u32)> = Deserialize::from_value(field("pending")?)?;
        Ok(TrafficState {
            spec: *spec,
            seed,
            me,
            clients: clients
                .into_iter()
                .map(|(id, next_k, next_at, waiting)| ClientCursor {
                    id,
                    next_k,
                    next_at,
                    waiting,
                })
                .collect(),
            pending: pending
                .into_iter()
                .map(|(submitted_at, client)| PendingCmd {
                    submitted_at,
                    client,
                })
                .collect(),
            popped: Deserialize::from_value(field("popped")?)?,
            stats: Deserialize::from_value(field("stats")?)?,
        })
    }
}

/// Arrival time of `(client, k = 0)`.
fn first_arrival(arrival: &ArrivalProcess, seed: u64, client: u64) -> u64 {
    match *arrival {
        ArrivalProcess::Periodic { period, phase } => phase + client % period,
        ArrivalProcess::Poisson { mean_gap } => exp_gap(traffic_word(seed, client, 0), mean_gap),
        ArrivalProcess::Bursty { phase, .. } => phase,
        ArrivalProcess::ClosedLoop { think_lo, think_hi } => {
            uniform_in(traffic_word(seed, client, 0), think_lo, think_hi)
        }
    }
}

/// Arrival time of open-loop arrival `k > 0`, given arrival `k - 1`
/// happened at `prev` (closed-loop cursors advance in `on_committed`
/// instead).
fn next_arrival(arrival: &ArrivalProcess, seed: u64, client: u64, k: u64, prev: u64) -> u64 {
    match *arrival {
        ArrivalProcess::Periodic { period, phase } => phase + client % period + k * period,
        ArrivalProcess::Poisson { mean_gap } => {
            prev + exp_gap(traffic_word(seed, client, k), mean_gap)
        }
        ArrivalProcess::Bursty {
            burst,
            period,
            phase,
        } => phase + (k / burst) * period,
        ArrivalProcess::ClosedLoop { .. } => prev,
    }
}

/// Encodes a batch descriptor: magic byte, proposer, base sequence
/// number, and command count — 17 bytes, well inside the payload limit.
pub fn encode_batch(proposer: u32, base: u64, count: u32) -> Payload {
    let mut bytes = [0u8; 17];
    bytes[0] = BATCH_MAGIC;
    bytes[1..5].copy_from_slice(&proposer.to_le_bytes());
    bytes[5..13].copy_from_slice(&base.to_le_bytes());
    bytes[13..17].copy_from_slice(&count.to_le_bytes());
    Payload::from_bytes(&bytes).expect("descriptor fits the payload limit")
}

/// Decodes a batch descriptor back to `(proposer, base, count)`; `None`
/// for anything that is not a descriptor (empty fillers, KV commands).
pub fn decode_batch(payload: &Payload) -> Option<(u32, u64, u32)> {
    let b = payload.as_bytes();
    if b.len() != 17 || b[0] != BATCH_MAGIC {
        return None;
    }
    let proposer = u32::from_le_bytes(b[1..5].try_into().ok()?);
    let base = u64::from_le_bytes(b[5..13].try_into().ok()?);
    let count = u32::from_le_bytes(b[13..17].try_into().ok()?);
    Some((proposer, base, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrival: ArrivalProcess) -> TrafficSpec {
        TrafficSpec {
            arrival,
            clients: 3,
            queue_cap: 4,
            batch_max: 2,
            batch_min: 1,
        }
    }

    #[test]
    fn batch_descriptor_round_trips_and_rejects_foreign_payloads() {
        let p = encode_batch(7, 123_456, 42);
        assert_eq!(decode_batch(&p), Some((7, 123_456, 42)));
        assert_eq!(decode_batch(&Payload::empty()), None);
        let text = Payload::from_bytes(b"P\x1fk\x1fv").unwrap();
        assert_eq!(decode_batch(&text), None);
    }

    #[test]
    fn arrivals_are_pure_functions_of_seed_client_k() {
        for arrival in [
            ArrivalProcess::Periodic {
                period: 10,
                phase: 3,
            },
            ArrivalProcess::Poisson { mean_gap: 50 },
            ArrivalProcess::Bursty {
                burst: 4,
                period: 100,
                phase: 7,
            },
        ] {
            let s = spec(arrival);
            let mut a = TrafficState::new(&s, 99, 0, 1);
            let mut b = TrafficState::new(&s, 99, 0, 1);
            a.pull(1_000);
            b.pull(400);
            b.pull(1_000); // pulling in two hops sees the same arrivals
            assert_eq!(
                a.stats().submitted + a.stats().shed,
                b.stats().submitted + b.stats().shed
            );
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn exp_gap_mean_is_roughly_right() {
        let mean = 1_000u64;
        let n = 10_000u64;
        let total: u128 = (0..n)
            .map(|k| exp_gap(traffic_word(1, 0, k), mean) as u128)
            .sum();
        let avg = (total / n as u128) as u64;
        assert!(
            (500..=1_500).contains(&avg),
            "mean gap {avg} too far from {mean}"
        );
    }

    #[test]
    fn open_loop_sheds_beyond_the_cap_and_counts_it() {
        let s = TrafficSpec {
            arrival: ArrivalProcess::Bursty {
                burst: 10,
                period: 1_000,
                phase: 0,
            },
            clients: 1,
            queue_cap: 4,
            batch_max: 8,
            batch_min: 1,
        };
        let mut t = TrafficState::new(&s, 5, 0, 1);
        t.pull(0);
        assert_eq!(t.stats().submitted, 4);
        assert_eq!(t.stats().shed, 6);
        assert_eq!(t.stats().max_queue_depth, 4);
        assert_eq!(t.queue_depth(), 4);
    }

    #[test]
    fn batches_pop_in_order_and_record_latency() {
        let s = TrafficSpec {
            arrival: ArrivalProcess::Periodic {
                period: 10,
                phase: 0,
            },
            clients: 3,
            queue_cap: 100,
            batch_max: 3,
            batch_min: 1,
        };
        let mut t = TrafficState::new(&s, 5, 2, 4);
        // Client 2 (2 % 4 == 2) arrives at 2, 12, 22, 32, 42.
        t.pull(45);
        assert_eq!(t.stats().submitted, 5);
        let batch = t.next_batch();
        assert_eq!(decode_batch(&batch), Some((2, 0, 3)));
        // A foreign commit does nothing…
        t.on_committed(&encode_batch(1, 0, 3), 50);
        assert_eq!(t.stats().committed, 0);
        // …a stale base does nothing…
        t.on_committed(&encode_batch(2, 9, 3), 50);
        assert_eq!(t.stats().committed, 0);
        // …the real one pops three and records latencies 48, 38, 28.
        t.on_committed(&batch, 50);
        assert_eq!(t.stats().committed, 3);
        assert_eq!(t.stats().batches, 1);
        assert_eq!(t.stats().last_commit_at, 50);
        assert_eq!(t.stats().latency.total(), 3);
        assert_eq!(t.queue_depth(), 2);
        assert_eq!(decode_batch(&t.next_batch()), Some((2, 3, 2)));
    }

    #[test]
    fn empty_queue_proposes_the_filler() {
        let s = spec(ArrivalProcess::Periodic {
            period: 5,
            phase: 1_000,
        });
        let mut t = TrafficState::new(&s, 5, 0, 1);
        t.pull(10); // nothing due yet
        assert!(t.next_batch().is_empty());
    }

    #[test]
    fn batch_min_holds_small_batches_back() {
        let s = TrafficSpec {
            arrival: ArrivalProcess::Periodic {
                period: 100,
                phase: 0,
            },
            clients: 1,
            queue_cap: 10,
            batch_max: 8,
            batch_min: 3,
        };
        let mut t = TrafficState::new(&s, 5, 0, 1);
        t.pull(110); // two arrivals (0, 100)
        assert_eq!(t.stats().submitted, 2);
        assert!(t.next_batch().is_empty(), "below batch_min proposes filler");
        t.pull(210); // third arrival
        assert_eq!(decode_batch(&t.next_batch()), Some((0, 0, 3)));
    }

    #[test]
    fn closed_loop_keeps_one_in_flight_and_thinks_after_commit() {
        let s = TrafficSpec {
            arrival: ArrivalProcess::ClosedLoop {
                think_lo: 10,
                think_hi: 20,
            },
            clients: 2,
            queue_cap: 8,
            batch_max: 8,
            batch_min: 1,
        };
        let mut t = TrafficState::new(&s, 42, 0, 1);
        t.pull(1_000);
        assert_eq!(t.stats().submitted, 2, "one in flight per client");
        t.pull(2_000);
        assert_eq!(t.stats().submitted, 2, "still waiting");
        let batch = t.next_batch();
        t.on_committed(&batch, 2_000);
        assert_eq!(t.stats().committed, 2);
        // Next submissions land within think time of the commit.
        for c in &t.clients {
            assert!(!c.waiting);
            assert!(
                (2_010..=2_020).contains(&c.next_at),
                "next_at {}",
                c.next_at
            );
        }
        t.pull(2_020);
        assert_eq!(t.stats().submitted, 4);
    }

    #[test]
    fn snapshot_round_trips_mid_burst() {
        let s = TrafficSpec {
            arrival: ArrivalProcess::Poisson { mean_gap: 30 },
            clients: 4,
            queue_cap: 6,
            batch_max: 2,
            batch_min: 1,
        };
        let mut t = TrafficState::new(&s, 7, 1, 2);
        t.pull(500);
        let batch = t.next_batch();
        t.on_committed(&batch, 520);
        t.pull(700);
        let copy = TrafficState::from_snapshot(&s, 7, 1, &t.snapshot()).expect("round trip");
        assert_eq!(copy, t);
        // The restored state continues identically.
        let mut live = t.clone();
        let mut resumed = copy;
        live.pull(1_200);
        resumed.pull(1_200);
        assert_eq!(live, resumed);
        assert_eq!(live.next_batch(), resumed.next_batch());
    }

    #[test]
    fn spec_serde_round_trips() {
        for arrival in [
            ArrivalProcess::Periodic {
                period: 10,
                phase: 3,
            },
            ArrivalProcess::Poisson { mean_gap: 50 },
            ArrivalProcess::Bursty {
                burst: 4,
                period: 100,
                phase: 7,
            },
            ArrivalProcess::ClosedLoop {
                think_lo: 5,
                think_hi: 25,
            },
        ] {
            let s = TrafficSpec {
                arrival,
                clients: 9,
                queue_cap: 3,
                batch_max: 2,
                batch_min: 2,
            };
            s.assert_valid();
            let copy = TrafficSpec::from_value(&s.to_value()).expect("round trip");
            assert_eq!(copy, s);
        }
    }

    #[test]
    #[should_panic(expected = "batch_min must be <= batch_max")]
    fn invalid_spec_is_rejected() {
        TrafficSpec {
            arrival: ArrivalProcess::Poisson { mean_gap: 1 },
            clients: 1,
            queue_cap: 1,
            batch_max: 1,
            batch_min: 2,
        }
        .assert_valid();
    }
}
