//! Fixed-size application payloads.
//!
//! The consensus wire format stays `Copy` end-to-end (messages are hashed
//! into replay traces and stored in per-link queues by value), so
//! application data rides in a fixed 31-byte inline buffer. That is enough
//! for the command encodings of `ofa-smr`; larger application values can
//! be content-addressed on top (out of scope here).

use std::fmt;

/// Maximum payload length in bytes.
pub const MAX_PAYLOAD: usize = 31;

/// An inline, `Copy` application payload of up to [`MAX_PAYLOAD`] bytes.
///
/// # Examples
///
/// ```
/// use ofa_core::Payload;
///
/// let p = Payload::from_bytes(b"PUT k1 v1").unwrap();
/// assert_eq!(p.as_bytes(), b"PUT k1 v1");
/// assert_eq!(p.len(), 9);
/// assert!(Payload::from_bytes(&[0u8; 40]).is_none()); // too long
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Payload {
    len: u8,
    bytes: [u8; MAX_PAYLOAD],
}

impl Payload {
    /// The empty payload.
    pub fn empty() -> Self {
        Payload {
            len: 0,
            bytes: [0; MAX_PAYLOAD],
        }
    }

    /// Builds a payload from raw bytes; `None` if longer than
    /// [`MAX_PAYLOAD`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() > MAX_PAYLOAD {
            return None;
        }
        let mut bytes = [0u8; MAX_PAYLOAD];
        bytes[..data.len()].copy_from_slice(data);
        Some(Payload {
            len: data.len() as u8,
            bytes,
        })
    }

    /// The payload contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Number of meaningful bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Payload {
    fn default() -> Self {
        Self::empty()
    }
}

/// Payloads serialize as their meaningful bytes (a JSON array), so
/// workloads carrying them — multivalued proposals, replicated-log
/// command queues — round-trip losslessly through scenario corpora.
impl serde::Serialize for Payload {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.as_bytes()
                .iter()
                .map(|b| serde::Value::U64(*b as u64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Payload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = serde::Deserialize::from_value(v)?;
        Payload::from_bytes(&bytes).ok_or_else(|| {
            serde::Error::msg(format!(
                "Payload: {} bytes exceed the {MAX_PAYLOAD}-byte limit",
                bytes.len()
            ))
        })
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) => write!(f, "Payload({s:?})"),
            Err(_) => write!(f, "Payload({:02x?})", self.as_bytes()),
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) => write!(f, "{s}"),
            Err(_) => write!(f, "{:02x?}", self.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_bounds() {
        let p = Payload::from_bytes(b"hello").unwrap();
        assert_eq!(p.as_bytes(), b"hello");
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        let max = Payload::from_bytes(&[7u8; MAX_PAYLOAD]).unwrap();
        assert_eq!(max.len(), MAX_PAYLOAD);
        assert!(Payload::from_bytes(&[7u8; MAX_PAYLOAD + 1]).is_none());
    }

    #[test]
    fn empty_and_default() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default(), Payload::empty());
        assert_eq!(Payload::empty().len(), 0);
    }

    #[test]
    fn equality_includes_length() {
        let a = Payload::from_bytes(b"ab").unwrap();
        let b = Payload::from_bytes(b"ab\0").unwrap();
        assert_ne!(a, b, "trailing NUL is significant");
    }

    #[test]
    fn debug_and_display() {
        let p = Payload::from_bytes(b"x=1").unwrap();
        assert_eq!(format!("{p}"), "x=1");
        assert_eq!(format!("{p:?}"), "Payload(\"x=1\")");
        let bin = Payload::from_bytes(&[0xFF, 0xFE]).unwrap();
        assert!(format!("{bin:?}").contains("ff"));
    }
}
