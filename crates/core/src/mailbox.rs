//! Per-process message buffering, across rounds and protocol instances.
//!
//! Rounds are asynchronous: while `p_i` waits in `(instance, r, ph)` it
//! can receive messages for **future** rounds/phases/instances from faster
//! processes. Those must be retained (dropping them would lose the
//! majority the pattern waits for later), while messages from **past**
//! slots are stale and can be discarded — the pattern that needed them has
//! already returned. `DECIDE` messages short-circuit their own instance
//! (lines 12/17 of Algorithm 2) and are remembered per instance.
//!
//! Higher layers (multivalued consensus, replicated logs) run instances in
//! increasing order at each process; the staleness rule relies on that
//! monotonicity. The same monotonicity powers *hygiene*: whenever the
//! served slot advances, everything buffered below it — phase queues **and**
//! remembered decides of completed instances — is pruned, so long SMR runs
//! do not retain dead instances forever. Pruned entries count into
//! [`Mailbox::stale_dropped`], which the algorithms report through
//! [`crate::ObsEvent::MailboxStats`] so substrates can expose it via
//! `ofa_metrics::Counters`.
//!
//! The routing itself is split into two non-blocking primitives so that
//! both execution styles share one implementation:
//!
//! * [`Mailbox::take_buffered`] — serve the next already-buffered item for
//!   a slot (sticky decide first, then the slot's queue);
//! * [`Mailbox::accept`] — route one freshly delivered message relative to
//!   a slot (serve / buffer / drop / stash).
//!
//! The blocking [`Mailbox::next_for`] used by the `Env`-trait algorithms
//! is a thin loop over these; the resumable state machines of
//! [`crate::sm`] call them directly.

use crate::{Bit, Env, Est, Halt, Msg, MsgKind, Payload, Phase};
use ofa_topology::ProcessId;
use std::collections::{BTreeMap, VecDeque};

/// What the mailbox hands to the communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxItem {
    /// A phase message matching the requested `(instance, round, phase)`.
    Phase {
        /// The sender (needed for cluster amplification).
        from: ofa_topology::ProcessId,
        /// The carried estimate.
        est: Est,
    },
    /// A `DECIDE(v)` for the requested instance was received (possibly
    /// earlier, while buffered).
    Decide {
        /// The decided value.
        value: Bit,
    },
}

/// An application payload received via [`MsgKind::App`], stashed by the
/// mailbox for the layer above binary consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AppMsg {
    /// The sending process.
    pub from: ProcessId,
    /// Protocol instance.
    pub instance: u64,
    /// Application-defined sequence/tag.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

/// A remembered `DECIDE(value)`; `served` tracks whether the instance
/// ever consumed it, so pruning can tell a used entry from a stale one.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct DecideEntry {
    value: Bit,
    served: bool,
}

/// Buffers out-of-slot messages for one process.
#[derive(Debug)]
pub struct Mailbox {
    future: BTreeMap<(u64, u64, Phase), VecDeque<Msg>>,
    decides: BTreeMap<u64, DecideEntry>,
    /// App stash keyed by `(instance, seq)`: duplicate deliveries (e.g.
    /// the relay storms of multivalued dissemination, where every process
    /// re-broadcasts the stage proposer's payload) collapse into one
    /// entry instead of growing the stash linearly with the storm.
    apps: BTreeMap<(u64, u64), AppMsg>,
    /// The highest slot ever served; everything strictly below it is dead.
    position: (u64, u64, Phase),
    stale_dropped: u64,
    stale_reported: u64,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

/// Lexicographic position of a message within the instance/round/phase
/// order.
fn key(instance: u64, round: u64, phase: Phase) -> (u64, u64, u8) {
    (instance, round, phase.slot_index())
}

/// A freshly materialized per-slot queue. Pre-sized for the common case —
/// under an all-to-all exchange a future slot's queue fills with several
/// messages within one delivery wave, so starting above `VecDeque`'s
/// minimal capacity skips the first growth reallocations on the relay
/// hot path.
fn slot_queue() -> VecDeque<Msg> {
    VecDeque::with_capacity(8)
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            future: BTreeMap::new(),
            decides: BTreeMap::new(),
            apps: BTreeMap::new(),
            position: (0, 0, Phase::One),
            stale_dropped: 0,
            stale_reported: 0,
        }
    }

    /// Advances the served position to `(instance, round, phase)` and
    /// prunes everything the protocol has moved past: buffered phase
    /// queues below the slot and remembered decides of earlier instances.
    fn advance_to(&mut self, instance: u64, round: u64, phase: Phase) {
        let new = (instance, round, phase);
        if key(new.0, new.1, new.2) <= key(self.position.0, self.position.1, self.position.2) {
            return;
        }
        self.position = new;
        let kept = self.future.split_off(&new);
        let dropped = std::mem::replace(&mut self.future, kept);
        self.stale_dropped += dropped.values().map(|q| q.len() as u64).sum::<u64>();
        let kept = self.decides.split_off(&instance);
        let dropped = std::mem::replace(&mut self.decides, kept);
        // A decide the instance actually consumed did its job — only
        // never-served entries count as stale.
        self.stale_dropped += dropped.values().filter(|e| !e.served).count() as u64;
    }

    /// Serves the next already-buffered item for `(instance, round,
    /// phase)`: the sticky `DECIDE` of the instance if one was seen,
    /// otherwise the slot's oldest buffered phase message. Advances the
    /// hygiene position (pruning dead buffers) as a side effect.
    pub fn take_buffered(
        &mut self,
        instance: u64,
        round: u64,
        phase: Phase,
    ) -> Option<MailboxItem> {
        self.advance_to(instance, round, phase);
        if let Some(entry) = self.decides.get_mut(&instance) {
            entry.served = true;
            return Some(MailboxItem::Decide { value: entry.value });
        }
        let msg = self
            .future
            .get_mut(&(instance, round, phase))?
            .pop_front()?;
        let est = match msg.kind {
            MsgKind::Phase { est, .. } => est,
            MsgKind::Decide { .. } | MsgKind::App { .. } => {
                unreachable!("only phase messages are buffered by slot")
            }
        };
        Some(MailboxItem::Phase {
            from: msg.from,
            est,
        })
    }

    /// Routes one freshly delivered message relative to the slot the
    /// process is serving. Returns `Some` iff the message is immediately
    /// relevant (a phase message of the slot, or a `DECIDE` of the
    /// instance); otherwise the message is buffered (future slots),
    /// dropped as stale (past slots), or stashed (application payloads).
    pub fn accept(
        &mut self,
        msg: Msg,
        instance: u64,
        round: u64,
        phase: Phase,
    ) -> Option<MailboxItem> {
        match msg.kind {
            MsgKind::Decide { instance: i, value } => {
                if i < instance {
                    self.stale_dropped += 1;
                    return None;
                }
                // Remember every current-or-future decide; only the
                // current instance's short-circuits this call.
                let entry = self.decides.entry(i).or_insert(DecideEntry {
                    value,
                    served: false,
                });
                entry.served |= i == instance;
                (i == instance).then_some(MailboxItem::Decide { value })
            }
            MsgKind::Phase {
                instance: i,
                round: r,
                phase: ph,
                est,
            } => {
                let incoming = key(i, r, ph);
                let current = key(instance, round, phase);
                match incoming.cmp(&current) {
                    std::cmp::Ordering::Equal => Some(MailboxItem::Phase {
                        from: msg.from,
                        est,
                    }),
                    std::cmp::Ordering::Greater => {
                        self.future
                            .entry((i, r, ph))
                            .or_insert_with(slot_queue)
                            .push_back(msg);
                        None
                    }
                    std::cmp::Ordering::Less => {
                        self.stale_dropped += 1;
                        None
                    }
                }
            }
            MsgKind::App {
                instance: i,
                seq,
                payload,
            } => {
                self.apps.insert(
                    (i, seq),
                    AppMsg {
                        from: msg.from,
                        instance: i,
                        seq,
                        payload,
                    },
                );
                None
            }
        }
    }

    /// Returns the next item relevant to `(instance, round, phase)`,
    /// pulling from the buffer first and then from `env.recv()`.
    ///
    /// A `DECIDE` for the current instance is returned immediately and is
    /// *sticky* (returned again on subsequent calls for that instance).
    /// Messages for later slots are buffered; messages for earlier slots
    /// are dropped as stale.
    ///
    /// # Errors
    ///
    /// Propagates `Halt` from `env.recv()`.
    pub fn next_for(
        &mut self,
        env: &mut dyn Env,
        instance: u64,
        round: u64,
        phase: Phase,
    ) -> Result<MailboxItem, Halt> {
        loop {
            if let Some(item) = self.take_buffered(instance, round, phase) {
                return Ok(item);
            }
            let msg = env.recv()?;
            if let Some(item) = self.accept(msg, instance, round, phase) {
                return Ok(item);
            }
        }
    }

    /// Blocks for one incoming message and routes it into the buffers via
    /// [`Mailbox::buffer`] without serving any slot. Layers above binary
    /// consensus use this to wait for payloads between instances.
    ///
    /// # Errors
    ///
    /// Propagates `Halt` from `env.recv()`.
    pub fn pump(&mut self, env: &mut dyn Env) -> Result<(), Halt> {
        let msg = env.recv()?;
        self.buffer(msg);
        Ok(())
    }

    /// Routes one delivered message into the buffers (phase messages by
    /// slot, decides into the sticky map, application payloads into the
    /// app stash) without serving any slot — the non-blocking half of
    /// [`Mailbox::pump`], used directly by the resumable state machines.
    pub fn buffer(&mut self, msg: Msg) {
        match msg.kind {
            MsgKind::Decide { instance, value } => {
                self.decides.entry(instance).or_insert(DecideEntry {
                    value,
                    served: false,
                });
            }
            MsgKind::Phase {
                instance,
                round,
                phase,
                ..
            } => {
                self.future
                    .entry((instance, round, phase))
                    .or_insert_with(slot_queue)
                    .push_back(msg);
            }
            MsgKind::App {
                instance,
                seq,
                payload,
            } => {
                self.apps.insert(
                    (instance, seq),
                    AppMsg {
                        from: msg.from,
                        instance,
                        seq,
                        payload,
                    },
                );
            }
        }
    }

    /// Drains the stashed application payloads, in `(instance, seq)`
    /// order.
    ///
    /// Layers that only want *one* instance's payloads should prefer
    /// [`Mailbox::absorb_apps`], which serves them in place — this method
    /// allocates a fresh `Vec` per call.
    pub fn take_apps(&mut self) -> Vec<AppMsg> {
        std::mem::take(&mut self.apps).into_values().collect()
    }

    /// Serves every stashed payload of instance `instance` to `f` (in
    /// `seq` order), drops earlier instances' payloads as stale, and
    /// leaves later instances' payloads stashed — without round-tripping
    /// the whole stash through a temporary `Vec` and re-stashing the
    /// survivors, which is what the multivalued layer's per-stage absorb
    /// used to do on the hot path.
    pub fn absorb_apps(&mut self, instance: u64, mut f: impl FnMut(AppMsg)) {
        if self
            .apps
            .first_key_value()
            .is_none_or(|((i, _), _)| *i > instance)
        {
            return; // nothing at or below the instance: common fast path
        }
        let future = self.apps.split_off(&(instance + 1, 0));
        for ((i, _), app) in std::mem::replace(&mut self.apps, future) {
            if i == instance {
                f(app);
            } else {
                self.stale_dropped += 1;
            }
        }
    }

    /// Puts an application payload back into the stash (e.g. one drained
    /// by [`Mailbox::take_apps`] but belonging to a later layer instance).
    pub fn stash_app(&mut self, app: AppMsg) {
        self.apps.insert((app.instance, app.seq), app);
    }

    /// The sticky `DECIDE` value for `instance`, if one has been received
    /// and the instance has not been pruned yet (decides of instances the
    /// process has moved past are discarded).
    pub fn seen_decide(&self, instance: u64) -> Option<Bit> {
        self.decides.get(&instance).map(|e| e.value)
    }

    /// Number of stale messages discarded so far: past-slot arrivals plus
    /// buffered entries pruned when the served slot advanced.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Drops since the previous call — the delta the algorithms report via
    /// [`crate::ObsEvent::MailboxStats`] at the end of each instance, so
    /// multi-instance layers account each run exactly once.
    pub fn take_stale_delta(&mut self) -> u64 {
        let delta = self.stale_dropped - self.stale_reported;
        self.stale_reported = self.stale_dropped;
        delta
    }

    /// Number of messages currently buffered for future slots.
    pub fn buffered(&self) -> usize {
        self.future.values().map(VecDeque::len).sum()
    }
}

/// Mailboxes serialize their complete buffered state — future-slot phase
/// queues, sticky decides, the app stash, the hygiene position, and the
/// staleness counters — so checkpointed runs resume with identical
/// routing behaviour.
impl serde::Serialize for Mailbox {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "future".to_string(),
                serde::Value::Seq(self.future.iter().map(|(k, q)| (k, q).to_value()).collect()),
            ),
            (
                "decides".to_string(),
                serde::Value::Seq(
                    self.decides
                        .iter()
                        .map(|(i, e)| (i, e).to_value())
                        .collect(),
                ),
            ),
            (
                "apps".to_string(),
                serde::Value::Seq(self.apps.values().map(serde::Serialize::to_value).collect()),
            ),
            ("position".to_string(), self.position.to_value()),
            ("stale_dropped".to_string(), self.stale_dropped.to_value()),
            ("stale_reported".to_string(), self.stale_reported.to_value()),
        ])
    }
}

impl serde::Deserialize for Mailbox {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("Mailbox: missing field {name}")))
        };
        let future: Vec<((u64, u64, Phase), VecDeque<Msg>)> =
            serde::Deserialize::from_value(field("future")?)?;
        let decides: Vec<(u64, DecideEntry)> = serde::Deserialize::from_value(field("decides")?)?;
        let apps: Vec<AppMsg> = serde::Deserialize::from_value(field("apps")?)?;
        Ok(Mailbox {
            future: future.into_iter().collect(),
            decides: decides.into_iter().collect(),
            apps: apps.into_iter().map(|a| ((a.instance, a.seq), a)).collect(),
            position: serde::Deserialize::from_value(field("position")?)?,
            stale_dropped: serde::Deserialize::from_value(field("stale_dropped")?)?,
            stale_reported: serde::Deserialize::from_value(field("stale_reported")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_topology::{Partition, ProcessId};

    /// Env stub whose `recv` pops from a script.
    struct Script {
        part: Partition,
        incoming: VecDeque<Msg>,
    }

    impl Script {
        fn new(msgs: Vec<Msg>) -> Self {
            Script {
                part: Partition::singletons(3),
                incoming: msgs.into(),
            }
        }
    }

    impl Env for Script {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<(), Halt> {
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.incoming.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, _slot: ofa_sharedmem::Slot, enc: u64) -> Result<u64, Halt> {
            Ok(enc)
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
    }

    fn phase_msg(from: usize, instance: u64, round: u64, phase: Phase, est: Est) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::Phase {
                instance,
                round,
                phase,
                est,
            },
        }
    }

    fn decide_msg(from: usize, instance: u64, value: Bit) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::Decide { instance, value },
        }
    }

    #[test]
    fn current_slot_message_is_delivered() {
        let mut env = Script::new(vec![phase_msg(1, 0, 1, Phase::One, Some(Bit::One))]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
    }

    #[test]
    fn future_messages_are_buffered_and_served_later() {
        let mut env = Script::new(vec![
            phase_msg(2, 0, 3, Phase::One, Some(Bit::Zero)), // future round
            phase_msg(1, 0, 1, Phase::Two, None),            // future phase
            phase_msg(0, 2, 1, Phase::One, Some(Bit::One)),  // future instance
            phase_msg(1, 0, 1, Phase::One, Some(Bit::One)),  // current
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
        assert_eq!(mb.buffered(), 3);
        // Now in (0, 1, Two): buffered phase-2 message surfaces.
        let item = mb.next_for(&mut env, 0, 1, Phase::Two).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: None
            }
        );
        // Round 3, then instance 2, are all served from the buffer.
        let item = mb.next_for(&mut env, 0, 3, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(2)));
        let item = mb.next_for(&mut env, 2, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(0)));
        assert_eq!(mb.buffered(), 0);
    }

    #[test]
    fn stale_messages_are_dropped() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 1, Phase::One, Some(Bit::Zero)), // stale round
            phase_msg(1, 0, 2, Phase::One, Some(Bit::Zero)), // stale phase
            decide_msg(2, 0, Bit::One),                      // stale instance decide
            phase_msg(1, 1, 2, Phase::Two, Some(Bit::One)),  // current
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 1, 2, Phase::Two).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
        assert_eq!(mb.stale_dropped(), 3);
    }

    #[test]
    fn moving_past_a_slot_prunes_its_buffers() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 2, Phase::One, Some(Bit::Zero)), // buffered, then skipped
            phase_msg(2, 0, 2, Phase::One, Some(Bit::One)),  // buffered, then skipped
            decide_msg(1, 1, Bit::One),                      // decide for instance 1
            phase_msg(1, 0, 1, Phase::One, Some(Bit::One)),  // current
            phase_msg(1, 2, 1, Phase::One, Some(Bit::One)),  // for the last slot
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { .. }));
        assert_eq!(mb.buffered(), 2);
        assert_eq!(mb.seen_decide(1), Some(Bit::One));
        // Jump straight past round 2 (e.g. a relayed decide ended the
        // instance): the round-2 buffer is pruned and counted.
        let item = mb.next_for(&mut env, 1, 1, Phase::One).unwrap();
        assert_eq!(item, MailboxItem::Decide { value: Bit::One });
        assert_eq!(mb.buffered(), 0, "dead round-2 queue was pruned");
        assert_eq!(mb.stale_dropped(), 2);
        // Moving to instance 2 prunes the remembered instance-1 decide;
        // it was *served* (it ended instance 1), so it is not stale.
        let item = mb.next_for(&mut env, 2, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { .. }));
        assert_eq!(mb.seen_decide(1), None, "dead decide was pruned");
        assert_eq!(mb.stale_dropped(), 2, "served decides are not stale");
    }

    #[test]
    fn pruned_unserved_decides_count_as_stale() {
        let mut env = Script::new(vec![
            decide_msg(2, 1, Bit::One),                     // never served
            phase_msg(1, 0, 1, Phase::One, Some(Bit::One)), // current
            phase_msg(1, 3, 1, Phase::One, Some(Bit::One)), // jump target
        ]);
        let mut mb = Mailbox::new();
        let _ = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        // Jump straight to instance 3: the instance-1 decide was buffered
        // but never consumed — that is a genuinely wasted message.
        let _ = mb.next_for(&mut env, 3, 1, Phase::One).unwrap();
        assert_eq!(mb.stale_dropped(), 1);
    }

    #[test]
    fn stale_delta_is_reported_once() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 1, Phase::One, Some(Bit::Zero)), // stale after advance
            phase_msg(1, 0, 3, Phase::One, Some(Bit::One)),  // current
        ]);
        let mut mb = Mailbox::new();
        let _ = mb.next_for(&mut env, 0, 3, Phase::One).unwrap();
        assert_eq!(mb.take_stale_delta(), 1);
        assert_eq!(mb.take_stale_delta(), 0, "delta resets");
        assert_eq!(mb.stale_dropped(), 1, "cumulative count is unchanged");
    }

    #[test]
    fn decide_short_circuits_and_is_sticky_per_instance() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 5, Phase::One, Some(Bit::Zero)),
            decide_msg(2, 0, Bit::One),
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(item, MailboxItem::Decide { value: Bit::One });
        assert_eq!(mb.seen_decide(0), Some(Bit::One));
        assert_eq!(mb.seen_decide(1), None);
        // Sticky within instance 0.
        let again = mb.next_for(&mut env, 0, 9, Phase::Two).unwrap();
        assert_eq!(again, MailboxItem::Decide { value: Bit::One });
    }

    #[test]
    fn decide_for_future_instance_waits_its_turn() {
        let mut env = Script::new(vec![
            decide_msg(2, 3, Bit::One),
            phase_msg(1, 0, 1, Phase::One, Some(Bit::Zero)),
        ]);
        let mut mb = Mailbox::new();
        // Instance 0 work proceeds despite the instance-3 decide.
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { .. }));
        // Reaching instance 3: the remembered decide fires immediately.
        let item = mb.next_for(&mut env, 3, 1, Phase::One).unwrap();
        assert_eq!(item, MailboxItem::Decide { value: Bit::One });
    }

    #[test]
    fn halt_propagates() {
        let mut env = Script::new(vec![]);
        let mut mb = Mailbox::new();
        assert_eq!(mb.next_for(&mut env, 0, 1, Phase::One), Err(Halt::Stopped));
    }

    fn app_msg(from: usize, instance: u64, seq: u64, text: &[u8]) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::App {
                instance,
                seq,
                payload: Payload::from_bytes(text).unwrap(),
            },
        }
    }

    #[test]
    fn app_messages_are_stashed_not_served() {
        let mut env = Script::new(vec![
            app_msg(1, 0, 1, b"proposal"),
            phase_msg(2, 0, 1, Phase::One, Some(Bit::One)),
        ]);
        let mut mb = Mailbox::new();
        // The APP message is absorbed silently; the phase message is served.
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(2)));
        let apps = mb.take_apps();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].from, ProcessId(1));
        assert_eq!(apps[0].seq, 1);
        assert_eq!(apps[0].payload.as_bytes(), b"proposal");
        // Draining empties the stash.
        assert!(mb.take_apps().is_empty());
    }

    #[test]
    fn absorb_apps_serves_one_instance_in_place() {
        let mut env = Script::new(vec![
            app_msg(1, 2, 0, b"past"),   // earlier instance: stale
            app_msg(2, 5, 1, b"now-a"),  // current instance
            app_msg(0, 5, 0, b"now-b"),  // current instance, lower seq
            app_msg(1, 9, 0, b"future"), // later instance: stays stashed
        ]);
        let mut mb = Mailbox::new();
        for _ in 0..4 {
            mb.pump(&mut env).unwrap();
        }
        let mut served = Vec::new();
        mb.absorb_apps(5, |app| served.push((app.seq, app.payload)));
        assert_eq!(served.len(), 2, "both instance-5 payloads served");
        assert_eq!(served[0].0, 0, "seq order");
        assert_eq!(served[1].0, 1);
        assert_eq!(mb.stale_dropped(), 1, "the instance-2 payload was stale");
        // The future payload survived in place.
        let rest = mb.take_apps();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].instance, 9);
        // Absorbing with an empty stash is a no-op.
        mb.absorb_apps(9, |_| panic!("stash is empty"));
    }

    #[test]
    fn stash_app_returns_a_message_to_the_stash() {
        let mut env = Script::new(vec![app_msg(0, 7, 2, b"later")]);
        let mut mb = Mailbox::new();
        mb.pump(&mut env).unwrap();
        let apps = mb.take_apps();
        assert_eq!(apps.len(), 1);
        mb.stash_app(apps[0]);
        assert_eq!(mb.take_apps(), apps);
    }

    #[test]
    fn pump_routes_every_message_kind() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 2, Phase::One, Some(Bit::Zero)),
            decide_msg(2, 5, Bit::One),
            app_msg(0, 3, 0, b"x"),
        ]);
        let mut mb = Mailbox::new();
        for _ in 0..3 {
            mb.pump(&mut env).unwrap();
        }
        // The phase message was buffered by slot and is served on demand.
        assert_eq!(mb.buffered(), 1);
        let item = mb.next_for(&mut env, 0, 2, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(1)));
        // The decide is sticky for its instance.
        assert_eq!(mb.seen_decide(5), Some(Bit::One));
        // The app payload is in the stash.
        assert_eq!(mb.take_apps().len(), 1);
        // And pumping an empty env propagates the halt.
        assert_eq!(mb.pump(&mut env), Err(Halt::Stopped));
    }
}
