//! Per-process message buffering, across rounds and protocol instances.
//!
//! Rounds are asynchronous: while `p_i` waits in `(instance, r, ph)` it
//! can receive messages for **future** rounds/phases/instances from faster
//! processes. Those must be retained (dropping them would lose the
//! majority the pattern waits for later), while messages from **past**
//! slots are stale and can be discarded — the pattern that needed them has
//! already returned. `DECIDE` messages short-circuit their own instance
//! (lines 12/17 of Algorithm 2) and are remembered per instance.
//!
//! Higher layers (multivalued consensus, replicated logs) run instances in
//! increasing order at each process; the staleness rule relies on that
//! monotonicity.

use crate::{Bit, Env, Est, Halt, Msg, MsgKind, Payload, Phase};
use ofa_topology::ProcessId;
use std::collections::{HashMap, VecDeque};

/// What the mailbox hands to the communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxItem {
    /// A phase message matching the requested `(instance, round, phase)`.
    Phase {
        /// The sender (needed for cluster amplification).
        from: ofa_topology::ProcessId,
        /// The carried estimate.
        est: Est,
    },
    /// A `DECIDE(v)` for the requested instance was received (possibly
    /// earlier, while buffered).
    Decide {
        /// The decided value.
        value: Bit,
    },
}

/// An application payload received via [`MsgKind::App`], stashed by the
/// mailbox for the layer above binary consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppMsg {
    /// The sending process.
    pub from: ProcessId,
    /// Protocol instance.
    pub instance: u64,
    /// Application-defined sequence/tag.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

/// Buffers out-of-slot messages for one process.
#[derive(Debug, Default)]
pub struct Mailbox {
    future: HashMap<(u64, u64, Phase), VecDeque<Msg>>,
    decides: HashMap<u64, Bit>,
    apps: Vec<AppMsg>,
    stale_dropped: u64,
}

/// Lexicographic position of a message within the instance/round/phase
/// order.
fn key(instance: u64, round: u64, phase: Phase) -> (u64, u64, u8) {
    (instance, round, phase.slot_index())
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next item relevant to `(instance, round, phase)`,
    /// pulling from the buffer first and then from `env.recv()`.
    ///
    /// A `DECIDE` for the current instance is returned immediately and is
    /// *sticky* (returned again on subsequent calls for that instance).
    /// Messages for later slots are buffered; messages for earlier slots
    /// are dropped as stale.
    ///
    /// # Errors
    ///
    /// Propagates `Halt` from `env.recv()`.
    pub fn next_for(
        &mut self,
        env: &mut dyn Env,
        instance: u64,
        round: u64,
        phase: Phase,
    ) -> Result<MailboxItem, Halt> {
        if let Some(&v) = self.decides.get(&instance) {
            return Ok(MailboxItem::Decide { value: v });
        }
        if let Some(queue) = self.future.get_mut(&(instance, round, phase)) {
            if let Some(msg) = queue.pop_front() {
                let est = match msg.kind {
                    MsgKind::Phase { est, .. } => est,
                    MsgKind::Decide { .. } | MsgKind::App { .. } => {
                        unreachable!("only phase messages are buffered by slot")
                    }
                };
                return Ok(MailboxItem::Phase {
                    from: msg.from,
                    est,
                });
            }
        }
        loop {
            let msg = env.recv()?;
            match msg.kind {
                MsgKind::Decide { instance: i, value } => {
                    // Remember every decide; only the current instance's
                    // short-circuits this call.
                    self.decides.entry(i).or_insert(value);
                    if i == instance {
                        return Ok(MailboxItem::Decide { value });
                    }
                    if i < instance {
                        self.stale_dropped += 1;
                    }
                }
                MsgKind::Phase {
                    instance: i,
                    round: r,
                    phase: ph,
                    est,
                } => {
                    let incoming = key(i, r, ph);
                    let current = key(instance, round, phase);
                    if incoming == current {
                        return Ok(MailboxItem::Phase {
                            from: msg.from,
                            est,
                        });
                    }
                    if incoming > current {
                        self.future.entry((i, r, ph)).or_default().push_back(msg);
                    } else {
                        self.stale_dropped += 1;
                    }
                }
                MsgKind::App {
                    instance: i,
                    seq,
                    payload,
                } => self.apps.push(AppMsg {
                    from: msg.from,
                    instance: i,
                    seq,
                    payload,
                }),
            }
        }
    }

    /// Blocks for one incoming message and routes it into the buffers
    /// (phase messages by slot, decides into the sticky map, application
    /// payloads into the app stash) without serving any slot. Layers above
    /// binary consensus use this to wait for payloads between instances.
    ///
    /// # Errors
    ///
    /// Propagates `Halt` from `env.recv()`.
    pub fn pump(&mut self, env: &mut dyn Env) -> Result<(), Halt> {
        let msg = env.recv()?;
        match msg.kind {
            MsgKind::Decide { instance, value } => {
                self.decides.entry(instance).or_insert(value);
            }
            MsgKind::Phase {
                instance,
                round,
                phase,
                ..
            } => {
                self.future
                    .entry((instance, round, phase))
                    .or_default()
                    .push_back(msg);
            }
            MsgKind::App {
                instance,
                seq,
                payload,
            } => self.apps.push(AppMsg {
                from: msg.from,
                instance,
                seq,
                payload,
            }),
        }
        Ok(())
    }

    /// Drains the stashed application payloads.
    pub fn take_apps(&mut self) -> Vec<AppMsg> {
        std::mem::take(&mut self.apps)
    }

    /// Puts an application payload back into the stash (e.g. one drained
    /// by [`Mailbox::take_apps`] but belonging to a later layer instance).
    pub fn stash_app(&mut self, app: AppMsg) {
        self.apps.push(app);
    }

    /// The sticky `DECIDE` value for `instance`, if one has been received.
    pub fn seen_decide(&self, instance: u64) -> Option<Bit> {
        self.decides.get(&instance).copied()
    }

    /// Number of stale (past-slot) messages dropped so far.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Number of messages currently buffered for future slots.
    pub fn buffered(&self) -> usize {
        self.future.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_topology::{Partition, ProcessId};

    /// Env stub whose `recv` pops from a script.
    struct Script {
        part: Partition,
        incoming: VecDeque<Msg>,
    }

    impl Script {
        fn new(msgs: Vec<Msg>) -> Self {
            Script {
                part: Partition::singletons(3),
                incoming: msgs.into(),
            }
        }
    }

    impl Env for Script {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, _to: ProcessId, _msg: MsgKind) -> Result<(), Halt> {
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.incoming.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, _slot: ofa_sharedmem::Slot, enc: u64) -> Result<u64, Halt> {
            Ok(enc)
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
    }

    fn phase_msg(from: usize, instance: u64, round: u64, phase: Phase, est: Est) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::Phase {
                instance,
                round,
                phase,
                est,
            },
        }
    }

    fn decide_msg(from: usize, instance: u64, value: Bit) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::Decide { instance, value },
        }
    }

    #[test]
    fn current_slot_message_is_delivered() {
        let mut env = Script::new(vec![phase_msg(1, 0, 1, Phase::One, Some(Bit::One))]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
    }

    #[test]
    fn future_messages_are_buffered_and_served_later() {
        let mut env = Script::new(vec![
            phase_msg(2, 0, 3, Phase::One, Some(Bit::Zero)), // future round
            phase_msg(1, 0, 1, Phase::Two, None),            // future phase
            phase_msg(0, 2, 1, Phase::One, Some(Bit::One)),  // future instance
            phase_msg(1, 0, 1, Phase::One, Some(Bit::One)),  // current
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
        assert_eq!(mb.buffered(), 3);
        // Now in (0, 1, Two): buffered phase-2 message surfaces.
        let item = mb.next_for(&mut env, 0, 1, Phase::Two).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: None
            }
        );
        // Round 3, then instance 2, are all served from the buffer.
        let item = mb.next_for(&mut env, 0, 3, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(2)));
        let item = mb.next_for(&mut env, 2, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(0)));
        assert_eq!(mb.buffered(), 0);
    }

    #[test]
    fn stale_messages_are_dropped() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 1, Phase::One, Some(Bit::Zero)), // stale round
            phase_msg(1, 0, 2, Phase::One, Some(Bit::Zero)), // stale phase
            decide_msg(2, 0, Bit::One),                      // stale instance decide
            phase_msg(1, 1, 2, Phase::Two, Some(Bit::One)),  // current
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 1, 2, Phase::Two).unwrap();
        assert_eq!(
            item,
            MailboxItem::Phase {
                from: ProcessId(1),
                est: Some(Bit::One)
            }
        );
        assert_eq!(mb.stale_dropped(), 3);
    }

    #[test]
    fn decide_short_circuits_and_is_sticky_per_instance() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 5, Phase::One, Some(Bit::Zero)),
            decide_msg(2, 0, Bit::One),
        ]);
        let mut mb = Mailbox::new();
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert_eq!(item, MailboxItem::Decide { value: Bit::One });
        assert_eq!(mb.seen_decide(0), Some(Bit::One));
        assert_eq!(mb.seen_decide(1), None);
        // Sticky within instance 0.
        let again = mb.next_for(&mut env, 0, 9, Phase::Two).unwrap();
        assert_eq!(again, MailboxItem::Decide { value: Bit::One });
    }

    #[test]
    fn decide_for_future_instance_waits_its_turn() {
        let mut env = Script::new(vec![
            decide_msg(2, 3, Bit::One),
            phase_msg(1, 0, 1, Phase::One, Some(Bit::Zero)),
        ]);
        let mut mb = Mailbox::new();
        // Instance 0 work proceeds despite the instance-3 decide.
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { .. }));
        // Reaching instance 3: the remembered decide fires immediately.
        let item = mb.next_for(&mut env, 3, 1, Phase::One).unwrap();
        assert_eq!(item, MailboxItem::Decide { value: Bit::One });
    }

    #[test]
    fn halt_propagates() {
        let mut env = Script::new(vec![]);
        let mut mb = Mailbox::new();
        assert_eq!(mb.next_for(&mut env, 0, 1, Phase::One), Err(Halt::Stopped));
    }

    fn app_msg(from: usize, instance: u64, seq: u64, text: &[u8]) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::App {
                instance,
                seq,
                payload: Payload::from_bytes(text).unwrap(),
            },
        }
    }

    #[test]
    fn app_messages_are_stashed_not_served() {
        let mut env = Script::new(vec![
            app_msg(1, 0, 1, b"proposal"),
            phase_msg(2, 0, 1, Phase::One, Some(Bit::One)),
        ]);
        let mut mb = Mailbox::new();
        // The APP message is absorbed silently; the phase message is served.
        let item = mb.next_for(&mut env, 0, 1, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(2)));
        let apps = mb.take_apps();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].from, ProcessId(1));
        assert_eq!(apps[0].seq, 1);
        assert_eq!(apps[0].payload.as_bytes(), b"proposal");
        // Draining empties the stash.
        assert!(mb.take_apps().is_empty());
    }

    #[test]
    fn stash_app_returns_a_message_to_the_stash() {
        let mut env = Script::new(vec![app_msg(0, 7, 2, b"later")]);
        let mut mb = Mailbox::new();
        mb.pump(&mut env).unwrap();
        let apps = mb.take_apps();
        assert_eq!(apps.len(), 1);
        mb.stash_app(apps[0]);
        assert_eq!(mb.take_apps(), apps);
    }

    #[test]
    fn pump_routes_every_message_kind() {
        let mut env = Script::new(vec![
            phase_msg(1, 0, 2, Phase::One, Some(Bit::Zero)),
            decide_msg(2, 5, Bit::One),
            app_msg(0, 3, 0, b"x"),
        ]);
        let mut mb = Mailbox::new();
        for _ in 0..3 {
            mb.pump(&mut env).unwrap();
        }
        // The phase message was buffered by slot and is served on demand.
        assert_eq!(mb.buffered(), 1);
        let item = mb.next_for(&mut env, 0, 2, Phase::One).unwrap();
        assert!(matches!(item, MailboxItem::Phase { from, .. } if from == ProcessId(1)));
        // The decide is sticky for its instance.
        assert_eq!(mb.seen_decide(5), Some(Bit::One));
        // The app payload is in the stash.
        assert_eq!(mb.take_apps().len(), 1);
        // And pumping an empty env propagates the halt.
        assert_eq!(mb.pump(&mut env), Err(Halt::Stopped));
    }
}
