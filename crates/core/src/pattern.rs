//! Algorithm 1: the `msg_exchange(r, ph, est)` communication pattern.
//!
//! An all-to-all exchange with **cluster amplification**: when `p_i`
//! receives `(r, ph, v)` from `p_j ∈ P[y]`, it credits *all* of `P[y]` as
//! supporters of `v` — sound because (thanks to the cluster consensus
//! object invoked before the pattern) the non-crashed processes of `P[y]`
//! cannot broadcast different values in the same `(r, ph)`. The pattern
//! returns once the supporter sets jointly cover a strict majority of `Π`.
//!
//! The paper's exit condition `|supporters[a] ∪ supporters[b]| > n/2` is
//! implemented as "the union of the supporter sets of *all* values
//! received in this `(r, ph)` covers a majority", which is identical in
//! conforming executions (only the two admissible values circulate) and
//! stays well-defined in the E9 ablation where WA1 is deliberately broken.

use crate::{Bit, Env, Est, Halt, Mailbox, MailboxItem, Phase};
use ofa_topology::{Partition, ProcessId, ProcessSet};

/// The supporter sets accumulated by one `msg_exchange` invocation:
/// `supporters[v]` for `v ∈ {0, 1, ⊥}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supporters {
    n: usize,
    sets: [ProcessSet; 3],
}

pub(crate) fn est_index(e: Est) -> usize {
    match e {
        Some(Bit::Zero) => 0,
        Some(Bit::One) => 1,
        None => 2,
    }
}

impl Supporters {
    /// Creates empty supporter sets over a universe of `n` processes.
    pub fn empty(n: usize) -> Self {
        Supporters {
            n,
            sets: [
                ProcessSet::empty(n),
                ProcessSet::empty(n),
                ProcessSet::empty(n),
            ],
        }
    }

    /// Credits `who` as supporters of `value` (lines 5–6 of Algorithm 1;
    /// `who` is the sender's whole cluster when amplification is on, or
    /// just the sender otherwise).
    pub fn credit(&mut self, value: Est, who: &ProcessSet) {
        self.sets[est_index(value)].union_with(who);
    }

    /// The supporter set of `value`.
    pub fn of(&self, value: Est) -> &ProcessSet {
        &self.sets[est_index(value)]
    }

    /// Union of all supporter sets — the processes heard from, directly or
    /// through amplification.
    pub fn coverage(&self) -> ProcessSet {
        let mut all = self.sets[0].clone();
        all.union_with(&self.sets[1]);
        all.union_with(&self.sets[2]);
        all
    }

    /// The binary value supported by a strict majority, if any (line 6 of
    /// Algorithm 2). At most one value can qualify because two majorities
    /// intersect.
    pub fn majority_value(&self) -> Option<Bit> {
        Bit::ALL
            .into_iter()
            .find(|&b| self.of(Some(b)).is_majority_of(self.n))
    }

    /// Which estimate values have a non-empty supporter set — the paper's
    /// `rec_i` (line 10 of Algorithm 2).
    pub fn rec(&self) -> RecSet {
        RecSet {
            saw_zero: !self.sets[0].is_empty(),
            saw_one: !self.sets[1].is_empty(),
            saw_bot: !self.sets[2].is_empty(),
        }
    }
}

/// The set `rec_i` of estimate values received during phase 2
/// (`{v}`, `{v, ⊥}`, or `{⊥}` in conforming executions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecSet {
    /// `0` was received.
    pub saw_zero: bool,
    /// `1` was received.
    pub saw_one: bool,
    /// `⊥` was received.
    pub saw_bot: bool,
}

/// Classification of `rec_i` driving lines 12–14 of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecClass {
    /// `rec = {v}`: decide `v`.
    Single(Bit),
    /// `rec = {v, ⊥}`: adopt `v` as the new estimate.
    ValueAndBot(Bit),
    /// `rec = {⊥}`: flip the coin.
    BotOnly,
    /// Both `0` and `1` received — impossible when WA1 holds; reachable
    /// only in the E9 ablation (amplification without cluster
    /// pre-agreement).
    Conflict,
}

impl RecSet {
    /// Classifies the set per the paper's case analysis.
    pub fn classify(self) -> RecClass {
        match (self.saw_zero, self.saw_one, self.saw_bot) {
            (true, true, _) => RecClass::Conflict,
            (true, false, false) => RecClass::Single(Bit::Zero),
            (false, true, false) => RecClass::Single(Bit::One),
            (true, false, true) => RecClass::ValueAndBot(Bit::Zero),
            (false, true, true) => RecClass::ValueAndBot(Bit::One),
            (false, false, true) => RecClass::BotOnly,
            (false, false, false) => RecClass::BotOnly, // vacuous; pattern always sees >= 1 value
        }
    }
}

/// How one `msg_exchange` invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exchange {
    /// The supporter coverage reached a majority (line 7 of Algorithm 1).
    Completed(Supporters),
    /// A `DECIDE(v)` arrived instead — the caller must relay and decide
    /// (line 17 of Algorithm 2).
    DecideSeen(Bit),
}

/// Runs the `msg_exchange (r, ph, est)` pattern of Algorithm 1.
///
/// Broadcasts `(round, phase, est)` to all processes (including self),
/// then accumulates supporters — amplifying each sender to its whole
/// cluster when `amplify` is true — until their union covers a strict
/// majority of the system.
///
/// # Errors
///
/// Propagates `Halt` from the environment (crash or stop).
#[allow(clippy::too_many_arguments)] // mirrors the paper's msg_exchange(r, ph, est) plus explicit wiring
pub fn msg_exchange(
    env: &mut dyn Env,
    mailbox: &mut Mailbox,
    partition: &Partition,
    instance: u64,
    round: u64,
    phase: Phase,
    est: Est,
    amplify: bool,
) -> Result<Exchange, Halt> {
    let n = partition.n();
    env.broadcast(crate::MsgKind::Phase {
        instance,
        round,
        phase,
        est,
    })?;
    let mut sup = Supporters::empty(n);
    loop {
        match mailbox.next_for(env, instance, round, phase)? {
            MailboxItem::Decide { value } => return Ok(Exchange::DecideSeen(value)),
            MailboxItem::Phase { from, est: v } => {
                if amplify {
                    sup.credit(v, partition.cluster_members_of(from));
                } else {
                    sup.credit(v, &ProcessSet::singleton(n, from));
                }
                if sup.coverage().is_majority_of(n) {
                    return Ok(Exchange::Completed(sup));
                }
            }
        }
    }
}

/// Picks the set `who` a sender is credited as, given the amplification
/// switch — exposed for the m&m comparator, which must *not* amplify.
pub fn credited_set(partition: &Partition, from: ProcessId, amplify: bool) -> ProcessSet {
    if amplify {
        partition.cluster_members_of(from).clone()
    } else {
        ProcessSet::singleton(partition.n(), from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Msg, MsgKind};
    use ofa_sharedmem::Slot;
    use std::collections::VecDeque;

    struct Script {
        part: Partition,
        incoming: VecDeque<Msg>,
        sent: Vec<(ProcessId, MsgKind)>,
    }

    impl Env for Script {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn partition(&self) -> &Partition {
            &self.part
        }
        fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
            self.sent.push((to, msg));
            Ok(())
        }
        fn recv(&mut self) -> Result<Msg, Halt> {
            self.incoming.pop_front().ok_or(Halt::Stopped)
        }
        fn cluster_propose(&mut self, _slot: Slot, enc: u64) -> Result<u64, Halt> {
            Ok(enc)
        }
        fn local_coin(&mut self) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
        fn common_coin(&mut self, _round: u64) -> Result<Bit, Halt> {
            Ok(Bit::Zero)
        }
    }

    fn phase1(from: usize, est: Est) -> Msg {
        Msg {
            from: ProcessId(from),
            kind: MsgKind::Phase {
                instance: 0,
                round: 1,
                phase: Phase::One,
                est,
            },
        }
    }

    #[test]
    fn supporters_majority_and_rec() {
        let mut sup = Supporters::empty(7);
        sup.credit(Some(Bit::One), &ProcessSet::from_indices(7, [1, 2, 3, 4]));
        sup.credit(None, &ProcessSet::from_indices(7, [5]));
        assert_eq!(sup.majority_value(), Some(Bit::One));
        assert_eq!(sup.coverage().len(), 5);
        let rec = sup.rec();
        assert!(rec.saw_one && rec.saw_bot && !rec.saw_zero);
        assert_eq!(rec.classify(), RecClass::ValueAndBot(Bit::One));
    }

    #[test]
    fn rec_classification_table() {
        use RecClass::*;
        let mk = |z, o, b| RecSet {
            saw_zero: z,
            saw_one: o,
            saw_bot: b,
        };
        assert_eq!(mk(true, false, false).classify(), Single(Bit::Zero));
        assert_eq!(mk(false, true, false).classify(), Single(Bit::One));
        assert_eq!(mk(true, false, true).classify(), ValueAndBot(Bit::Zero));
        assert_eq!(mk(false, true, true).classify(), ValueAndBot(Bit::One));
        assert_eq!(mk(false, false, true).classify(), BotOnly);
        assert_eq!(mk(true, true, false).classify(), Conflict);
        assert_eq!(mk(true, true, true).classify(), Conflict);
    }

    #[test]
    fn one_for_all_a_single_sender_covers_its_cluster() {
        // Fig 1 right: p2's message alone covers {p2..p5} — with one more
        // singleton the pattern exits.
        let part = Partition::fig1_right();
        let mut env = Script {
            part: part.clone(),
            incoming: VecDeque::from(vec![phase1(1, Some(Bit::One))]),
            sent: Vec::new(),
        };
        let mut mb = Mailbox::new();
        let out = msg_exchange(
            &mut env,
            &mut mb,
            &part,
            0,
            1,
            Phase::One,
            Some(Bit::One),
            true,
        )
        .unwrap();
        match out {
            Exchange::Completed(sup) => {
                // 4 of 7 is already a strict majority.
                assert_eq!(sup.coverage().len(), 4);
                assert_eq!(sup.majority_value(), Some(Bit::One));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        // broadcast went to all 7 processes
        assert_eq!(env.sent.len(), 7);
    }

    #[test]
    fn without_amplification_each_sender_counts_once() {
        let part = Partition::fig1_right();
        let mut env = Script {
            part: part.clone(),
            incoming: VecDeque::from(vec![
                phase1(1, Some(Bit::One)),
                phase1(2, Some(Bit::One)),
                phase1(3, Some(Bit::One)),
                phase1(4, Some(Bit::One)),
            ]),
            sent: Vec::new(),
        };
        let mut mb = Mailbox::new();
        let out = msg_exchange(
            &mut env,
            &mut mb,
            &part,
            0,
            1,
            Phase::One,
            Some(Bit::One),
            false,
        )
        .unwrap();
        match out {
            Exchange::Completed(sup) => assert_eq!(sup.coverage().len(), 4),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn insufficient_coverage_blocks_until_halt() {
        // Only p1's own cluster ({p1}, weight 1) ever answers: no majority.
        let part = Partition::fig1_right();
        let mut env = Script {
            part: part.clone(),
            incoming: VecDeque::from(vec![phase1(0, Some(Bit::Zero))]),
            sent: Vec::new(),
        };
        let mut mb = Mailbox::new();
        let out = msg_exchange(
            &mut env,
            &mut mb,
            &part,
            0,
            1,
            Phase::One,
            Some(Bit::Zero),
            true,
        );
        assert_eq!(out, Err(Halt::Stopped));
    }

    #[test]
    fn decide_short_circuits_the_pattern() {
        let part = Partition::fig1_right();
        let mut env = Script {
            part: part.clone(),
            incoming: VecDeque::from(vec![Msg {
                from: ProcessId(6),
                kind: MsgKind::Decide {
                    instance: 0,
                    value: Bit::Zero,
                },
            }]),
            sent: Vec::new(),
        };
        let mut mb = Mailbox::new();
        let out = msg_exchange(
            &mut env,
            &mut mb,
            &part,
            0,
            1,
            Phase::One,
            Some(Bit::One),
            true,
        )
        .unwrap();
        assert_eq!(out, Exchange::DecideSeen(Bit::Zero));
    }

    #[test]
    fn credited_set_switch() {
        let part = Partition::fig1_right();
        assert_eq!(credited_set(&part, ProcessId(2), true).len(), 4);
        assert_eq!(credited_set(&part, ProcessId(2), false).len(), 1);
    }
}
