//! The §III-C structural comparison, analytic and measured.
//!
//! | quantity | hybrid (Algorithm 2) | m&m |
//! |---|---|---|
//! | shared memories in the system | `m` | `n` |
//! | consensus objects accessed per phase (system-wide) | `m` | `n` |
//! | objects a process invokes per phase | `1` | `α_i + 1` |
//! | "one for all" amplification | yes | impossible |

use crate::{MmBenOr, MmMemories};
use ofa_core::Algorithm;
use ofa_scenario::{Backend, Scenario};
use ofa_sim::Sim;
use ofa_topology::{MmGraph, Partition, ProcessId};
use std::sync::Arc;

/// One row of the E6 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Scenario label.
    pub label: String,
    /// System size.
    pub n: usize,
    /// Hybrid: number of shared memories (`m`).
    pub hybrid_memories: usize,
    /// m&m: number of shared memories (`n`).
    pub mm_memories: usize,
    /// Hybrid: consensus-object invocations per process per phase (1).
    pub hybrid_invocations_per_phase: f64,
    /// m&m: minimum over processes of `α_i + 1`.
    pub mm_invocations_min: usize,
    /// m&m: mean over processes of `α_i + 1`.
    pub mm_invocations_mean: f64,
    /// m&m: maximum over processes of `α_i + 1`.
    pub mm_invocations_max: usize,
}

/// Computes the comparison analytically from the topologies.
pub fn analytic(label: &str, partition: &Partition, graph: &MmGraph) -> ComparisonRow {
    assert_eq!(
        partition.n(),
        graph.n(),
        "comparison requires equal system sizes"
    );
    let n = graph.n();
    let invs: Vec<usize> = (0..n)
        .map(|i| graph.invocations_per_phase(ProcessId(i)))
        .collect();
    ComparisonRow {
        label: label.to_string(),
        n,
        hybrid_memories: partition.m(),
        mm_memories: graph.memory_count(),
        hybrid_invocations_per_phase: 1.0,
        mm_invocations_min: invs.iter().copied().min().unwrap_or(0),
        mm_invocations_mean: invs.iter().sum::<usize>() as f64 / n as f64,
        mm_invocations_max: invs.iter().copied().max().unwrap_or(0),
    }
}

/// Measured counterpart of [`analytic`]: runs the hybrid algorithm on
/// `partition` and the m&m comparator on `graph` under the simulator and
/// reads the invocation counters back.
///
/// Returns `(hybrid_invocations_per_phase, mm_mean_invocations_per_phase)`
/// — respectively 1.0 and the degree-weighted mean `α_i + 1` when both
/// protocols ran to completion.
pub fn measured(partition: &Partition, graph: &MmGraph, seed: u64) -> (f64, f64) {
    assert_eq!(partition.n(), graph.n());
    let n = partition.n();

    // Hybrid run: cluster_proposes per process divided by phases entered.
    let hybrid = Sim.run(
        &Scenario::new(partition.clone(), Algorithm::LocalCoin)
            .proposals_split(n / 2)
            .seed(seed),
    );
    // Every completed round performs exactly two phases, each with one
    // propose; a process that decides mid-round or relays may have a
    // partial final round, so aggregate over the whole system.
    let total_proposes: u64 = hybrid.counters.cluster_proposes;
    let total_rounds: u64 = hybrid.counters.rounds_started;
    let hybrid_per_phase = if total_rounds == 0 {
        0.0
    } else {
        // phases ≈ 2 × rounds; the final (possibly interrupted) phase of a
        // relayed decision biases this below 1.0 slightly, never above.
        total_proposes as f64 / (2.0 * total_rounds as f64)
    };

    // m&m run.
    let memories = Arc::new(MmMemories::new(graph.clone()));
    let body = Arc::new(MmBenOr::new(Arc::clone(&memories)));
    let _ = Sim.run(
        &Scenario::new(Partition::singletons(n), Algorithm::LocalCoin)
            .custom_body(body)
            .proposals_split(n / 2)
            .seed(seed),
    );
    let mm_mean = {
        let per: Vec<f64> = (0..n)
            .filter_map(|i| memories.invocations_per_phase(ProcessId(i)))
            .collect();
        if per.is_empty() {
            0.0
        } else {
            per.iter().sum::<f64>() / per.len() as f64
        }
    };
    (hybrid_per_phase, mm_mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_fig2_vs_fig1() {
        // Compare 5-process systems: hybrid with 2 clusters vs Fig-2 m&m.
        let part = Partition::from_sizes(&[3, 2]).unwrap();
        let row = analytic("fig2", &part, &MmGraph::fig2());
        assert_eq!(row.hybrid_memories, 2);
        assert_eq!(row.mm_memories, 5);
        assert_eq!(row.hybrid_invocations_per_phase, 1.0);
        assert_eq!(row.mm_invocations_min, 2);
        assert_eq!(row.mm_invocations_max, 4);
        assert!((row.mm_invocations_mean - 3.0).abs() < 1e-9); // (2+3+4+3+3)/5
    }

    #[test]
    fn analytic_star_is_worst_for_the_center() {
        let part = Partition::even(6, 2);
        let row = analytic("star", &part, &MmGraph::star(6));
        assert_eq!(row.mm_invocations_max, 6); // center: α = 5
        assert_eq!(row.mm_invocations_min, 2); // leaves: α = 1
    }

    #[test]
    fn measured_matches_analytic_shape() {
        let part = Partition::from_sizes(&[3, 2]).unwrap();
        let graph = MmGraph::fig2();
        let (hybrid, mm) = measured(&part, &graph, 7);
        // Hybrid: exactly 1 per phase, modulo a truncated final phase.
        assert!(hybrid > 0.45 && hybrid <= 1.0, "hybrid = {hybrid}");
        // m&m: the mean of α_i + 1 is 3.0 on Fig 2.
        assert!((mm - 3.0).abs() < 1e-9, "mm = {mm}");
    }

    #[test]
    #[should_panic(expected = "equal system sizes")]
    fn size_mismatch_rejected() {
        let _ = analytic("bad", &Partition::even(4, 2), &MmGraph::fig2());
    }
}
