//! The m&m comparator protocol.
//!
//! **Reconstruction note (documented substitution).** The paper compares
//! its Algorithm 2 against the consensus algorithm of Aguilera et al.
//! (PODC 2018) only *structurally*: per phase of a round, an m&m process
//! touches `α_i + 1` consensus objects (its own memory plus one per
//! neighbor) out of `n` memories system-wide, and the model cannot
//! support the "one for all" amplification. We reconstruct a Ben-Or-style
//! protocol with exactly that structure:
//!
//! * each round has the two phases of Ben-Or;
//! * at the start of each phase, `p_i` proposes its estimate to the
//!   phase's consensus object in **every memory of its domain** `S_i`
//!   (α_i + 1 invocations) and adopts the value decided by its *own*
//!   memory's object — a neighborhood agreement attempt;
//! * the message exchange counts senders **individually** (amplification
//!   would be unsound: domains overlap, so "neighborhood agreement" does
//!   not make all members of any fixed set broadcast equal values).
//!
//! Safety is inherited from Ben-Or: the memory step only substitutes one
//! proposed estimate for another, and the phase logic is untouched. What
//! the reconstruction reproduces faithfully are the §III-C quantities —
//! which is exactly what experiment E6 measures.

use crate::MmMemories;
use ofa_core::{
    msg_exchange, Bit, Decision, Env, Est, Exchange, Halt, Mailbox, MsgKind, ObsEvent, Phase,
    ProtocolConfig, RecClass,
};
use ofa_scenario::ProcessBody;
use ofa_sharedmem::{CodableValue, Slot};
use std::sync::Arc;

/// Ben-Or over the m&m substrate (see module docs for the reconstruction
/// rationale). Runs on any backend via
/// [`ofa_scenario::Scenario::custom_body`], typically the deterministic
/// simulator.
#[derive(Debug)]
pub struct MmBenOr {
    memories: Arc<MmMemories>,
}

impl MmBenOr {
    /// Creates the comparator over the given memory family.
    pub fn new(memories: Arc<MmMemories>) -> Self {
        MmBenOr { memories }
    }

    /// The shared memory family (for post-run accounting).
    pub fn memories(&self) -> &Arc<MmMemories> {
        &self.memories
    }

    /// One phase's neighborhood memory step: propose to every memory of
    /// the domain, adopt the own memory's decision.
    fn memory_step(&self, me: ofa_topology::ProcessId, slot: Slot, enc: u64) -> u64 {
        self.memories.note_phase_entry(me);
        let mut domain: Vec<ofa_topology::ProcessId> =
            self.memories.graph().domain(me).iter().collect();
        domain.sort();
        let mut own = enc;
        for owner in domain {
            let decided = self.memories.propose(me, owner, slot, enc);
            if owner == me {
                own = decided;
            }
        }
        own
    }
}

impl ProcessBody for MmBenOr {
    fn run(
        &self,
        env: &mut dyn Env,
        proposal: Bit,
        cfg: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        env.observe(ObsEvent::Propose {
            instance: 0,
            value: proposal,
        });
        let partition = env.partition().clone();
        let me = env.me();
        let mut mailbox = Mailbox::new();
        let mut est1 = proposal;
        let mut round: u64 = 0;
        loop {
            round += 1;
            if let Some(max) = cfg.max_rounds {
                if round > max {
                    return Err(Halt::Stopped);
                }
            }
            env.observe(ObsEvent::RoundStart { instance: 0, round });

            // Phase 1: neighborhood memory step, then individual exchange.
            est1 = Bit::decode(self.memory_step(
                me,
                Slot::new(round, Phase::One.slot_index()),
                est1.encode(),
            ));
            let sup1 = match msg_exchange(
                env,
                &mut mailbox,
                &partition,
                0,
                round,
                Phase::One,
                Some(est1),
                false, // no amplification in the m&m model
            )? {
                Exchange::DecideSeen(v) => return relay(env, round, v),
                Exchange::Completed(s) => s,
            };
            let est2: Est = sup1.majority_value();

            // Phase 2.
            let est2 = Est::decode(self.memory_step(
                me,
                Slot::new(round, Phase::Two.slot_index()),
                est2.encode(),
            ));
            let sup2 = match msg_exchange(
                env,
                &mut mailbox,
                &partition,
                0,
                round,
                Phase::Two,
                est2,
                false,
            )? {
                Exchange::DecideSeen(v) => return relay(env, round, v),
                Exchange::Completed(s) => s,
            };
            match sup2.rec().classify() {
                RecClass::Single(v) => {
                    env.observe(ObsEvent::Deciding {
                        instance: 0,
                        round,
                        value: v,
                        relayed: false,
                    });
                    env.broadcast(MsgKind::Decide {
                        instance: 0,
                        value: v,
                    })?;
                    return Ok(Decision {
                        value: v,
                        round,
                        relayed: false,
                    });
                }
                RecClass::ValueAndBot(v) => est1 = v,
                RecClass::BotOnly => est1 = env.local_coin()?,
                RecClass::Conflict => est1 = Bit::Zero,
            }
        }
    }
}

fn relay(env: &mut dyn Env, round: u64, v: Bit) -> Result<Decision, Halt> {
    env.observe(ObsEvent::Deciding {
        instance: 0,
        round,
        value: v,
        relayed: true,
    });
    env.broadcast(MsgKind::Decide {
        instance: 0,
        value: v,
    })?;
    Ok(Decision {
        value: v,
        round,
        relayed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_scenario::{Backend, Outcome, Scenario};
    use ofa_sim::Sim;
    use ofa_topology::{MmGraph, Partition, ProcessId};

    fn run_mm(graph: MmGraph, ones: usize, seed: u64) -> (Outcome, Arc<MmMemories>) {
        let n = graph.n();
        let memories = Arc::new(MmMemories::new(graph));
        let body = Arc::new(MmBenOr::new(Arc::clone(&memories)));
        // The message layer of the m&m model is plain all-to-all: model it
        // with singleton clusters (the partition's memories are unused —
        // the comparator talks to MmMemories directly).
        let out = Sim.run(
            &Scenario::new(Partition::singletons(n), Algorithm::LocalCoin)
                .custom_body(body)
                .proposals_split(ones)
                .seed(seed),
        );
        (out, memories)
    }

    #[test]
    fn mm_ben_or_reaches_agreement() {
        for seed in 0..4 {
            let (out, _) = run_mm(MmGraph::fig2(), 2, seed);
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
        }
    }

    #[test]
    fn unanimous_validity() {
        let (out, _) = run_mm(MmGraph::ring(5), 5, 1);
        assert!(out.decided(Bit::One));
        let (out, _) = run_mm(MmGraph::ring(5), 0, 1);
        assert!(out.decided(Bit::Zero));
    }

    #[test]
    fn invocations_per_phase_equal_degree_plus_one() {
        let g = MmGraph::fig2();
        let (out, mems) = run_mm(g.clone(), 2, 3);
        assert!(out.all_correct_decided);
        for i in 0..g.n() {
            let me = ProcessId(i);
            let got = mems.invocations_per_phase(me).expect("ran some phase");
            let want = g.invocations_per_phase(me) as f64;
            assert!(
                (got - want).abs() < 1e-9,
                "{me}: measured {got}, analytic {want}"
            );
        }
        // n memories in use, vs m for the hybrid model.
        assert_eq!(mems.memory_count(), 5);
        assert_eq!(mems.touched_memories(), 5);
    }
}
