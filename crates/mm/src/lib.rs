//! # `ofa-mm` — the m&m comparison model
//!
//! The paper's §III-C contrasts the hybrid (cluster) communication model
//! against the **m&m model** of Aguilera et al. (PODC 2018), where shared
//! memories are induced by a graph: one `p_i`-centered memory per process,
//! accessible by the closed neighborhood `S_i` (appendix, Figure 2). This
//! crate makes the comparison executable:
//!
//! * [`MmMemories`] — the `n` per-process memories with domain access
//!   control and invocation accounting,
//! * [`MmBenOr`] — a Ben-Or-style comparator protocol reconstructed on
//!   that substrate (see `protocol` module docs for the substitution
//!   note), runnable under the `ofa-sim` conductor,
//! * [`analytic`] / [`measured`] — the §III-C quantities: `m` vs `n`
//!   memories, `1` vs `α_i + 1` consensus-object invocations per process
//!   per phase.
//!
//! # Examples
//!
//! ```
//! use ofa_mm::analytic;
//! use ofa_topology::{MmGraph, Partition};
//!
//! let row = analytic(
//!     "fig2",
//!     &Partition::from_sizes(&[3, 2]).unwrap(),
//!     &MmGraph::fig2(),
//! );
//! assert_eq!(row.hybrid_memories, 2); // m
//! assert_eq!(row.mm_memories, 5);     // n
//! assert_eq!(row.mm_invocations_max, 4); // p3: α + 1
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compare;
mod memories;
mod protocol;

pub use compare::{analytic, measured, ComparisonRow};
pub use memories::MmMemories;
pub use protocol::MmBenOr;
