//! The m&m shared-memory substrate: one memory per process, accessible by
//! its closed neighborhood (paper §III-C and appendix).
//!
//! In the uniform m&m model there are `n` memories. The `p_i`-centered
//! memory is shared by the domain `S_i = {i} ∪ N(i)`: `p_i` accesses it
//! directly, its neighbors remotely. Contrast with the hybrid model's `m`
//! disjoint cluster memories, each accessed by exactly one cluster.

use ofa_sharedmem::{ClusterMemory, Slot};
use ofa_topology::{MmGraph, ProcessId, ProcessSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The `n` per-process memories of a uniform m&m system, with domain
/// access control and per-accessor invocation accounting.
///
/// # Examples
///
/// ```
/// use ofa_mm::MmMemories;
/// use ofa_sharedmem::Slot;
/// use ofa_topology::{MmGraph, ProcessId};
///
/// let mems = MmMemories::new(MmGraph::fig2());
/// // p2 ∈ S1 = {p1, p2}: allowed to access p1's memory.
/// let v = mems.propose(ProcessId(1), ProcessId(0), Slot::new(1, 1), 7);
/// assert_eq!(v, 7);
/// assert_eq!(mems.invocations_by(ProcessId(1)), 1);
/// ```
#[derive(Debug)]
pub struct MmMemories {
    graph: MmGraph,
    memories: Vec<Arc<ClusterMemory>>,
    domains: Vec<ProcessSet>,
    invocations_by: Vec<AtomicU64>,
    phase_entries: Vec<AtomicU64>,
}

impl MmMemories {
    /// Builds the memory family induced by `graph`.
    pub fn new(graph: MmGraph) -> Self {
        let n = graph.n();
        MmMemories {
            domains: graph.domains(),
            memories: (0..n).map(|_| Arc::new(ClusterMemory::new())).collect(),
            invocations_by: (0..n).map(|_| AtomicU64::new(0)).collect(),
            phase_entries: (0..n).map(|_| AtomicU64::new(0)).collect(),
            graph,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &MmGraph {
        &self.graph
    }

    /// Number of memories (`n` — vs `m` in the hybrid model).
    pub fn memory_count(&self) -> usize {
        self.memories.len()
    }

    /// Proposes to the consensus object at `slot` in the `owner`-centered
    /// memory, on behalf of `accessor`.
    ///
    /// # Panics
    ///
    /// Panics if `accessor ∉ S_owner` — the m&m model only lets a process
    /// access the memories of its closed neighborhood.
    pub fn propose(&self, accessor: ProcessId, owner: ProcessId, slot: Slot, enc: u64) -> u64 {
        assert!(
            self.domains[owner.index()].contains(accessor),
            "{accessor} is outside the domain S{} = {}",
            owner.index() + 1,
            self.domains[owner.index()],
        );
        self.invocations_by[accessor.index()].fetch_add(1, Ordering::Relaxed);
        self.memories[owner.index()].propose_raw(slot, enc)
    }

    /// Records that `accessor` entered a protocol phase (denominator of
    /// the invocations-per-phase metric).
    pub fn note_phase_entry(&self, accessor: ProcessId) {
        self.phase_entries[accessor.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Total consensus-object invocations performed by `accessor`.
    pub fn invocations_by(&self, accessor: ProcessId) -> u64 {
        self.invocations_by[accessor.index()].load(Ordering::Relaxed)
    }

    /// Phase entries recorded for `accessor`.
    pub fn phase_entries_of(&self, accessor: ProcessId) -> u64 {
        self.phase_entries[accessor.index()].load(Ordering::Relaxed)
    }

    /// Measured invocations per phase for `accessor` (`α_i + 1` when the
    /// comparator ran to completion), `None` before any phase.
    pub fn invocations_per_phase(&self, accessor: ProcessId) -> Option<f64> {
        let phases = self.phase_entries_of(accessor);
        if phases == 0 {
            None
        } else {
            Some(self.invocations_by(accessor) as f64 / phases as f64)
        }
    }

    /// Total invocations across all processes.
    pub fn total_invocations(&self) -> u64 {
        self.invocations_by
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of memories that materialized at least one consensus object.
    pub fn touched_memories(&self) -> usize {
        self.memories
            .iter()
            .filter(|m| m.object_count() > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_access_is_enforced() {
        let mems = MmMemories::new(MmGraph::fig2());
        // p1's domain S1 = {p1, p2}: p3 may not access it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mems.propose(ProcessId(2), ProcessId(0), Slot::new(1, 1), 0)
        }));
        assert!(result.is_err(), "out-of-domain access must panic");
        // p2 may.
        assert_eq!(
            mems.propose(ProcessId(1), ProcessId(0), Slot::new(1, 1), 3),
            3
        );
    }

    #[test]
    fn first_proposal_wins_per_memory() {
        let mems = MmMemories::new(MmGraph::complete(3));
        let s = Slot::new(1, 1);
        assert_eq!(mems.propose(ProcessId(0), ProcessId(1), s, 10), 10);
        assert_eq!(mems.propose(ProcessId(2), ProcessId(1), s, 20), 10);
        // A different memory is independent.
        assert_eq!(mems.propose(ProcessId(2), ProcessId(2), s, 20), 20);
    }

    #[test]
    fn accounting_matches_usage() {
        let g = MmGraph::fig2();
        let mems = MmMemories::new(g.clone());
        let me = ProcessId(2); // p3: degree 3
        mems.note_phase_entry(me);
        let mut domain: Vec<ProcessId> = g.domain(me).iter().collect();
        domain.sort();
        for owner in domain {
            mems.propose(me, owner, Slot::new(1, 1), 1);
        }
        assert_eq!(mems.invocations_by(me), 4); // α_3 + 1 = 4
        assert_eq!(mems.invocations_per_phase(me), Some(4.0));
        assert_eq!(mems.invocations_per_phase(ProcessId(0)), None);
        assert_eq!(mems.total_invocations(), 4);
        assert_eq!(mems.touched_memories(), 4);
        assert_eq!(mems.memory_count(), 5);
    }
}
