//! # `ofa-runtime` — real-concurrency runtime for hybrid-model consensus
//!
//! Runs the `ofa-core` algorithms with *genuine* parallelism: one OS
//! thread per process, crossbeam channels as the reliable asynchronous
//! network, and the real lock-free `ofa-sharedmem` consensus objects as
//! each cluster's memory. This is the deployment the paper motivates —
//! each cluster a multicore address space, message passing in between —
//! collapsed onto one machine.
//!
//! Where `ofa-sim` gives determinism and virtual time, this runtime gives
//! real races and wall-clock latency. Both execute the *same* protocol
//! code, and both are backends of the unified
//! [`ofa_scenario::Scenario`] API: the [`Threads`] backend here accepts
//! exactly the scenario values the simulator accepts — failure patterns
//! ([`ofa_scenario::CrashPlan`]), coin overrides
//! ([`ofa_scenario::CoinSpec`]), custom protocol bodies
//! ([`ofa_scenario::ProcessBody`]), observers — and returns the same
//! [`ofa_scenario::Outcome`] type.
//!
//! # Examples
//!
//! ```
//! use ofa_core::{Algorithm, Bit};
//! use ofa_runtime::Threads;
//! use ofa_scenario::{Backend, Scenario};
//! use ofa_topology::Partition;
//!
//! let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(3)
//!     .seed(7);
//! let out = Threads.run(&scenario);
//! assert!(out.all_correct_decided);
//! assert!(out.agreement_holds());
//! ```

#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ofa_coins::{CommonCoin, LocalCoin, SeededLocalCoin};
use ofa_core::{Bit, Decision, Env, Halt, Msg, MsgKind, ObsEvent, Observer};
use ofa_metrics::{CounterSnapshot, Counters};
use ofa_scenario::{Backend, BackendKind, CrashTrigger, Outcome, Scenario};
use ofa_sharedmem::{MemoryBank, Slot};
use ofa_topology::{Partition, ProcessId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long `recv` sleeps between checks of the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// The environment backing one process thread.
struct ThreadEnv {
    me: ProcessId,
    partition: Partition,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    memory: MemoryBank,
    counters: Arc<Counters>,
    common_coin: Arc<dyn CommonCoin>,
    local_coin: SeededLocalCoin,
    observer: Option<Arc<dyn Observer>>,
    stop: Arc<AtomicBool>,
    crash_at_step: Option<u64>,
    crash_at_round: Option<u64>,
    /// Wall-clock instant at which an `AtTime` trigger fires (virtual
    /// ticks read as microseconds from run start — see [`Threads`]).
    crash_at_instant: Option<Instant>,
    steps: u64,
    crashed: bool,
}

impl ThreadEnv {
    fn step(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if let Some(k) = self.crash_at_step {
            if self.steps > k {
                self.crashed = true;
            }
        }
        self.check_timed_crash();
        if self.crashed {
            return Err(Halt::Crashed);
        }
        Ok(())
    }

    fn check_timed_crash(&mut self) {
        if let Some(at) = self.crash_at_instant {
            if Instant::now() >= at {
                self.crashed = true;
            }
        }
    }
}

impl Env for ThreadEnv {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
        self.step()?;
        self.counters.inc_messages_sent(1);
        // A closed channel means the receiver finished — the message is
        // simply dropped, like a message to a decided process.
        let _ = self.senders[to.index()].send(Msg {
            from: self.me,
            kind: msg,
        });
        Ok(())
    }

    fn broadcast(&mut self, msg: MsgKind) -> Result<(), Halt> {
        self.counters.inc_broadcasts(1);
        let n = self.partition.n();
        for j in 0..n {
            self.send(ProcessId(j), msg)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, Halt> {
        self.step()?;
        loop {
            match self.receiver.recv_timeout(POLL_INTERVAL) {
                Ok(m) => {
                    self.counters.inc_messages_delivered(1);
                    return Ok(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Timed crashes fire even while blocked, like the
                    // simulator's scheduled crash events.
                    self.check_timed_crash();
                    if self.crashed {
                        return Err(Halt::Crashed);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(Halt::Stopped);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(Halt::Stopped),
            }
        }
    }

    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
        self.step()?;
        self.counters.inc_cluster_proposes(1);
        Ok(self
            .memory
            .memory_of(&self.partition, self.me)
            .propose_raw(slot, enc))
    }

    fn local_coin(&mut self) -> Result<Bit, Halt> {
        self.step()?;
        self.counters.inc_local_coin_flips(1);
        Ok(Bit::from(self.local_coin.flip()))
    }

    fn common_coin(&mut self, round: u64) -> Result<Bit, Halt> {
        self.step()?;
        self.counters.inc_common_coin_queries(1);
        Ok(Bit::from(self.common_coin.bit(round)))
    }

    fn observe(&mut self, event: ObsEvent) {
        match event {
            ObsEvent::RoundStart { .. } => {
                self.counters.inc_rounds_started(1);
                // Cumulative across instances, like the simulator.
                if let Some(r) = self.crash_at_round {
                    if self.counters.rounds_started() >= r {
                        self.crashed = true;
                    }
                }
            }
            ObsEvent::Deciding { relayed, .. } => {
                if relayed {
                    self.counters.inc_decide_relays(1);
                } else {
                    self.counters.inc_decisions(1);
                }
            }
            ObsEvent::MailboxStats { stale_dropped } => {
                self.counters.inc_stale_dropped(stale_dropped);
            }
            _ => {}
        }
        if let Some(obs) = &self.observer {
            obs.on_event(self.me, &event);
        }
    }
}

/// The real-thread backend: one OS thread per process.
///
/// Scenario semantics on this substrate:
///
/// * [`ofa_scenario::DelayModel`] / [`ofa_scenario::CostModel`] are
///   ignored — transit time and operation cost are whatever the hardware
///   does;
/// * [`CrashTrigger::AtStep`] and [`CrashTrigger::AtRound`] behave exactly
///   as in the simulator; [`CrashTrigger::AtTime`] reads the virtual
///   ticks as **microseconds of wall-clock time** from run start (an
///   approximation — real time is not virtual time);
/// * [`Scenario::keep_trace`] / `max_events` are ignored (no global event
///   order exists to record), so [`Outcome::trace_hash`] is `None`;
/// * [`Scenario::timeout_ms`] bounds the run: undecided processes are
///   stopped (indulgence — they stop *without* deciding).
///
/// # Examples
///
/// ```
/// use ofa_core::Algorithm;
/// use ofa_runtime::Threads;
/// use ofa_scenario::{Backend, Scenario};
/// use ofa_topology::Partition;
///
/// let out = Threads.run(
///     &Scenario::new(Partition::even(6, 2), Algorithm::LocalCoin).proposals_split(3),
/// );
/// assert!(out.agreement_holds());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Threads;

impl Backend for Threads {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        run_scenario(scenario)
    }
}

/// Executes `scenario` on real threads and assembles the unified outcome.
fn run_scenario(scenario: &Scenario) -> Outcome {
    scenario.assert_valid();
    if let ofa_scenario::Body::ReplicatedLog(smr) = &scenario.body {
        assert!(
            smr.traffic.is_none(),
            "the real-thread runtime has no virtual clock: traffic-driven \
             workloads (arrival processes, latency histograms) need a \
             virtual-time backend — run this scenario on `Sim`"
        );
    }
    let n = scenario.partition.n();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Msg>();
        senders.push(tx);
        receivers.push(rx);
    }
    let memory = MemoryBank::for_partition(&scenario.partition);
    let counters: Vec<Arc<Counters>> = (0..n).map(|_| Arc::new(Counters::new())).collect();
    let common_coin = scenario.build_coin();
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let (done_tx, done_rx) = unbounded::<(usize, Result<Decision, Halt>, Duration)>();
    let mut handles = Vec::with_capacity(n);
    for (i, receiver) in receivers.into_iter().enumerate() {
        let me = ProcessId(i);
        let (crash_at_step, crash_at_round, crash_at_instant) = match scenario.crashes.trigger(me) {
            Some(CrashTrigger::AtStep(k)) => (Some(k), None, None),
            Some(CrashTrigger::AtRound(r)) => (None, Some(r), None),
            Some(CrashTrigger::AtTime(t)) => {
                (None, None, Some(started + Duration::from_micros(t.ticks())))
            }
            None => (None, None, None),
        };
        let mut env = ThreadEnv {
            me,
            partition: scenario.partition.clone(),
            senders: senders.clone(),
            receiver,
            memory: memory.clone(),
            counters: Arc::clone(&counters[i]),
            common_coin: Arc::clone(&common_coin),
            local_coin: SeededLocalCoin::for_process(scenario.seed, me),
            observer: scenario.observer.clone(),
            stop: Arc::clone(&stop),
            crash_at_step,
            crash_at_round,
            crash_at_instant,
            steps: 0,
            crashed: false,
        };
        let body = scenario.body.clone();
        let config = scenario.config;
        let proposal = scenario.proposals[i];
        let done_tx = done_tx.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("ofa-p{}", i + 1))
                .spawn(move || {
                    let result = body.run(&mut env, proposal, &config);
                    let _ = done_tx.send((i, result, started.elapsed()));
                })
                .expect("spawn process thread"),
        );
    }
    drop(done_tx);
    drop(senders);

    // Collect results; on deadline, raise the stop flag so blocked
    // processes bail out with Halt::Stopped.
    let mut results: Vec<Option<(Result<Decision, Halt>, Duration)>> = vec![None; n];
    let mut collected = 0;
    let deadline = started + scenario.timeout_duration();
    while collected < n {
        let now = Instant::now();
        let wait = deadline.saturating_duration_since(now).max(POLL_INTERVAL);
        match done_rx.recv_timeout(wait) {
            Ok((i, res, at)) => {
                results[i] = Some((res, at));
                collected += 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                stop.store(true, Ordering::SeqCst);
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if Instant::now() >= deadline {
            stop.store(true, Ordering::SeqCst);
        }
    }
    for h in handles {
        h.join().expect("process thread panicked");
    }

    let mut latest_decision = None;
    let mut flat = Vec::with_capacity(n);
    for slot in results {
        let (res, at) = slot.expect("every thread reports");
        if res.is_ok() {
            latest_decision = Some(latest_decision.unwrap_or(Duration::ZERO).max(at));
        }
        flat.push(res);
    }
    let per_process: Vec<CounterSnapshot> = counters.iter().map(|c| c.snapshot()).collect();
    let mut out = Outcome::assemble(
        BackendKind::Threads,
        flat,
        per_process,
        memory.total_objects(),
        memory.total_proposes(),
    );
    out.elapsed = started.elapsed();
    out.latest_decision = latest_decision;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_core::Algorithm;
    use ofa_scenario::{CoinSpec, CrashPlan};
    use ofa_topology::ProcessSet;

    #[test]
    fn seven_processes_fig1_right_agree() {
        for seed in 0..3 {
            let out = Threads.run(
                &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                    .proposals_split(3)
                    .seed(seed),
            );
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
            assert_eq!(out.deciders(), 7);
            assert!(out.trace_hash.is_none(), "real threads have no trace");
            assert!(out.latest_decision.is_some());
        }
    }

    #[test]
    fn unanimous_input_decides_that_value() {
        for v in Bit::ALL {
            let out = Threads.run(
                &Scenario::new(Partition::fig1_left(), Algorithm::CommonCoin)
                    .proposals_all(v)
                    .seed(1),
            );
            assert!(out.all_correct_decided);
            assert_eq!(out.decided_value, Some(v), "validity");
        }
    }

    #[test]
    fn headline_crash_pattern_one_survivor_decides() {
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        let out = Threads.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
                .proposals_split(4)
                .crashes(plan)
                .seed(2),
        );
        assert!(out.all_correct_decided);
        assert_eq!(out.deciders(), 1);
        assert_eq!(out.crashed.len(), 6);
        assert!(out.decisions[2].is_some(), "p3 is the survivor");
    }

    #[test]
    fn stalled_minority_is_stopped_safely() {
        // Pure message-passing, majority crashed: never decides; the
        // timeout stops it without a wrong decision.
        let crashed = ProcessSet::from_indices(4, [0, 1]);
        let out = Threads.run(
            &Scenario::new(Partition::singletons(4), Algorithm::LocalCoin)
                .proposals_split(2)
                .crashes(CrashPlan::new().crash_set_at_start(&crashed))
                .timeout(Duration::from_millis(300))
                .seed(3),
        );
        assert!(!out.all_correct_decided);
        assert_eq!(out.deciders(), 0);
        assert!(out.agreement_holds());
    }

    #[test]
    fn invariants_hold_under_real_races() {
        use ofa_core::InvariantChecker;
        for seed in 0..5 {
            let checker = Arc::new(InvariantChecker::new());
            let out = Threads.run(
                &Scenario::new(Partition::even(8, 3), Algorithm::LocalCoin)
                    .proposals_split(4)
                    .observer(checker.clone())
                    .seed(seed),
            );
            assert!(out.all_correct_decided, "seed {seed}");
            checker.assert_clean();
        }
    }

    #[test]
    fn crash_mid_broadcast_is_safe() {
        for step in [1u64, 3, 6] {
            let out = Threads.run(
                &Scenario::new(Partition::fig1_left(), Algorithm::LocalCoin)
                    .proposals_split(4)
                    .crashes(CrashPlan::new().crash_at_step(ProcessId(0), step))
                    .seed(step),
            );
            assert!(out.agreement_holds());
            assert!(out.all_correct_decided, "step {step}");
        }
    }

    #[test]
    fn crash_at_round_two() {
        let out = Threads.run(
            &Scenario::new(Partition::even(6, 2), Algorithm::LocalCoin)
                .proposals_split(3)
                .crashes(CrashPlan::new().crash_at_round(ProcessId(5), 2))
                .seed(9),
        );
        assert!(out.agreement_holds());
        // p6 either decided in round 1 or crashed at round 2.
        let p6 = &out.decisions[5];
        assert!(p6.is_none() || p6.unwrap().round < 2);
    }

    #[test]
    fn scripted_coin_override_applies() {
        // A constant-1 common coin plus unanimous-1 proposals: decided
        // value must be 1 (validity would force it anyway; this checks
        // the CoinSpec plumbing end to end).
        let out = Threads.run(
            &Scenario::new(Partition::even(4, 2), Algorithm::CommonCoin)
                .proposals_all(Bit::One)
                .coin(CoinSpec::Constant(Bit::One))
                .seed(4),
        );
        assert!(out.all_correct_decided);
        assert_eq!(out.decided_value, Some(Bit::One));
    }

    #[test]
    fn timed_crash_fires_even_while_blocked() {
        use ofa_scenario::VirtualTime;
        // Crash p1 1ms (1000 ticks-as-µs) in; a stalled singleton system
        // keeps it blocked in recv, so only the timed trigger can fire.
        let crashed = ProcessSet::from_indices(3, [1, 2]);
        let out = Threads.run(
            &Scenario::new(Partition::singletons(3), Algorithm::LocalCoin)
                .proposals_split(1)
                .crashes(
                    CrashPlan::new()
                        .crash_at_time(ProcessId(0), VirtualTime::from_ticks(1_000))
                        .crash_set_at_start(&crashed),
                )
                .timeout(Duration::from_millis(400))
                .seed(8),
        );
        assert!(out.crashed.contains(ProcessId(0)), "timed crash must fire");
        assert_eq!(out.deciders(), 0);
    }

    #[test]
    #[should_panic(expected = "no virtual clock")]
    fn traffic_workloads_are_rejected() {
        // Arrival processes are pure functions of virtual time; real
        // threads have none, so the backend refuses rather than serving
        // a silently different (wall-clock) workload.
        use ofa_core::{ArrivalProcess, TrafficSpec};
        let _ = Threads.run(
            &Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin).replicated_log_traffic(
                Algorithm::LocalCoin,
                2,
                TrafficSpec {
                    arrival: ArrivalProcess::Periodic {
                        period: 100,
                        phase: 0,
                    },
                    clients: 4,
                    queue_cap: 8,
                    batch_max: 4,
                    batch_min: 0,
                },
            ),
        );
    }
}
