//! # `ofa-runtime` — real-concurrency runtime for hybrid-model consensus
//!
//! Runs the `ofa-core` algorithms with *genuine* parallelism: one OS
//! thread per process, crossbeam channels as the reliable asynchronous
//! network, and the real lock-free `ofa-sharedmem` consensus objects as
//! each cluster's memory. This is the deployment the paper motivates —
//! each cluster a multicore address space, message passing in between —
//! collapsed onto one machine.
//!
//! Where `ofa-sim` gives determinism and virtual time, this runtime gives
//! real races and wall-clock latency. Both execute the *same* protocol
//! code.
//!
//! # Examples
//!
//! ```
//! use ofa_core::{Algorithm, Bit};
//! use ofa_runtime::RuntimeBuilder;
//! use ofa_topology::Partition;
//!
//! let out = RuntimeBuilder::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(3)
//!     .seed(7)
//!     .run();
//! assert!(out.all_correct_decided);
//! assert!(out.agreement_holds());
//! ```

#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ofa_coins::{CommonCoin, LocalCoin, SeededCommonCoin, SeededLocalCoin};
use ofa_core::{
    Algorithm, Bit, Decision, Env, Halt, Msg, MsgKind, ObsEvent, Observer, ProtocolConfig,
};
use ofa_metrics::{CounterSnapshot, Counters};
use ofa_sharedmem::{MemoryBank, Slot};
use ofa_topology::{Partition, ProcessId, ProcessSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long `recv` sleeps between checks of the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// The environment backing one process thread.
struct ThreadEnv {
    me: ProcessId,
    partition: Partition,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    memory: MemoryBank,
    counters: Arc<Counters>,
    common_coin: Arc<dyn CommonCoin>,
    local_coin: SeededLocalCoin,
    observer: Option<Arc<dyn Observer>>,
    stop: Arc<AtomicBool>,
    crash_at_step: Option<u64>,
    crash_at_round: Option<u64>,
    steps: u64,
    crashed: bool,
}

impl ThreadEnv {
    fn step(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if let Some(k) = self.crash_at_step {
            if self.steps > k {
                self.crashed = true;
            }
        }
        if self.crashed {
            return Err(Halt::Crashed);
        }
        Ok(())
    }
}

impl Env for ThreadEnv {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn send(&mut self, to: ProcessId, msg: MsgKind) -> Result<(), Halt> {
        self.step()?;
        self.counters.inc_messages_sent(1);
        // A closed channel means the receiver finished — the message is
        // simply dropped, like a message to a decided process.
        let _ = self.senders[to.index()].send(Msg {
            from: self.me,
            kind: msg,
        });
        Ok(())
    }

    fn broadcast(&mut self, msg: MsgKind) -> Result<(), Halt> {
        self.counters.inc_broadcasts(1);
        let n = self.partition.n();
        for j in 0..n {
            self.send(ProcessId(j), msg)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, Halt> {
        self.step()?;
        loop {
            match self.receiver.recv_timeout(POLL_INTERVAL) {
                Ok(m) => {
                    self.counters.inc_messages_delivered(1);
                    return Ok(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(Halt::Stopped);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(Halt::Stopped),
            }
        }
    }

    fn cluster_propose(&mut self, slot: Slot, enc: u64) -> Result<u64, Halt> {
        self.step()?;
        self.counters.inc_cluster_proposes(1);
        Ok(self
            .memory
            .memory_of(&self.partition, self.me)
            .propose_raw(slot, enc))
    }

    fn local_coin(&mut self) -> Result<Bit, Halt> {
        self.step()?;
        self.counters.inc_local_coin_flips(1);
        Ok(Bit::from(self.local_coin.flip()))
    }

    fn common_coin(&mut self, round: u64) -> Result<Bit, Halt> {
        self.step()?;
        self.counters.inc_common_coin_queries(1);
        Ok(Bit::from(self.common_coin.bit(round)))
    }

    fn observe(&mut self, event: ObsEvent) {
        match event {
            ObsEvent::RoundStart { instance, round } => {
                self.counters.inc_rounds_started(1);
                if let Some(r) = self.crash_at_round {
                    if instance == 0 && round >= r {
                        self.crashed = true;
                    }
                }
            }
            ObsEvent::Deciding { relayed, .. } => {
                if relayed {
                    self.counters.inc_decide_relays(1);
                } else {
                    self.counters.inc_decisions(1);
                }
            }
            _ => {}
        }
        if let Some(obs) = &self.observer {
            obs.on_event(self.me, &event);
        }
    }
}

/// Builder for one real-threaded consensus execution.
pub struct RuntimeBuilder {
    partition: Partition,
    algorithm: Algorithm,
    config: ProtocolConfig,
    proposals: Vec<Bit>,
    seed: u64,
    crash_at_step: HashMap<ProcessId, u64>,
    crash_at_round: HashMap<ProcessId, u64>,
    observer: Option<Arc<dyn Observer>>,
    timeout: Duration,
}

impl fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("partition", &self.partition)
            .field("algorithm", &self.algorithm)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl RuntimeBuilder {
    /// Starts a builder with the paper's configuration, alternating
    /// proposals, a 256-round cap, and a 10-second wall-clock timeout.
    pub fn new(partition: Partition, algorithm: Algorithm) -> Self {
        let n = partition.n();
        RuntimeBuilder {
            partition,
            algorithm,
            config: ProtocolConfig::paper().with_max_rounds(256),
            proposals: (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
            seed: 0,
            crash_at_step: HashMap::new(),
            crash_at_round: HashMap::new(),
            observer: None,
            timeout: Duration::from_secs(10),
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets every process's proposal.
    pub fn proposals(mut self, proposals: Vec<Bit>) -> Self {
        self.proposals = proposals;
        self
    }

    /// All processes propose `v`.
    pub fn proposals_all(mut self, v: Bit) -> Self {
        self.proposals = vec![v; self.partition.n()];
        self
    }

    /// First `ones` processes propose 1, the rest 0.
    pub fn proposals_split(mut self, ones: usize) -> Self {
        let n = self.partition.n();
        self.proposals = (0..n).map(|i| Bit::from(i < ones)).collect();
        self
    }

    /// Seeds the coins.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Crashes `p` before its first step.
    pub fn crash_at_start(mut self, p: ProcessId) -> Self {
        self.crash_at_step.insert(p, 0);
        self
    }

    /// Crashes `p` at its `k`-th environment call (mid-broadcast crashes
    /// produce partial deliveries, as in the paper's broadcast macro).
    pub fn crash_at_step(mut self, p: ProcessId, k: u64) -> Self {
        self.crash_at_step.insert(p, k);
        self
    }

    /// Crashes `p` when it enters round `r`.
    pub fn crash_at_round(mut self, p: ProcessId, r: u64) -> Self {
        self.crash_at_round.insert(p, r);
        self
    }

    /// Crashes every member of `set` from the start.
    pub fn crash_set_at_start(mut self, set: &ProcessSet) -> Self {
        for p in set {
            self.crash_at_step.insert(p, 0);
        }
        self
    }

    /// Attaches an observer (e.g. `ofa_core::InvariantChecker`).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the wall-clock deadline after which undecided processes are
    /// stopped (indulgence: they stop *without* deciding).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Runs the execution and collects the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the proposal vector length differs from `n` or a process
    /// thread panics (a bug, not a modeled fault).
    pub fn run(self) -> RunOutcome {
        let n = self.partition.n();
        assert_eq!(
            self.proposals.len(),
            n,
            "need one proposal per process (got {} for n={n})",
            self.proposals.len()
        );
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let memory = MemoryBank::for_partition(&self.partition);
        let counters: Vec<Arc<Counters>> = (0..n).map(|_| Arc::new(Counters::new())).collect();
        let common_coin: Arc<dyn CommonCoin> =
            Arc::new(SeededCommonCoin::new(self.seed ^ 0xC0_1D_5E_ED));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let (done_tx, done_rx) = unbounded::<(usize, Result<Decision, Halt>, Duration)>();
        let mut handles = Vec::with_capacity(n);
        for (i, receiver) in receivers.into_iter().enumerate() {
            let mut env = ThreadEnv {
                me: ProcessId(i),
                partition: self.partition.clone(),
                senders: senders.clone(),
                receiver,
                memory: memory.clone(),
                counters: Arc::clone(&counters[i]),
                common_coin: Arc::clone(&common_coin),
                local_coin: SeededLocalCoin::for_process(self.seed, ProcessId(i)),
                observer: self.observer.clone(),
                stop: Arc::clone(&stop),
                crash_at_step: self.crash_at_step.get(&ProcessId(i)).copied(),
                crash_at_round: self.crash_at_round.get(&ProcessId(i)).copied(),
                steps: 0,
                crashed: false,
            };
            let algorithm = self.algorithm;
            let config = self.config;
            let proposal = self.proposals[i];
            let done_tx = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ofa-p{}", i + 1))
                    .spawn(move || {
                        let result = algorithm.run(&mut env, proposal, &config);
                        let _ = done_tx.send((i, result, started.elapsed()));
                    })
                    .expect("spawn process thread"),
            );
        }
        drop(done_tx);
        drop(senders);

        // Collect results; on deadline, raise the stop flag so blocked
        // processes bail out with Halt::Stopped.
        let mut results: Vec<Option<(Result<Decision, Halt>, Duration)>> = vec![None; n];
        let mut collected = 0;
        let deadline = started + self.timeout;
        while collected < n {
            let now = Instant::now();
            let wait = deadline.saturating_duration_since(now).max(POLL_INTERVAL);
            match done_rx.recv_timeout(wait) {
                Ok((i, res, at)) => {
                    results[i] = Some((res, at));
                    collected += 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    stop.store(true, Ordering::SeqCst);
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if Instant::now() >= deadline {
                stop.store(true, Ordering::SeqCst);
            }
        }
        for h in handles {
            h.join().expect("process thread panicked");
        }

        let mut decisions = Vec::with_capacity(n);
        let mut halts = Vec::with_capacity(n);
        let mut crashed = ProcessSet::empty(n);
        let mut latest_decision = Duration::ZERO;
        for (i, slot) in results.into_iter().enumerate() {
            let (res, at) = slot.expect("every thread reports");
            match res {
                Ok(d) => {
                    decisions.push(Some(d));
                    halts.push(None);
                    latest_decision = latest_decision.max(at);
                }
                Err(h) => {
                    decisions.push(None);
                    halts.push(Some(h));
                    if h == Halt::Crashed {
                        crashed.insert(ProcessId(i));
                    }
                }
            }
        }
        let decided_value = decisions.iter().flatten().map(|d| d.value).next();
        let all_correct_decided = decisions
            .iter()
            .zip(halts.iter())
            .all(|(d, h)| d.is_some() || *h == Some(Halt::Crashed));
        let per_process: Vec<CounterSnapshot> = counters.iter().map(|c| c.snapshot()).collect();
        RunOutcome {
            decisions,
            halts,
            crashed,
            decided_value,
            all_correct_decided,
            latest_decision,
            elapsed: started.elapsed(),
            counters: CounterSnapshot::merge_all(per_process.iter().copied()),
            per_process,
            sm_proposes: memory.total_proposes(),
            sm_objects: memory.total_objects(),
        }
    }
}

/// Outcome of one real-threaded execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-process decision (`None` for crashed/stopped processes).
    pub decisions: Vec<Option<Decision>>,
    /// Per-process halt reason (`None` for deciders).
    pub halts: Vec<Option<Halt>>,
    /// Processes that ended crashed.
    pub crashed: ProcessSet,
    /// The first decided value observed, if any.
    pub decided_value: Option<Bit>,
    /// `true` iff every non-crashed process decided.
    pub all_correct_decided: bool,
    /// Wall-clock time of the last decision.
    pub latest_decision: Duration,
    /// Total wall-clock duration of the run.
    pub elapsed: Duration,
    /// Merged counters.
    pub counters: CounterSnapshot,
    /// Per-process counters.
    pub per_process: Vec<CounterSnapshot>,
    /// Total consensus-object invocations across cluster memories.
    pub sm_proposes: u64,
    /// Consensus objects materialized across cluster memories.
    pub sm_objects: usize,
}

impl RunOutcome {
    /// `true` iff no two processes decided different values.
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<Bit> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(d.value),
                Some(v) if v != d.value => return false,
                _ => {}
            }
        }
        true
    }

    /// Number of processes that decided.
    pub fn deciders(&self) -> usize {
        self.decisions.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_processes_fig1_right_agree() {
        for seed in 0..3 {
            let out = RuntimeBuilder::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(3)
                .seed(seed)
                .run();
            assert!(out.all_correct_decided, "seed {seed}");
            assert!(out.agreement_holds(), "seed {seed}");
            assert_eq!(out.deciders(), 7);
        }
    }

    #[test]
    fn unanimous_input_decides_that_value() {
        for v in Bit::ALL {
            let out = RuntimeBuilder::new(Partition::fig1_left(), Algorithm::CommonCoin)
                .proposals_all(v)
                .seed(1)
                .run();
            assert!(out.all_correct_decided);
            assert_eq!(out.decided_value, Some(v), "validity");
        }
    }

    #[test]
    fn headline_crash_pattern_one_survivor_decides() {
        let out = RuntimeBuilder::new(Partition::fig1_right(), Algorithm::CommonCoin)
            .proposals_split(4)
            .crash_at_start(ProcessId(0))
            .crash_at_start(ProcessId(1))
            .crash_at_start(ProcessId(3))
            .crash_at_start(ProcessId(4))
            .crash_at_start(ProcessId(5))
            .crash_at_start(ProcessId(6))
            .seed(2)
            .run();
        assert!(out.all_correct_decided);
        assert_eq!(out.deciders(), 1);
        assert_eq!(out.crashed.len(), 6);
        assert!(out.decisions[2].is_some(), "p3 is the survivor");
    }

    #[test]
    fn stalled_minority_is_stopped_safely() {
        // Pure message-passing, majority crashed: never decides; the
        // timeout stops it without a wrong decision.
        let crashed = ProcessSet::from_indices(4, [0, 1]);
        let out = RuntimeBuilder::new(Partition::singletons(4), Algorithm::LocalCoin)
            .proposals_split(2)
            .crash_set_at_start(&crashed)
            .timeout(Duration::from_millis(300))
            .seed(3)
            .run();
        assert!(!out.all_correct_decided);
        assert_eq!(out.deciders(), 0);
        assert!(out.agreement_holds());
    }

    #[test]
    fn invariants_hold_under_real_races() {
        use ofa_core::InvariantChecker;
        for seed in 0..5 {
            let checker = Arc::new(InvariantChecker::new());
            let out = RuntimeBuilder::new(Partition::even(8, 3), Algorithm::LocalCoin)
                .proposals_split(4)
                .observer(checker.clone())
                .seed(seed)
                .run();
            assert!(out.all_correct_decided, "seed {seed}");
            checker.assert_clean();
        }
    }

    #[test]
    fn crash_mid_broadcast_is_safe() {
        for step in [1u64, 3, 6] {
            let out = RuntimeBuilder::new(Partition::fig1_left(), Algorithm::LocalCoin)
                .proposals_split(4)
                .crash_at_step(ProcessId(0), step)
                .seed(step)
                .run();
            assert!(out.agreement_holds());
            assert!(out.all_correct_decided, "step {step}");
        }
    }

    #[test]
    fn crash_at_round_two() {
        let out = RuntimeBuilder::new(Partition::even(6, 2), Algorithm::LocalCoin)
            .proposals_split(3)
            .crash_at_round(ProcessId(5), 2)
            .seed(9)
            .run();
        assert!(out.agreement_holds());
        // p6 either decided in round 1 or crashed at round 2.
        let p6 = &out.decisions[5];
        assert!(p6.is_none() || p6.unwrap().round < 2);
    }
}
