//! ESCALE — event-driven engine hot path.
//!
//! Times a reduced-scale cell of the engine scale sweep (`n = 512`); the
//! full sweep up to `n = 50 000` is produced by the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use ofa_bench::experiments::escale;
use ofa_scenario::Backend;
use ofa_sim::Sim;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("escale_engine");
    g.sample_size(10);
    g.bench_function("n512", |b| {
        let scenario = escale::scenario(512);
        b.iter(|| Sim.run(&scenario))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
