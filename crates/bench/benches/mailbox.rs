//! Micro-benchmarks of the mailbox hot path under a relay storm.
//!
//! The multivalued dissemination layer makes every process re-broadcast
//! the stage proposer's payload, so at `n` replicas a mailbox absorbs
//! `O(n)` duplicate APP messages per stage plus a wave of future-slot
//! phase traffic. These benches pin the cost of exactly that traffic —
//! `accept` (route one delivered message), `buffer` (route without
//! serving), `take_buffered` (serve a buffered slot), and `absorb_apps`
//! (drain one instance's stash in place) — so the allocation work on
//! this path (pre-sized slot queues, `Vec`-free absorption, recycled
//! outboxes upstream) is *measured*, not asserted.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ofa_core::{Bit, Mailbox, Msg, MsgKind, Payload, Phase};
use ofa_topology::ProcessId;

/// The storm size: one delivery per peer, like one `n = 256` exchange.
const STORM: usize = 256;

fn phase_msg(from: usize, instance: u64, round: u64) -> Msg {
    Msg {
        from: ProcessId(from),
        kind: MsgKind::Phase {
            instance,
            round,
            phase: Phase::One,
            est: Some(Bit::from(from.is_multiple_of(2))),
        },
    }
}

fn app_msg(from: usize, instance: u64, seq: u64) -> Msg {
    Msg {
        from: ProcessId(from),
        kind: MsgKind::App {
            instance,
            seq,
            payload: Payload::from_bytes(b"relayed-proposal").expect("fits"),
        },
    }
}

/// A relay storm as delivered by the network: the stage proposer's
/// payload re-broadcast by every peer (identical `(instance, seq)`, so
/// the stash must collapse them), interleaved with next-round phase
/// traffic that has to be buffered by slot.
fn storm() -> Vec<Msg> {
    (0..STORM)
        .flat_map(|i| [app_msg(i, 0, 3), phase_msg(i, 0, 2)])
        .collect()
}

fn bench_accept(c: &mut Criterion) {
    let msgs = storm();
    c.bench_function("mailbox_accept_relay_storm", |b| {
        b.iter_batched(
            Mailbox::new,
            |mut mb| {
                for msg in &msgs {
                    let served = mb.accept(*msg, 0, 1, Phase::One);
                    assert!(served.is_none(), "storm traffic is never current-slot");
                }
                mb
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_buffer(c: &mut Criterion) {
    let msgs = storm();
    c.bench_function("mailbox_buffer_relay_storm", |b| {
        b.iter_batched(
            Mailbox::new,
            |mut mb| {
                for msg in &msgs {
                    mb.buffer(*msg);
                }
                mb
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_take_buffered(c: &mut Criterion) {
    c.bench_function("mailbox_take_buffered_full_slot", |b| {
        b.iter_batched(
            || {
                let mut mb = Mailbox::new();
                for msg in storm() {
                    mb.buffer(msg);
                }
                mb
            },
            |mut mb| {
                // Serve the whole buffered round-2 queue.
                let mut served = 0;
                while mb.take_buffered(0, 2, Phase::One).is_some() {
                    served += 1;
                }
                assert_eq!(served, STORM);
                mb
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_absorb_apps(c: &mut Criterion) {
    c.bench_function("mailbox_absorb_apps_in_place", |b| {
        b.iter_batched(
            || {
                let mut mb = Mailbox::new();
                // Current-instance relays (collapsed by key) plus a
                // future instance's dissemination that must survive.
                for msg in storm() {
                    mb.buffer(msg);
                }
                for i in 0..8 {
                    mb.buffer(app_msg(i, 1, i as u64));
                }
                mb
            },
            |mut mb| {
                let mut seen = 0;
                mb.absorb_apps(0, |_| seen += 1);
                assert_eq!(seen, 1, "duplicates collapsed to one stash entry");
                mb
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_accept,
    bench_buffer,
    bench_take_buffered,
    bench_absorb_apps
);
criterion_main!(benches);
