//! E10 — Figure 2 domain validation.
//!
//! Times a reduced-scale regeneration of the experiment's table; the
//! full-scale table is produced by the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_fig2");
    g.sample_size(10);
    g.bench_function("table", |b| b.iter(ofa_bench::experiments::e10::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
