//! E6 — hybrid vs m&m comparison.
//!
//! Times a reduced-scale regeneration of the experiment's table; the
//! full-scale table is produced by the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_mm_compare");
    g.sample_size(10);
    g.bench_function("table", |b| b.iter(ofa_bench::experiments::e6::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
