//! Micro-benchmarks of the substrates backing the paper's premise that
//! intra-cluster shared-memory agreement is cheap: consensus-object
//! proposes, cluster-memory slot access, bitset amplification, and one
//! full simulated execution.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ofa_core::Algorithm;
use ofa_scenario::{Backend, Scenario};
use ofa_sharedmem::{CasConsensus, ClusterMemory, Slot};
use ofa_sim::Sim;
use ofa_topology::{Partition, ProcessId, ProcessSet};

fn bench_cas_consensus(c: &mut Criterion) {
    c.bench_function("cas_consensus_first_propose", |b| {
        b.iter_batched(
            CasConsensus::<u8>::new,
            |cons| cons.propose(1),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("cas_consensus_late_propose", |b| {
        let cons: CasConsensus<u8> = CasConsensus::new();
        cons.propose(0);
        b.iter(|| cons.propose(1))
    });
}

fn bench_cluster_memory(c: &mut Criterion) {
    c.bench_function("cluster_memory_new_slot_propose", |b| {
        let mem = ClusterMemory::new();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            mem.propose_raw(Slot::new(round, 1), 1)
        })
    });
    c.bench_function("cluster_memory_hot_slot_propose", |b| {
        let mem = ClusterMemory::new();
        mem.propose_raw(Slot::new(1, 1), 0);
        b.iter(|| mem.propose_raw(Slot::new(1, 1), 1))
    });
}

fn bench_amplification(c: &mut Criterion) {
    let part = Partition::even(64, 4);
    c.bench_function("bitset_cluster_amplification_n64", |b| {
        b.iter_batched(
            || ProcessSet::empty(64),
            |mut sup| {
                sup.union_with(part.cluster_members_of(ProcessId(7)));
                sup.is_majority_of(64)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_sim_run");
    g.sample_size(10);
    g.bench_function("fig1_right_common_coin", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Sim.run(
                &Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
                    .proposals_split(3)
                    .seed(seed),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cas_consensus,
    bench_cluster_memory,
    bench_amplification,
    bench_full_run
);
criterion_main!(benches);
