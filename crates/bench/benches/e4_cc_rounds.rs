//! E4 — common-coin decision rounds.
//!
//! Times a reduced-scale regeneration of the experiment's table; the
//! full-scale table is produced by the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_cc_rounds");
    g.sample_size(10);
    g.bench_function("table", |b| {
        b.iter(|| ofa_bench::experiments::e4::run(6, &[4, 8, 16]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
