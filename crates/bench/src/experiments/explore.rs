//! EXPLORE — the adversarial schedule explorer as a tracked workload.
//!
//! Runs a fixed-seed guided search (`ofa-explore`) over crash/churn/
//! loss/coin schedules against a lossy cluster-scale base scenario and
//! reports the whole trajectory, one row per generation: the
//! generation's best fitness (undecided processes, rounds, virtual-time
//! stretch), whether the global best improved, and the evaluation
//! throughput. The trajectory is a pure function of the explorer seed —
//! deterministic columns are identical across machines and worker
//! counts — so the table doubles as a regression pin on the search
//! itself, while the events/s column feeds the CI bench-trend gate.
//!
//! The experiment also *asserts* on what the search finds: the best
//! schedule must score at least the unmutated baseline, and no schedule
//! may violate agreement — the explorer hunting safety bugs and never
//! finding one is exactly the regression signal we want from CI.

use ofa_core::Algorithm;
use ofa_explore::{CorpusFilter, ExploreConfig, Explorer, GenRecord, Limits, SearchState};
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{DelayModel, Engine, Scenario};
use ofa_topology::Partition;
use std::path::Path;
use std::time::Instant;

/// The shape of one EXPLORE run.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// System size of the base schedule.
    pub n: usize,
    /// Candidates per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: u64,
    /// Explorer seed.
    pub seed: u64,
}

/// The full run: the corpus regime — `n = 10³` under 1 % base loss.
/// Sized for the single-threaded CI gate: a stuck candidate costs tens
/// of simulated megaevents, so 64 evaluations is minutes, not hours.
pub const FULL: Params = Params {
    n: 1_000,
    population: 8,
    generations: 8,
    seed: 1,
};

/// The CI smoke run: same axes, seconds of work.
pub const QUICK: Params = Params {
    n: 200,
    population: 8,
    generations: 6,
    seed: 1,
};

/// The search config a run uses (exposed so tests and the regression
/// corpus generator search exactly what the table tracks): split
/// proposals, `m = n/100` clusters, constant delay, 1 % base loss, and
/// a corpus filter admitting round-4+ or stuck schedules.
pub fn config(params: &Params) -> ExploreConfig {
    let n = params.n;
    // No event cap (same reasoning as NETSCALE): candidates terminate
    // via the round budget; the default 5M-event guard would truncate
    // cluster-scale runs into uniform "nobody decided" fitness noise.
    let base = Scenario::new(Partition::even(n, (n / 100).max(2)), Algorithm::CommonCoin)
        .proposals_split(n / 2)
        .seed(42)
        .delay(DelayModel::Constant(1_000))
        .loss_ppm(10_000)
        .max_rounds(12)
        .max_events(u64::MAX)
        .engine(Engine::EventDriven);
    ExploreConfig {
        seed: params.seed,
        population: params.population,
        generations: Some(params.generations),
        filter: CorpusFilter {
            min_rounds: Some(4),
            min_undecided: Some(1),
        },
        limits: Limits::for_n(n),
        ..ExploreConfig::new(base)
    }
}

const TITLE: &str = "EXPLORE: adversarial schedule search — guided mutation over crash/churn/\
                     loss/coin schedules, fixed seed, deterministic trajectory";
const COLUMNS: [&str; 9] = [
    "gen",
    "best slot",
    "undecided",
    "rounds",
    "stretch",
    "improved",
    "events",
    "wall [s]",
    "events/s",
];

/// Checks the invariants a finished (or paused) search must satisfy:
/// no agreement violation anywhere, and a best at least as bad as the
/// unmutated baseline.
fn assert_search(state: &SearchState) {
    if let Some(best) = &state.best {
        assert!(
            !best.fitness.violation,
            "explorer found an agreement violation — found schedule: {}",
            serde_json::to_string(&best.scenario).unwrap_or_else(|e| e.to_string())
        );
        assert!(
            Some(best.fitness) >= state.baseline,
            "global best {:?} scores below the baseline {:?}",
            best.fitness,
            state.baseline
        );
    }
    assert!(
        state.corpus.iter().all(|e| !e.fitness.violation),
        "corpus entry records an agreement violation"
    );
}

/// Renders the trajectory: one row per generation; `walls[i]` is the
/// wall-clock cost of history entry `offset + i` (entries replayed from
/// a resumed state have no wall measurement and show `—`).
fn build_table(history: &[GenRecord], offset: usize, walls: &[f64]) -> Table {
    let mut table = Table::new(TITLE, &COLUMNS);
    let mut prev_events = 0;
    for (i, rec) in history.iter().enumerate() {
        let gen_events = rec.events_spent - prev_events;
        prev_events = rec.events_spent;
        let wall = i.checked_sub(offset).and_then(|j| walls.get(j)).copied();
        table.row([
            rec.generation.to_string(),
            rec.gen_best_slot.to_string(),
            rec.gen_best.undecided.to_string(),
            rec.gen_best.max_round.to_string(),
            rec.gen_best.stretch.to_string(),
            rec.improved.to_string(),
            gen_events.to_string(),
            wall.map_or("—".to_string(), |w| fmt_f64(w, 2)),
            wall.map_or("—".to_string(), |w| {
                format!("{:.2e}", gen_events as f64 / w.max(f64::EPSILON))
            }),
        ]);
    }
    table
}

/// Runs the search to completion; returns the per-generation records
/// (for assertions) and the table.
///
/// # Panics
///
/// Panics if the search finds an agreement violation (a real safety
/// bug — the schedule is printed) or scores below its own baseline.
pub fn run(params: &Params) -> (Vec<GenRecord>, Table) {
    let mut explorer = Explorer::new(config(params));
    let mut walls = Vec::new();
    while !explorer.finished() {
        let t = Instant::now();
        explorer.step();
        walls.push(t.elapsed().as_secs_f64());
    }
    assert_search(explorer.state());
    let history = explorer.state().history.clone();
    let table = build_table(&history, 0, &walls);
    (history, table)
}

/// Resumable variant of [`run`] for the time-budgeted CI gate. The
/// explorer's own [`SearchState`] is the checkpoint: an expired
/// `deadline` saves it under `dir` at a generation boundary and returns
/// `paused = true`; the next invocation resumes the trajectory
/// bit-for-bit (deterministic columns of the finished table are
/// identical to a monolithic [`run`]).
///
/// # Panics
///
/// Same search assertions as [`run`], plus on unreadable/unwritable
/// state files.
pub fn run_resumable(
    params: &Params,
    dir: &Path,
    deadline: Instant,
) -> (Vec<GenRecord>, Table, bool) {
    let state_file = dir.join("explore_state.json");
    let mut explorer = match std::fs::read_to_string(&state_file) {
        Ok(text) => {
            let state: SearchState =
                serde_json::from_str(&text).expect("explore state file parses");
            Explorer::resume(config(params), state)
        }
        Err(_) => Explorer::new(config(params)),
    };
    let offset = explorer.state().history.len();
    let mut walls = Vec::new();
    let mut paused = false;
    while !explorer.finished() {
        if Instant::now() >= deadline {
            paused = true;
            break;
        }
        let t = Instant::now();
        explorer.step();
        walls.push(t.elapsed().as_secs_f64());
    }
    assert_search(explorer.state());
    let table = build_table(&explorer.state().history, offset, &walls);
    if paused {
        std::fs::create_dir_all(dir).expect("checkpoint state dir is writable");
        let json = serde_json::to_string(explorer.state()).expect("search state serializes");
        std::fs::write(&state_file, json).expect("state file is writable");
    } else {
        let _ = std::fs::remove_file(&state_file);
    }
    (explorer.state().history.clone(), table, paused)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Params = Params {
        n: 40,
        population: 4,
        generations: 3,
        seed: 5,
    };

    #[test]
    fn trajectory_is_deterministic() {
        let (a, table) = run(&TINY);
        let (b, _) = run(&TINY);
        assert_eq!(a, b, "same params, same trajectory");
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn resumable_search_matches_the_monolithic_trajectory() {
        let dir =
            std::env::temp_dir().join(format!("ofa-explore-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mono, _) = run(&TINY);
        let expired = Instant::now() - std::time::Duration::from_secs(1);
        let (rows, _, paused) = run_resumable(&TINY, &dir, expired);
        assert!(paused, "expired budget must pause");
        assert!(rows.is_empty());
        let generous = Instant::now() + std::time::Duration::from_secs(600);
        let (rows, table, paused) = run_resumable(&TINY, &dir, generous);
        assert!(!paused);
        assert_eq!(rows, mono, "resumed trajectory equals monolithic");
        assert_eq!(table.len(), 3);
        assert!(!dir.join("explore_state.json").exists(), "state cleans up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
