//! E5 — clustering collapses the local-coin algorithm's round count.
//!
//! §I claims clusters buy *efficiency*. For Algorithm 2 the mechanism is
//! visible in the round counter: with `m = 1`, the single cluster's
//! consensus object makes every estimate identical, so the algorithm
//! decides in round 1; with `m = n` it degenerates to pure Ben-Or, whose
//! local coins must align by luck — rounds grow with `n` under split
//! inputs. Intermediate `m` interpolates: fewer clusters ⇒ fewer distinct
//! estimates ⇒ faster convergence.
//!
//! Implemented as one [`Sweep`] per system size with one parameter-grid
//! variant per cluster count `m` — the clustering axis *is* the grid.

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Summary, Table};
use ofa_scenario::{Scenario, Sweep};
use ofa_sim::Sim;
use ofa_topology::Partition;

/// Seeds per configuration.
pub const TRIALS: u64 = 30;

/// System sizes exercised.
pub const SIZES: [usize; 4] = [4, 6, 8, 10];

/// Round cap (runs that hit it count as `capped`).
const CAP: u64 = 64;

/// Runs E5; returns `(m=1 means, m=n means)` per size plus the table.
pub fn run(trials: u64, sizes: &[usize]) -> (Vec<f64>, Vec<f64>, Table) {
    let mut table = Table::new(
        "E5: local-coin (Alg 2) mean decision rounds vs clustering — split proposals",
        &["n", "m=1", "m=2", "m=n/2", "m=n (Ben-Or)", "capped@m=n"],
    );
    let mut m1 = Vec::new();
    let mut mn = Vec::new();
    for &n in sizes {
        let ms = [1, 2, n / 2, n];
        let mut sweep = Sweep::new(
            Scenario::new(Partition::even(n, 1), Algorithm::LocalCoin)
                .proposals_split(n / 2)
                .max_rounds(CAP),
        )
        .seeds(0..trials);
        // Column values can coincide for small n (e.g. n=4 has m=2 twice);
        // register each distinct m once so every label maps to exactly
        // `trials` runs.
        let mut distinct = ms.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for m in distinct {
            sweep = sweep.vary(format!("m={m}"), move |sc| Scenario {
                partition: Partition::even(n, m.max(1)),
                ..sc
            });
        }
        let report = sweep.run(&Sim);

        let mut cells = vec![n.to_string()];
        let mut capped_at_mn = 0u64;
        for m in ms {
            let rows = report.variant(&format!("m={m}"));
            let rounds: Vec<f64> = rows
                .outcomes()
                .filter(|o| o.all_correct_decided)
                .map(|o| o.max_decision_round as f64)
                .collect();
            if m == n {
                capped_at_mn = rows.outcomes().filter(|o| !o.all_correct_decided).count() as u64;
            }
            let s = Summary::of(rounds.iter().copied());
            cells.push(fmt_f64(s.mean, 2));
            if m == 1 {
                m1.push(s.mean);
            }
            if m == n {
                mn.push(s.mean);
            }
        }
        cells.push(format!("{capped_at_mn}/{trials}"));
        table.row(cells);
    }
    (m1, mn, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_decides_in_one_round() {
        let (m1, _, _) = run(8, &[4, 6]);
        for mean in m1 {
            assert_eq!(mean, 1.0, "m=1: cluster pre-agreement forces round 1");
        }
    }

    #[test]
    fn pure_ben_or_needs_more_rounds_than_clustered() {
        let (m1, mn, _) = run(10, &[6, 8]);
        for (a, b) in m1.iter().zip(mn.iter()) {
            assert!(
                b >= a,
                "m=n should never beat m=1 on rounds (m1={a}, mn={b})"
            );
        }
        // And strictly worse somewhere.
        assert!(
            mn.iter().zip(m1.iter()).any(|(b, a)| b > a),
            "Ben-Or should pay extra rounds under split inputs: {mn:?}"
        );
    }
}
