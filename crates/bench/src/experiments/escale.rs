//! ESCALE — event-driven engine scale sweep (`n` up to 50 000).
//!
//! The paper's headline is *scalability*, but a thread-per-process
//! simulator cannot even represent the regime the claim is about: at
//! `n = 10 000` the conductor would need ten thousand OS threads and two
//! context switches per burst. This experiment runs the full
//! `ben_or_hybrid` protocol — every process broadcasting to all `n`,
//! cluster pre-agreement, real decide broadcasts — on the event-driven
//! engine ([`ofa_scenario::Engine::EventDriven`]) and reports per-`n`
//! wall-clock and scheduler-events-per-second, demonstrating cluster-scale
//! executions in seconds on one core.
//!
//! Workload: `m = n/100` clusters, unanimous proposals (the protocol's
//! deterministic one-round fast path, so work per cell is exactly
//! `3n²` messages: two phase broadcasts plus one decide broadcast per
//! process), constant network delay, zero per-send cost so broadcasts
//! collapse into single heap entries.

use ofa_core::{Algorithm, Bit};
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{Backend, CostModel, DelayModel, Engine, Scenario, VirtualTime};
use ofa_sim::Sim;
use ofa_topology::Partition;
use std::path::Path;
use std::time::Instant;

/// System sizes of the full sweep. The largest cells are minutes, not
/// seconds — the sweep is quadratic in `n` by construction (`3n²`
/// messages) — so CI uses [`QUICK_SIZES`].
pub const SIZES: [usize; 6] = [1_000, 2_000, 5_000, 10_000, 20_000, 50_000];

/// The CI smoke size: one `n = 5 000` run, a few seconds single-threaded.
pub const QUICK_SIZES: [usize; 1] = [5_000];

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRow {
    /// System size.
    pub n: usize,
    /// Scheduler events processed.
    pub events: u64,
    /// Wall-clock seconds for the whole run (single thread).
    pub wall_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
}

/// The scenario one cell runs (exposed so the CI gate and the criterion
/// bench time exactly what the table reports).
pub fn scenario(n: usize) -> Scenario {
    let m = (n / 100).max(1);
    Scenario::new(Partition::even(n, m), Algorithm::LocalCoin)
        .proposals_all(Bit::One)
        .seed(42)
        .delay(DelayModel::Constant(1_000))
        .costs(CostModel {
            send_cost: 0,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        })
        .max_rounds(16)
        .max_events(u64::MAX)
        .engine(Engine::EventDriven)
}

/// Runs the sweep over `sizes`; returns the rows (for assertions) and
/// the table.
///
/// # Panics
///
/// Panics if any cell fails to decide unanimously in round 1 — the
/// workload is deterministic, so anything else is an engine regression.
pub fn run(sizes: &[usize]) -> (Vec<ScaleRow>, Table) {
    let mut table = Table::new(
        "ESCALE: event-driven engine scale sweep — full ben_or_hybrid, m=n/100 clusters, \
         unanimous proposals, single thread",
        &["n", "events", "virtual end", "wall [s]", "events/s"],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let out = Sim.run(&scenario(n));
        assert!(
            out.all_correct_decided && out.agreement_holds(),
            "escale n={n}: engine failed to decide"
        );
        assert_eq!(out.deciders(), n, "escale n={n}: missing deciders");
        assert_eq!(
            out.max_decision_round, 1,
            "escale n={n}: unanimity must decide in round 1"
        );
        let wall_secs = out.elapsed.as_secs_f64();
        let events_per_sec = out.events_processed as f64 / wall_secs.max(f64::EPSILON);
        rows.push(ScaleRow {
            n,
            events: out.events_processed,
            wall_secs,
            events_per_sec,
        });
        table.row([
            n.to_string(),
            out.events_processed.to_string(),
            out.end_time.to_string(),
            fmt_f64(wall_secs, 2),
            format!("{events_per_sec:.2e}"),
        ]);
    }
    (rows, table)
}

/// Same columns as [`run`], assembled from done-file entries and
/// freshly finished cells alike.
fn sweep_row(table: &mut Table, rows: &mut Vec<ScaleRow>, n: usize, entry: (u64, u64, f64)) {
    let (events, end_ticks, wall_secs) = entry;
    let events_per_sec = events as f64 / wall_secs.max(f64::EPSILON);
    rows.push(ScaleRow {
        n,
        events,
        wall_secs,
        events_per_sec,
    });
    table.row([
        n.to_string(),
        events.to_string(),
        VirtualTime::from_ticks(end_ticks).to_string(),
        fmt_f64(wall_secs, 2),
        format!("{events_per_sec:.2e}"),
    ]);
}

/// Resumable variant of [`run`] for the time-budgeted CI gate. Each cell
/// runs as a chain of checkpointed legs ([`crate::resumable::run_cell`]);
/// when `deadline` passes mid-cell the in-flight snapshot plus a done
/// file of completed rows are left under `dir` and the function returns
/// `paused = true`, so the next invocation (the next scheduled CI run,
/// after restoring `dir`) picks up exactly where this one stopped. The
/// deterministic columns (`n`, `events`, virtual end) of every finished
/// row are identical to a monolithic [`run`]; only wall-clock columns
/// reflect the accumulated leg time.
///
/// # Panics
///
/// Same protocol assertions as [`run`], plus on unwritable state files.
pub fn run_resumable(
    sizes: &[usize],
    dir: &Path,
    deadline: Instant,
) -> (Vec<ScaleRow>, Table, bool) {
    let done_file = dir.join("escale_done.txt");
    // Lines of "n events end_ticks wall_secs" for cells finished by
    // earlier invocations of this sweep.
    let mut done: Vec<(usize, u64, u64, f64)> = std::fs::read_to_string(&done_file)
        .map(|text| {
            text.lines()
                .filter_map(|line| {
                    let mut it = line.split_whitespace();
                    Some((
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let mut table = Table::new(
        "ESCALE: event-driven engine scale sweep — full ben_or_hybrid, m=n/100 clusters, \
         unanimous proposals, single thread",
        &["n", "events", "virtual end", "wall [s]", "events/s"],
    );
    let mut rows = Vec::new();
    let mut paused = false;
    for &n in sizes {
        let entry = if let Some(&(_, events, end, wall)) = done.iter().find(|d| d.0 == n) {
            (events, end, wall)
        } else {
            let cell = crate::resumable::run_cell(
                dir,
                &format!("escale_{n}"),
                &scenario(n),
                1_000,
                deadline,
            );
            let Some(out) = cell.outcome else {
                paused = true;
                break;
            };
            assert!(
                out.all_correct_decided && out.agreement_holds(),
                "escale n={n}: engine failed to decide"
            );
            assert_eq!(out.deciders(), n, "escale n={n}: missing deciders");
            assert_eq!(
                out.max_decision_round, 1,
                "escale n={n}: unanimity must decide in round 1"
            );
            let entry = (out.events_processed, out.end_time.ticks(), cell.wall_secs);
            done.push((n, entry.0, entry.1, entry.2));
            std::fs::create_dir_all(dir).expect("checkpoint state dir is writable");
            let text: String = done
                .iter()
                .map(|(n, e, end, w)| format!("{n} {e} {end} {w}\n"))
                .collect();
            std::fs::write(&done_file, text).expect("done file is writable");
            entry
        };
        sweep_row(&mut table, &mut rows, n, entry);
    }
    if !paused {
        let _ = std::fs::remove_file(&done_file);
    }
    (rows, table, paused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cells_complete_and_report_throughput() {
        let (rows, table) = run(&[200, 400]);
        assert_eq!(table.len(), 2);
        assert_eq!(rows[0].events, 3 * 200 * 200);
        assert_eq!(rows[1].events, 3 * 400 * 400);
        assert!(rows.iter().all(|r| r.events_per_sec > 0.0));
    }

    #[test]
    fn resumable_sweep_matches_the_monolithic_rows() {
        let dir = std::env::temp_dir().join(format!("ofa-escale-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mono, _) = run(&[200, 300]);
        // A budget that expired before the sweep started: the first cell
        // pauses after one leg and the sweep reports no finished rows.
        let expired = Instant::now() - std::time::Duration::from_secs(1);
        let (rows, _, paused) = run_resumable(&[200, 300], &dir, expired);
        assert!(paused, "expired budget must pause");
        assert!(rows.is_empty());
        // The next invocation, given time, completes the sweep with the
        // same deterministic columns as the monolithic run.
        let generous = Instant::now() + std::time::Duration::from_secs(600);
        let (rows, table, paused) = run_resumable(&[200, 300], &dir, generous);
        assert!(!paused);
        assert_eq!(table.len(), 2);
        assert_eq!(rows.len(), mono.len());
        for (a, b) in mono.iter().zip(rows.iter()) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.events, b.events);
        }
        assert!(!dir.join("escale_done.txt").exists(), "state cleans up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
