//! SMRSCALE — replicated-KV scale sweep on the event-driven engine.
//!
//! PR 3's `ESCALE` proved single-shot binary consensus scales to
//! `n = 50 000` on the event-driven engine; this experiment proves the
//! *full stack* does: repeated multivalued consensus (the
//! [`ofa_scenario::Body::ReplicatedLog`] workload, i.e. `ofa-smr`'s
//! replicated key-value store) committing real command logs at
//! `n >= 5 000` replicas — a regime the thread-per-process conductor
//! cannot even represent, and that the old eager-relay dissemination
//! (`Θ(n³)` messages) made unreachable at any engine speed.
//!
//! Workload: `m = n/100` clusters, one distinct `PUT` per replica,
//! `SLOTS` log slots, constant network delay, zero per-send cost so
//! broadcasts collapse into single heap entries. Every cell verifies the
//! replicas' committed logs and KV states byte-for-byte (via the
//! [`LogCollector`] digests), not just the binary outcome.

use ofa_core::{Algorithm, Observer};
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{Backend, CostModel, DelayModel, Engine, Scenario};
use ofa_sim::Sim;
use ofa_smr::{encode_queues, Command, LogCollector};
use ofa_topology::{Partition, ProcessId};
use std::sync::Arc;

/// System sizes of the full sweep. Quadratic work per cell (each stage
/// is an all-to-all exchange), so the biggest cells are minutes; CI uses
/// [`QUICK_SIZES`].
pub const SIZES: [usize; 4] = [1_000, 2_000, 5_000, 10_000];

/// The CI smoke size: one `n = 5 000` replicated-KV run.
pub const QUICK_SIZES: [usize; 1] = [5_000];

/// Log slots committed per cell.
pub const SLOTS: u64 = 2;

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SmrScaleRow {
    /// System size (replica count).
    pub n: usize,
    /// Scheduler events processed.
    pub events: u64,
    /// Binary stages the whole run needed (summed over slots, from p1).
    pub stages: u64,
    /// Wall-clock seconds for the whole run (single thread).
    pub wall_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
}

/// The scenario one cell runs (exposed so the CI gate and tests time
/// exactly what the table reports).
pub fn scenario(n: usize) -> Scenario {
    let m = (n / 100).max(1);
    let commands: Vec<Vec<Command>> = (0..n)
        .map(|i| vec![Command::put(&format!("k{}", i % 509), &format!("v{i}"))])
        .collect();
    // Common coin: stage votes are inherently mixed (the proposer's
    // cluster votes 1, the rest 0), and with m equal clusters the local
    // coin needs rounds growing with m to converge — the common coin
    // decides in O(1) expected rounds regardless of the split.
    Scenario::new(Partition::even(n, m), Algorithm::CommonCoin)
        .replicated_log(Algorithm::CommonCoin, SLOTS, encode_queues(&commands))
        .seed(42)
        .delay(DelayModel::Constant(1_000))
        .costs(CostModel {
            send_cost: 0,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        })
        .max_rounds(64)
        .max_events(u64::MAX)
        .engine(Engine::EventDriven)
}

/// Runs the sweep over `sizes`; returns the rows (for assertions) and
/// the table.
///
/// # Panics
///
/// Panics if any cell fails to commit identical logs/states at every
/// replica — the workload is deterministic, so anything else is an
/// engine or reduction regression.
pub fn run(sizes: &[usize]) -> (Vec<SmrScaleRow>, Table) {
    let mut table = Table::new(
        "SMRSCALE: replicated-KV scale sweep — multivalued consensus over the event-driven \
         engine, m=n/100 clusters, one PUT per replica, single thread",
        &[
            "n",
            "slots",
            "stages",
            "events",
            "virtual end",
            "wall [s]",
            "events/s",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let collector = Arc::new(LogCollector::new(n));
        let out = Sim.run(&scenario(n).observer(Arc::clone(&collector) as Arc<dyn Observer>));
        assert_eq!(
            out.engine_used,
            Some(Engine::EventDriven),
            "smrscale n={n}: must run on the event-driven engine"
        );
        assert!(
            out.all_correct_decided && out.agreement_holds(),
            "smrscale n={n}: run failed to decide"
        );
        assert_eq!(out.deciders(), n, "smrscale n={n}: missing deciders");
        // Full-stack check: every replica committed the same log and
        // reached the same KV state (reports are O(slots) each, so
        // checking all n is cheap next to the run itself).
        let reference = collector
            .report(ProcessId(0), SLOTS)
            .expect("p1 committed all slots");
        assert_eq!(reference.log.len(), SLOTS as usize);
        for i in 1..n {
            let r = collector
                .report(ProcessId(i), SLOTS)
                .unwrap_or_else(|| panic!("smrscale n={n}: p{} incomplete", i + 1));
            assert_eq!(r.log, reference.log, "smrscale n={n}: log diverged");
            assert_eq!(r.digest, reference.digest, "smrscale n={n}: state diverged");
        }
        let stages: u64 = reference.stages.iter().sum();
        let wall_secs = out.elapsed.as_secs_f64();
        let events_per_sec = out.events_processed as f64 / wall_secs.max(f64::EPSILON);
        rows.push(SmrScaleRow {
            n,
            events: out.events_processed,
            stages,
            wall_secs,
            events_per_sec,
        });
        table.row([
            n.to_string(),
            SLOTS.to_string(),
            stages.to_string(),
            out.events_processed.to_string(),
            out.end_time.to_string(),
            fmt_f64(wall_secs, 2),
            format!("{events_per_sec:.2e}"),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cells_complete_and_agree() {
        let (rows, table) = run(&[100, 200]);
        assert_eq!(table.len(), 2);
        assert!(rows.iter().all(|r| r.events > 0 && r.events_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.stages >= SLOTS));
    }
}
