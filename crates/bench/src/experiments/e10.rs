//! E10 — Figure 2: the m&m uniform shared-memory domain example.
//!
//! The appendix lists, for the 5-vertex graph of Figure 2, the domain
//! family `S1 = {p1,p2}`, `S2 = {p1,p2,p3}`, `S3 = {p2,p3,p4,p5}`,
//! `S4 = S5 = {p3,p4,p5}`. E10 recomputes the family from the graph and
//! checks it verbatim, alongside each vertex's degree `α_i` and m&m
//! invocation count `α_i + 1`.

use ofa_metrics::Table;
use ofa_topology::{MmGraph, ProcessId};

/// The paper's expected domain renderings, 1-based.
pub const PAPER_DOMAINS: [&str; 5] = [
    "{p1,p2}",
    "{p1,p2,p3}",
    "{p2,p3,p4,p5}",
    "{p3,p4,p5}",
    "{p3,p4,p5}",
];

/// Runs E10; returns whether all domains matched and the table.
pub fn run() -> (bool, Table) {
    let g = MmGraph::fig2();
    // The verbatim check below must cover every vertex: a size mismatch
    // would silently shrink the zip and vacuously report all_match.
    assert_eq!(PAPER_DOMAINS.len(), g.n(), "one expected domain per vertex");
    let mut table = Table::new(
        "E10: Figure 2 m&m domains recomputed from the graph",
        &[
            "memory",
            "computed S_i",
            "paper S_i",
            "match",
            "degree a_i",
            "inv/phase",
        ],
    );
    let mut all_match = true;
    for (i, paper_domain) in PAPER_DOMAINS.iter().enumerate() {
        let p = ProcessId(i);
        let computed = g.domain(p).to_string();
        let matches = computed == *paper_domain;
        all_match &= matches;
        table.row([
            format!("S{}", i + 1),
            computed,
            paper_domain.to_string(),
            if matches { "yes" } else { "NO" }.to_string(),
            g.degree(p).to_string(),
            g.invocations_per_phase(p).to_string(),
        ]);
    }
    (all_match, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_match_the_paper() {
        let (ok, t) = run();
        assert!(ok, "{t}");
        assert_eq!(t.len(), 5);
        // The appendix's S4 = S5 coincidence.
        assert_eq!(t.cell(3, 1), t.cell(4, 1));
    }
}
