//! E8 — the fault-tolerance frontier: "consensus despite a majority of
//! crashes" (§I, §V).
//!
//! For several partition shapes, compute the analytic frontier (maximum
//! crash count with a surviving-cover witness) and validate it
//! empirically: the witness pattern decides; an equally-sized pattern
//! violating the predicate stalls. The classical message-passing bound
//! `⌊(n-1)/2⌋` is shown for contrast.

use ofa_core::Algorithm;
use ofa_metrics::Table;
use ofa_scenario::{Backend, CrashPlan, Scenario};
use ofa_sim::Sim;
use ofa_topology::{predicate, Partition, ProcessSet};

/// Partition shapes exercised.
pub fn shapes() -> Vec<(String, Partition)> {
    vec![
        ("fig1-left {3,2,2}".into(), Partition::fig1_left()),
        ("fig1-right {1,4,2}".into(), Partition::fig1_right()),
        (
            "{6,1,1,1,1} n=10".into(),
            Partition::from_sizes(&[6, 1, 1, 1, 1]).unwrap(),
        ),
        ("even(8,4)".into(), Partition::even(8, 4)),
        ("singletons(7)".into(), Partition::singletons(7)),
        ("single(9)".into(), Partition::single_cluster(9)),
    ]
}

/// Runs E8; returns `(analytic max crashes, witness decided, breaker
/// stalled)` per shape and the table.
pub fn run() -> (Vec<(usize, bool, bool)>, Table) {
    let mut table = Table::new(
        "E8: fault-tolerance frontier per partition shape (Alg 3)",
        &[
            "partition",
            "n",
            "MP bound",
            "max crashes (hybrid)",
            "witness decides",
            "breaker stalls",
        ],
    );
    let mut results = Vec::new();
    for (label, partition) in shapes() {
        let f = predicate::frontier(&partition);
        let witness = predicate::witness_crash_set(&partition);
        debug_assert_eq!(witness.len(), f.max_tolerated_crashes);

        let witness_out = Sim.run(
            &Scenario::new(partition.clone(), Algorithm::CommonCoin)
                .proposals_split(partition.n() / 2)
                .crashes(CrashPlan::new().crash_set_at_start(&witness))
                .seed(8),
        );
        let witness_ok = witness_out.all_correct_decided && witness_out.agreement_holds();

        // Breaker: same number of crashes arranged to break the predicate
        // (kill the cover clusters first). Skip when no such arrangement
        // exists (fewer crashes than needed to break anything).
        let breaker = breaker_crash_set(&partition, f.max_tolerated_crashes);
        let breaker_stalls = match &breaker {
            Some(set) => {
                let out = Sim.run(
                    &Scenario::new(partition.clone(), Algorithm::CommonCoin)
                        .proposals_split(partition.n() / 2)
                        .crashes(CrashPlan::new().crash_set_at_start(set))
                        .max_rounds(16)
                        .seed(9),
                );
                out.deciders() == 0 && out.agreement_holds()
            }
            None => true, // vacuous
        };

        table.row([
            label,
            partition.n().to_string(),
            f.message_passing_bound.to_string(),
            f.max_tolerated_crashes.to_string(),
            if witness_ok { "yes" } else { "NO" }.to_string(),
            match &breaker {
                Some(_) if breaker_stalls => "yes".to_string(),
                Some(_) => "NO".to_string(),
                None => "n/a".to_string(),
            },
        ]);
        results.push((f.max_tolerated_crashes, witness_ok, breaker_stalls));
    }
    (results, table)
}

/// Builds a crash set of exactly `budget` processes that falsifies the
/// predicate, if one exists: silence whole clusters greedily (largest
/// first) until live weight drops to `<= n/2`, then pad with arbitrary
/// further crashes.
fn breaker_crash_set(partition: &Partition, budget: usize) -> Option<ProcessSet> {
    let n = partition.n();
    let mut crashed = ProcessSet::empty(n);
    let mut order: Vec<_> = partition.clusters().collect();
    order.sort_by_key(|(_, s)| std::cmp::Reverse(s.len()));
    for (_, members) in order {
        if crashed.len() + members.len() > budget {
            continue;
        }
        crashed.union_with(members);
        if !predicate::guarantees_termination(partition, &crashed) {
            // Pad to exactly `budget` with any remaining processes.
            for p in partition.processes() {
                if crashed.len() >= budget {
                    break;
                }
                crashed.insert(p);
            }
            if predicate::guarantees_termination(partition, &crashed) {
                return None; // padding resurrected the predicate — give up
            }
            return Some(crashed);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_matches_theory_and_simulation() {
        let (results, t) = run();
        // Analytic values for the six shapes.
        let expect = [5usize, 6, 9, 5, 3, 8];
        for ((max, witness_ok, breaker_stalls), want) in results.iter().zip(expect) {
            assert_eq!(*max, want);
            assert!(*witness_ok, "witness pattern must decide");
            assert!(*breaker_stalls, "breaker pattern must stall safely");
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn hybrid_beats_message_passing_bound_with_a_majority_cluster() {
        let f = predicate::frontier(&Partition::fig1_right());
        assert!(f.max_tolerated_crashes > f.message_passing_bound);
    }
}
