//! E1 — Figure 1: both cluster decompositions of `n = 7`, both algorithms.
//!
//! The paper's only concrete system pictures are the two decompositions of
//! Figure 1. E1 runs both algorithms on both, over many seeds and mixed
//! proposals, and reports decision rate, decision rounds, messages, and
//! virtual-time latency — the baseline numbers every other experiment
//! refines.

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Summary, Table};
use ofa_sim::SimBuilder;
use ofa_topology::Partition;

/// Number of seeds per configuration.
pub const TRIALS: u64 = 25;

/// Runs E1 and renders the table.
pub fn run(trials: u64) -> Table {
    let mut table = Table::new(
        "E1: Figure 1 decompositions (n=7, m=3), mixed proposals (3x1, 4x0)",
        &[
            "partition",
            "algorithm",
            "decided",
            "agreement",
            "mean rounds",
            "max rounds",
            "mean msgs",
            "mean latency",
        ],
    );
    for (label, partition) in [
        ("fig1-left {3,2,2}", Partition::fig1_left()),
        ("fig1-right {1,4,2}", Partition::fig1_right()),
    ] {
        for algorithm in Algorithm::ALL {
            let mut rounds = Vec::new();
            let mut msgs = Vec::new();
            let mut latency = Vec::new();
            let mut decided = 0u64;
            let mut agree = true;
            for seed in 0..trials {
                let out = SimBuilder::new(partition.clone(), algorithm)
                    .proposals_split(3)
                    .seed(seed)
                    .run();
                agree &= out.agreement_holds();
                if out.all_correct_decided {
                    decided += 1;
                }
                rounds.push(out.max_decision_round as f64);
                msgs.push(out.counters.messages_sent as f64);
                latency.push(out.latest_decision_time.ticks() as f64);
            }
            let r = Summary::of(rounds.iter().copied());
            let m = Summary::of(msgs.iter().copied());
            let l = Summary::of(latency.iter().copied());
            table.row([
                label.to_string(),
                algorithm.to_string(),
                format!("{decided}/{trials}"),
                if agree { "yes" } else { "VIOLATED" }.to_string(),
                fmt_f64(r.mean, 2),
                fmt_f64(r.max, 0),
                fmt_f64(m.mean, 0),
                fmt_f64(l.mean, 0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_decides_and_agrees() {
        let t = run(6);
        assert_eq!(t.len(), 4);
        for row in t.rows() {
            assert_eq!(row[2], "6/6", "all seeds must decide: {row:?}");
            assert_eq!(row[3], "yes");
        }
    }
}
