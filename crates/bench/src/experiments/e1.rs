//! E1 — Figure 1: both cluster decompositions of `n = 7`, both algorithms.
//!
//! The paper's only concrete system pictures are the two decompositions of
//! Figure 1. E1 runs both algorithms on both, over many seeds and mixed
//! proposals, and reports decision rate, decision rounds, messages, and
//! virtual-time latency — the baseline numbers every other experiment
//! refines.
//!
//! Implemented as one [`Sweep`] per `(partition, algorithm)` cell: the
//! scenario is described once, the sweep handles seeds and aggregation.

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{Scenario, Sweep};
use ofa_sim::Sim;
use ofa_topology::Partition;

/// Number of seeds per configuration.
pub const TRIALS: u64 = 25;

/// Runs E1 and renders the table.
pub fn run(trials: u64) -> Table {
    let mut table = Table::new(
        "E1: Figure 1 decompositions (n=7, m=3), mixed proposals (3x1, 4x0)",
        &[
            "partition",
            "algorithm",
            "decided",
            "agreement",
            "mean rounds",
            "max rounds",
            "mean msgs",
            "mean latency",
        ],
    );
    for (label, partition) in [
        ("fig1-left {3,2,2}", Partition::fig1_left()),
        ("fig1-right {1,4,2}", Partition::fig1_right()),
    ] {
        for algorithm in Algorithm::ALL {
            let report = Sweep::new(Scenario::new(partition.clone(), algorithm).proposals_split(3))
                .seeds(0..trials)
                .run(&Sim);
            let decided = report.outcomes().filter(|o| o.all_correct_decided).count() as u64;
            let rounds = report.rounds();
            table.row([
                label.to_string(),
                algorithm.to_string(),
                format!("{decided}/{trials}"),
                if report.all_agree() {
                    "yes"
                } else {
                    "VIOLATED"
                }
                .to_string(),
                fmt_f64(rounds.mean, 2),
                fmt_f64(rounds.max, 0),
                fmt_f64(report.messages().mean, 0),
                fmt_f64(report.latency_ticks().mean, 0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_decides_and_agrees() {
        let t = run(6);
        assert_eq!(t.len(), 4);
        for row in t.rows() {
            assert_eq!(row[2], "6/6", "all seeds must decide: {row:?}");
            assert_eq!(row[3], "yes");
        }
    }
}
